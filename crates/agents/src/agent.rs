//! The [`Agent`] trait and execution context.
//!
//! "DB-GPT's framework offers flexibility which allows users to
//! custom-define agents tailored to their specific data interaction tasks"
//! (§2.3). An agent is anything that can handle one plan step; the
//! orchestrator matches plan steps to agents by *role*.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use dbgpt_llm::skills::planner::PlanStep;

use crate::client::LlmClient;
use crate::error::AgentError;
use crate::memory::HistoryArchive;

/// One unit of work handed to an agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// The conversation this task belongs to.
    pub conversation: String,
    /// The user's original goal.
    pub goal: String,
    /// The plan step being executed.
    pub step: PlanStep,
    /// Results of previously completed steps (in step order).
    pub prior_results: Vec<Value>,
}

/// What an agent returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentReply {
    /// Machine-readable result payload.
    pub content: Value,
    /// Short human-readable summary of what was done.
    pub summary: String,
}

impl AgentReply {
    /// A plain-text reply.
    pub fn text(s: impl Into<String>) -> Self {
        let s = s.into();
        AgentReply {
            content: Value::String(s.clone()),
            summary: s,
        }
    }

    /// A structured reply with a summary line.
    pub fn structured(content: Value, summary: impl Into<String>) -> Self {
        AgentReply {
            content,
            summary: summary.into(),
        }
    }
}

/// Shared state an agent may use while handling a task.
pub struct AgentContext {
    /// Model access.
    pub llm: LlmClient,
    /// The communication archive (agents may consult history).
    pub archive: Arc<HistoryArchive>,
    /// Seed for any sampled behaviour.
    pub seed: u64,
}

/// A participant in the multi-agent framework.
pub trait Agent: Send + Sync {
    /// Unique agent name (e.g. `chart_generator#1`).
    fn name(&self) -> &str;

    /// The role this agent fulfils; plan steps carry a role and the
    /// orchestrator dispatches on it (e.g. `planner`, `chart_generator`,
    /// `aggregator`, `worker`).
    fn role(&self) -> &str;

    /// Execute one task.
    fn handle(&self, task: &TaskRequest, ctx: &AgentContext) -> Result<AgentReply, AgentError>;
}

/// Shared agent handle.
pub type SharedAgent = Arc<dyn Agent>;

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;

    struct Echo;
    impl Agent for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn role(&self) -> &str {
            "worker"
        }
        fn handle(&self, task: &TaskRequest, _ctx: &AgentContext) -> Result<AgentReply, AgentError> {
            Ok(AgentReply::text(format!("did: {}", task.step.description)))
        }
    }

    fn ctx() -> AgentContext {
        AgentContext {
            llm: LlmClient::direct(builtin_model("sim-qwen").unwrap()),
            archive: Arc::new(HistoryArchive::in_memory()),
            seed: 0,
        }
    }

    fn step() -> PlanStep {
        PlanStep {
            id: 1,
            description: "collect logs".into(),
            agent: "worker".into(),
            chart: None,
            dimension: None,
        }
    }

    #[test]
    fn custom_agent_handles_task() {
        let a = Echo;
        let task = TaskRequest {
            conversation: "c".into(),
            goal: "g".into(),
            step: step(),
            prior_results: vec![],
        };
        let r = a.handle(&task, &ctx()).unwrap();
        assert_eq!(r.summary, "did: collect logs");
        assert_eq!(a.role(), "worker");
    }

    #[test]
    fn reply_constructors() {
        let t = AgentReply::text("hi");
        assert_eq!(t.content, Value::String("hi".into()));
        let s = AgentReply::structured(serde_json::json!({"k": 1}), "made k");
        assert_eq!(s.summary, "made k");
        assert_eq!(s.content["k"], 1);
    }

    #[test]
    fn task_request_serde() {
        let task = TaskRequest {
            conversation: "c".into(),
            goal: "g".into(),
            step: step(),
            prior_results: vec![serde_json::json!(1)],
        };
        let json = serde_json::to_string(&task).unwrap();
        assert_eq!(serde_json::from_str::<TaskRequest>(&json).unwrap(), task);
    }
}
