//! The model client agents talk through.
//!
//! Agents never hold a model directly; they hold an [`LlmClient`], which is
//! either a direct handle to one [`dbgpt_llm::LanguageModel`] or a route
//! through an SMMF [`dbgpt_smmf::ApiServer`] deployment (model name +
//! shared server). The second form is how the full system runs — agents'
//! prompts then get SMMF's routing, failover and privacy guarantees.

use std::sync::Arc;

use dbgpt_llm::{Completion, GenerationParams, SharedModel};
use dbgpt_obs::Span;
use dbgpt_smmf::ApiServer;

use crate::error::AgentError;

/// A handle agents use for inference.
#[derive(Clone)]
pub enum LlmClient {
    /// Direct model access (simple setups, tests).
    Direct(SharedModel),
    /// Routed through an SMMF deployment.
    Smmf {
        /// The serving stack.
        server: Arc<ApiServer>,
        /// Which deployed model to address.
        model: String,
    },
}

impl LlmClient {
    /// Wrap a model directly.
    pub fn direct(model: SharedModel) -> Self {
        LlmClient::Direct(model)
    }

    /// Route through SMMF.
    pub fn smmf(server: Arc<ApiServer>, model: impl Into<String>) -> Self {
        LlmClient::Smmf {
            server,
            model: model.into(),
        }
    }

    /// The model name requests will hit.
    pub fn model_name(&self) -> String {
        match self {
            LlmClient::Direct(m) => m.id().to_string(),
            LlmClient::Smmf { model, .. } => model.clone(),
        }
    }

    /// Complete a prompt.
    pub fn complete(&self, prompt: &str, params: &GenerationParams) -> Result<Completion, AgentError> {
        match self {
            LlmClient::Direct(m) => Ok(m.generate(prompt, params)?),
            LlmClient::Smmf { server, model } => Ok(server.chat(model, prompt, params)?),
        }
    }

    /// Traced [`LlmClient::complete`]: the SMMF route joins its `smmf.chat`
    /// span (and everything under it) to `parent`; direct access records a
    /// flat `llm.generate` child. Byte-identical to the untraced path when
    /// `parent` is not recording.
    pub fn complete_under(
        &self,
        prompt: &str,
        params: &GenerationParams,
        parent: &Span,
    ) -> Result<Completion, AgentError> {
        if !parent.is_recording() {
            return self.complete(prompt, params);
        }
        match self {
            LlmClient::Direct(m) => {
                let span = parent.child("llm.generate", parent.tick());
                span.attr("model", m.id());
                let res = m.generate(prompt, params);
                span.attr("outcome", if res.is_ok() { "ok" } else { "error" });
                span.end(parent.tick());
                Ok(res?)
            }
            LlmClient::Smmf { server, model } => {
                Ok(server.chat_under(model, prompt, params, parent)?)
            }
        }
    }
}

impl std::fmt::Debug for LlmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmClient::Direct(m) => write!(f, "LlmClient::Direct({})", m.id()),
            LlmClient::Smmf { model, .. } => write!(f, "LlmClient::Smmf({model})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;
    use dbgpt_smmf::DeploymentMode;

    #[test]
    fn direct_client_completes() {
        let c = LlmClient::direct(builtin_model("sim-qwen").unwrap());
        assert_eq!(c.model_name(), "sim-qwen");
        let out = c.complete("hello data", &GenerationParams::default()).unwrap();
        assert!(!out.text.is_empty());
    }

    #[test]
    fn smmf_client_routes_through_server() {
        let mut server = ApiServer::new(DeploymentMode::Local);
        server.deploy_builtin("sim-glm", 2).unwrap();
        let c = LlmClient::smmf(Arc::new(server), "sim-glm");
        let out = c.complete("hello data", &GenerationParams::default()).unwrap();
        assert_eq!(out.model, "sim-glm");
    }

    #[test]
    fn smmf_client_surfaces_unknown_model() {
        let server = ApiServer::new(DeploymentMode::Local);
        let c = LlmClient::smmf(Arc::new(server), "ghost");
        assert!(matches!(
            c.complete("x", &GenerationParams::default()),
            Err(AgentError::Llm(_))
        ));
    }
}
