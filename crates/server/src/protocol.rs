//! The wire protocol: request/response bodies and binary framing.
//!
//! External inputs reach the server layer as length-prefixed JSON frames —
//! a minimal faithful stand-in for HTTP: a header (the 4-byte big-endian
//! body length) followed by a JSON body, over any byte stream.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::error::ServerError;

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Success.
    Ok,
    /// Caller error (bad input, unknown app).
    BadRequest,
    /// Handler failure.
    Error,
}

/// An external request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Target session (empty = create/sessionless).
    pub session: String,
    /// Application name (e.g. `chat2db`, `chat2data`).
    pub app: String,
    /// The user's natural-language input.
    pub input: String,
    /// App-specific parameters.
    #[serde(default)]
    pub params: Value,
}

impl Request {
    /// A sessionless request.
    pub fn new(id: u64, app: impl Into<String>, input: impl Into<String>) -> Self {
        Request {
            id,
            session: String::new(),
            app: app.into(),
            input: input.into(),
            params: Value::Null,
        }
    }

    /// Attach a tenant id in `params.tenant` (builder style). Multi-tenant
    /// front doors — the cluster gateway — shard and meter by this key.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        let t = Value::String(tenant.into());
        match &mut self.params {
            Value::Object(m) => {
                m.insert("tenant".to_string(), t);
            }
            _ => {
                let mut m = serde_json::Map::new();
                m.insert("tenant".to_string(), t);
                self.params = Value::Object(m);
            }
        }
        self
    }

    /// The tenant id from `params.tenant`, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.params.get("tenant").and_then(|v| v.as_str())
    }

    /// Attach a distributed-trace context in `params.trace` (builder
    /// style). Ids travel as fixed-width hex strings; the receiving
    /// node adopts them with `Obs::span_in_context`, joining the
    /// sender's trace tree across the wire.
    pub fn with_trace_context(mut self, ctx: &dbgpt_obs::TraceContext) -> Self {
        let mut t = serde_json::Map::new();
        t.insert(
            "trace_id".to_string(),
            Value::String(dbgpt_obs::TraceContext::hex(ctx.trace_id)),
        );
        t.insert(
            "span_id".to_string(),
            Value::String(dbgpt_obs::TraceContext::hex(ctx.parent_span_id)),
        );
        match &mut self.params {
            Value::Object(m) => {
                m.insert("trace".to_string(), Value::Object(t));
            }
            _ => {
                let mut m = serde_json::Map::new();
                m.insert("trace".to_string(), Value::Object(t));
                self.params = Value::Object(m);
            }
        }
        self
    }

    /// The propagated trace context from `params.trace`, if present and
    /// well-formed. The tenant comes from `params.tenant` (empty when
    /// absent) so one carrier covers both routing and trace tagging.
    pub fn trace_context(&self) -> Option<dbgpt_obs::TraceContext> {
        let t = self.params.get("trace")?;
        let trace_id =
            dbgpt_obs::TraceContext::parse_hex(t.get("trace_id").and_then(|v| v.as_str())?)?;
        let parent_span_id =
            dbgpt_obs::TraceContext::parse_hex(t.get("span_id").and_then(|v| v.as_str())?)?;
        Some(dbgpt_obs::TraceContext {
            trace_id,
            parent_span_id,
            tenant: self.tenant().unwrap_or("").to_string(),
        })
    }
}

/// A response to one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echoed request id.
    pub id: u64,
    /// Outcome.
    pub status: Status,
    /// Machine-readable payload.
    pub content: Value,
    /// Optional rendered artifact (ASCII table, SVG chart, …).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub rendered: Option<String>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, content: Value) -> Self {
        Response {
            id,
            status: Status::Ok,
            content,
            rendered: None,
        }
    }

    /// An error response.
    pub fn error(id: u64, status: Status, message: impl Into<String>) -> Self {
        Response {
            id,
            status,
            content: Value::String(message.into()),
            rendered: None,
        }
    }

    /// Attach a rendered artifact.
    pub fn with_rendered(mut self, rendered: impl Into<String>) -> Self {
        self.rendered = Some(rendered.into());
        self
    }
}

/// Encode a serializable body as one frame.
pub fn encode_frame<T: Serialize>(body: &T) -> Bytes {
    let json = serde_json::to_vec(body).expect("body serializes");
    let mut buf = BytesMut::with_capacity(4 + json.len());
    buf.put_u32(json.len() as u32);
    buf.put_slice(&json);
    buf.freeze()
}

/// Decode one frame into a deserializable body. Returns the body and the
/// number of bytes consumed; errors on truncated or malformed frames.
pub fn decode_frame<T: for<'de> Deserialize<'de>>(buf: &[u8]) -> Result<(T, usize), ServerError> {
    if buf.len() < 4 {
        return Err(ServerError::BadFrame(format!(
            "need 4 length bytes, have {}",
            buf.len()
        )));
    }
    let mut prefix = &buf[..4];
    let len = prefix.get_u32() as usize;
    if buf.len() < 4 + len {
        return Err(ServerError::BadFrame(format!(
            "body truncated: need {len}, have {}",
            buf.len() - 4
        )));
    }
    let body = serde_json::from_slice(&buf[4..4 + len])
        .map_err(|e| ServerError::BadRequest(e.to_string()))?;
    Ok((body, 4 + len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn request() -> Request {
        Request {
            id: 9,
            session: "s1".into(),
            app: "chat2data".into(),
            input: "total sales per month".into(),
            params: json!({"limit": 5}),
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(&request());
        let (back, used): (Request, usize) = decode_frame(&frame).unwrap();
        assert_eq!(back, request());
        assert_eq!(used, frame.len());
    }

    #[test]
    fn frames_concatenate_on_a_stream() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(&Request::new(1, "a", "x")));
        stream.extend_from_slice(&encode_frame(&Request::new(2, "b", "y")));
        let (r1, n1): (Request, usize) = decode_frame(&stream).unwrap();
        let (r2, n2): (Request, usize) = decode_frame(&stream[n1..]).unwrap();
        assert_eq!(r1.id, 1);
        assert_eq!(r2.id, 2);
        assert_eq!(n1 + n2, stream.len());
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = encode_frame(&request());
        assert!(matches!(
            decode_frame::<Request>(&frame[..2]),
            Err(ServerError::BadFrame(_))
        ));
        assert!(matches!(
            decode_frame::<Request>(&frame[..frame.len() - 1]),
            Err(ServerError::BadFrame(_))
        ));
    }

    #[test]
    fn malformed_body_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(3);
        buf.put_slice(b"{x}");
        assert!(matches!(
            decode_frame::<Request>(&buf),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn response_constructors() {
        let r = Response::ok(4, json!({"rows": 2})).with_rendered("| table |");
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.rendered.as_deref(), Some("| table |"));
        let e = Response::error(4, Status::BadRequest, "nope");
        assert_eq!(e.status, Status::BadRequest);
        assert_eq!(e.content, json!("nope"));
    }

    #[test]
    fn trace_context_roundtrips_through_the_wire() {
        let ctx = dbgpt_obs::TraceContext {
            trace_id: 0x1b2e_0000_0000_0001,
            parent_span_id: 0x1b2e_0000_0000_0007,
            tenant: "tenant-042".to_string(),
        };
        let req = Request::new(1, "chat2data", "q")
            .with_tenant("tenant-042")
            .with_trace_context(&ctx);
        let frame = encode_frame(&req);
        let (back, _): (Request, usize) = decode_frame(&frame).unwrap();
        assert_eq!(back.trace_context(), Some(ctx));
        assert_eq!(back.tenant(), Some("tenant-042"), "tenant carriage unaffected");
    }

    #[test]
    fn absent_or_malformed_trace_context_is_none() {
        assert_eq!(Request::new(1, "a", "x").trace_context(), None);
        let mut req = Request::new(1, "a", "x");
        req.params = json!({"trace": {"trace_id": "zz", "span_id": "zz"}});
        assert_eq!(req.trace_context(), None);
    }

    #[test]
    fn request_default_params_deserialize() {
        let json = r#"{"id":1,"session":"","app":"x","input":"y"}"#;
        let r: Request = serde_json::from_str(json).unwrap();
        assert_eq!(r.params, Value::Null);
    }
}
