//! Error type for the server layer.

use std::fmt;

/// Errors from framing, sessions and routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The frame is malformed (bad length prefix / truncated body).
    BadFrame(String),
    /// The request body is not valid JSON for [`crate::Request`].
    BadRequest(String),
    /// No handler is registered for the requested app.
    UnknownApp(String),
    /// The referenced session does not exist.
    SessionNotFound(String),
    /// A handler failed.
    Handler(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadFrame(m) => write!(f, "bad frame: {m}"),
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::UnknownApp(a) => write!(f, "unknown app `{a}`"),
            ServerError::SessionNotFound(s) => write!(f, "session not found: {s}"),
            ServerError::Handler(m) => write!(f, "handler error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(ServerError::UnknownApp("chat2db".into()).to_string().contains("chat2db"));
        assert!(ServerError::BadFrame("short".into()).to_string().contains("short"));
    }
}
