//! Conversation sessions.
//!
//! The demo flow (Fig. 3 area ①) starts with "a new chat session"; every
//! later turn (area ⑦) continues it. The session carries the chat history
//! the server layer merges into downstream requests.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use dbgpt_llm::{ChatMessage, Role};

use crate::error::ServerError;

/// Session identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionId(pub String);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One conversation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Id.
    pub id: SessionId,
    /// Which app the session is bound to.
    pub app: String,
    /// Turns so far, oldest first.
    pub history: Vec<ChatMessage>,
}

impl Session {
    /// Last `n` turns (for prompt budgets).
    pub fn tail(&self, n: usize) -> &[ChatMessage] {
        let start = self.history.len().saturating_sub(n);
        &self.history[start..]
    }

    /// Number of user turns.
    pub fn user_turns(&self) -> usize {
        self.history.iter().filter(|m| m.role == Role::User).count()
    }
}

/// Creates and stores sessions (thread-safe).
#[derive(Debug, Default)]
pub struct SessionManager {
    sessions: RwLock<HashMap<String, Session>>,
    counter: RwLock<u64>,
}

impl SessionManager {
    /// Empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Create a session bound to `app`; returns its id.
    pub fn create(&self, app: &str) -> SessionId {
        let mut c = self.counter.write();
        *c += 1;
        let id = SessionId(format!("sess-{}", *c));
        self.sessions.write().insert(
            id.0.clone(),
            Session {
                id: id.clone(),
                app: app.to_string(),
                history: Vec::new(),
            },
        );
        id
    }

    /// Snapshot of a session.
    pub fn get(&self, id: &str) -> Result<Session, ServerError> {
        self.sessions
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServerError::SessionNotFound(id.to_string()))
    }

    /// Append one turn.
    pub fn append(&self, id: &str, msg: ChatMessage) -> Result<(), ServerError> {
        let mut sessions = self.sessions.write();
        let s = sessions
            .get_mut(id)
            .ok_or_else(|| ServerError::SessionNotFound(id.to_string()))?;
        s.history.push(msg);
        Ok(())
    }

    /// Remove a session.
    pub fn close(&self, id: &str) -> Result<(), ServerError> {
        self.sessions
            .write()
            .remove(id)
            .map(|_| ())
            .ok_or_else(|| ServerError::SessionNotFound(id.to_string()))
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// No sessions?
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_append() {
        let m = SessionManager::new();
        let id = m.create("chat2db");
        m.append(&id.0, ChatMessage::user("hello")).unwrap();
        m.append(&id.0, ChatMessage::assistant("hi")).unwrap();
        let s = m.get(&id.0).unwrap();
        assert_eq!(s.history.len(), 2);
        assert_eq!(s.user_turns(), 1);
        assert_eq!(s.app, "chat2db");
    }

    #[test]
    fn ids_are_unique() {
        let m = SessionManager::new();
        let a = m.create("x");
        let b = m.create("x");
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn missing_session_errors() {
        let m = SessionManager::new();
        assert!(matches!(m.get("nope"), Err(ServerError::SessionNotFound(_))));
        assert!(m.append("nope", ChatMessage::user("x")).is_err());
        assert!(m.close("nope").is_err());
    }

    #[test]
    fn close_removes() {
        let m = SessionManager::new();
        let id = m.create("x");
        m.close(&id.0).unwrap();
        assert!(m.is_empty());
        assert!(m.get(&id.0).is_err());
    }

    #[test]
    fn tail_returns_recent_turns() {
        let m = SessionManager::new();
        let id = m.create("x");
        for i in 0..5 {
            m.append(&id.0, ChatMessage::user(format!("m{i}"))).unwrap();
        }
        let s = m.get(&id.0).unwrap();
        let tail = s.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].content, "m4");
        assert_eq!(s.tail(99).len(), 5);
    }

    #[test]
    fn concurrent_session_use() {
        use std::sync::Arc;
        let m = Arc::new(SessionManager::new());
        let id = m.create("x");
        let mut handles = Vec::new();
        for t in 0..4 {
            let m = m.clone();
            let id = id.0.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    m.append(&id, ChatMessage::user(format!("{t}-{i}"))).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get(&id.0).unwrap().history.len(), 100);
    }
}
