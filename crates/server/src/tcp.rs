//! TCP transport: the server layer on a real socket.
//!
//! "The server layer in DB-GPT … manages external inputs, such as HTTP
//! requests" (§2.2). The in-process framing ([`crate::protocol`]) carries
//! over unchanged to a real byte stream: each connection is a sequence of
//! length-prefixed JSON frames, one response frame per request frame —
//! the same shape as HTTP/1.1 keep-alive without the header ceremony.
//!
//! One thread per connection (plenty for a demo system; SMMF below is the
//! concurrency-bearing layer).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::ServerError;
use crate::protocol::{decode_frame, encode_frame, Request, Response};
use crate::router::Server;

/// A running TCP front door over a [`Server`].
pub struct TcpServer {
    local_addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Bind and start accepting. Pass port 0 to let the OS choose.
    pub fn bind(addr: impl ToSocketAddrs, server: Arc<Server>) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let server = server.clone();
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, server);
                });
            }
        });
        Ok(TcpServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting and join the accept thread. In-flight connections
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Read exactly one frame (4-byte length + body) from the stream.
/// `Ok(None)` on clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    // 16 MiB frame cap (defensive; a request is a chat turn, not a file).
    if len > 16 << 20 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&len_buf);
    frame.extend_from_slice(&body);
    Ok(Some(frame))
}

fn handle_connection(mut stream: TcpStream, server: Arc<Server>) -> std::io::Result<()> {
    // One `server.conn` span per connection; each frame's `server.request`
    // span nests under it. Noop (and branch-free downstream) when the
    // server has no observability attached.
    let obs = server.obs().clone();
    let span = if obs.is_enabled() {
        obs.counter("server.connections", 1);
        obs.span("server.conn", obs.tick())
    } else {
        dbgpt_obs::Span::noop()
    };
    let mut frames = 0u64;
    while let Some(frame) = read_frame(&mut stream)? {
        let response = server.handle_frame_under(&frame, &span);
        frames += 1;
        stream.write_all(&response)?;
        stream.flush()?;
    }
    span.attr("frames", frames);
    span.end(span.tick());
    Ok(())
}

/// Client helper: send one request over a (kept-alive) stream and read the
/// response frame.
pub fn send_request(stream: &mut TcpStream, request: &Request) -> Result<Response, ServerError> {
    let frame = encode_frame(request);
    stream
        .write_all(&frame)
        .map_err(|e| ServerError::BadFrame(e.to_string()))?;
    stream.flush().map_err(|e| ServerError::BadFrame(e.to_string()))?;
    let reply = read_frame(stream)
        .map_err(|e| ServerError::BadFrame(e.to_string()))?
        .ok_or_else(|| ServerError::BadFrame("connection closed before response".into()))?;
    let (resp, _) = decode_frame::<Response>(&reply)?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Status;
    use crate::router::AppHandler;
    use crate::session::Session;
    use serde_json::{json, Value};

    struct Echo;
    impl AppHandler for Echo {
        fn app_name(&self) -> &str {
            "echo"
        }
        fn handle(
            &self,
            input: &str,
            _p: &Value,
            _s: &Session,
        ) -> Result<(Value, Option<String>), ServerError> {
            Ok((json!({"echo": input}), None))
        }
    }

    fn spawn_server() -> TcpServer {
        let mut s = Server::new();
        s.register(Arc::new(Echo));
        TcpServer::bind("127.0.0.1:0", Arc::new(s)).expect("binds")
    }

    #[test]
    fn request_response_over_tcp() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let resp = send_request(&mut stream, &Request::new(1, "echo", "hello tcp")).unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["echo"], "hello tcp");
        server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_frames() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..5u64 {
            let resp = send_request(&mut stream, &Request::new(i, "echo", format!("m{i}"))).unwrap();
            assert_eq!(resp.id, i);
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let server = spawn_server();
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                for i in 0..10u64 {
                    let id = t * 100 + i;
                    let resp =
                        send_request(&mut stream, &Request::new(id, "echo", "x")).unwrap();
                    assert_eq!(resp.id, id);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn unknown_app_over_tcp_is_bad_request() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let resp = send_request(&mut stream, &Request::new(9, "ghost", "x")).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        server.shutdown();
    }

    #[test]
    fn malformed_body_gets_error_frame() {
        let server = spawn_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A length-prefixed frame whose body is not a Request.
        let body = b"{\"not\": \"a request\"}";
        let mut frame = (body.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(body);
        stream.write_all(&frame).unwrap();
        let reply = read_frame(&mut stream).unwrap().unwrap();
        let (resp, _) = decode_frame::<Response>(&reply).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        server.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let server = spawn_server();
        let addr = server.local_addr();
        server.shutdown();
        // Subsequent connections may connect (OS backlog) but get no
        // service; a fresh request must fail to complete.
        let result = TcpStream::connect(addr).and_then(|mut s| {
            s.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
            let frame = encode_frame(&Request::new(1, "echo", "x"));
            s.write_all(&frame)?;
            let mut buf = [0u8; 4];
            s.read_exact(&mut buf)
        });
        assert!(result.is_err());
    }
}
