//! Request routing to application handlers.
//!
//! The server owns a [`SessionManager`] and a handler registry. A request
//! arrives (as a struct or as a binary frame), the session's history is
//! attached, the named app handles it, and both turns are appended to the
//! session — "integrating [external inputs] with domain knowledge to guide
//! lower-tier layers" (§2.2).

use std::collections::BTreeMap;
use std::sync::Arc;

use serde_json::Value;

use dbgpt_llm::ChatMessage;
use dbgpt_obs::{Obs, Span};

use crate::error::ServerError;
use crate::protocol::{decode_frame, encode_frame, Request, Response, Status};
use crate::session::{Session, SessionManager};

/// An application-layer handler the server can route to.
pub trait AppHandler: Send + Sync {
    /// App name requests address (`chat2db`, `chat2data`, …).
    fn app_name(&self) -> &str;

    /// Handle one input with the session context. Returns the
    /// machine-readable payload plus an optional rendered artifact.
    fn handle(
        &self,
        input: &str,
        params: &Value,
        session: &Session,
    ) -> Result<(Value, Option<String>), ServerError>;

    /// Handle one input under the server's per-request span. Handlers
    /// whose apps are instrumented override this to join app/engine spans
    /// to the request trace; the default ignores the span and delegates to
    /// [`AppHandler::handle`].
    fn handle_traced(
        &self,
        input: &str,
        params: &Value,
        session: &Session,
        _span: &Span,
    ) -> Result<(Value, Option<String>), ServerError> {
        self.handle(input, params, session)
    }
}

/// Shared handler.
pub type SharedHandler = Arc<dyn AppHandler>;

/// The server: session store + handler registry.
pub struct Server {
    sessions: SessionManager,
    handlers: BTreeMap<String, SharedHandler>,
    obs: Obs,
}

impl Server {
    /// Empty server.
    pub fn new() -> Self {
        Server {
            sessions: SessionManager::new(),
            handlers: BTreeMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// Empty server recording `server.request` spans and per-app/status
    /// counters on `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        Server {
            sessions: SessionManager::new(),
            handlers: BTreeMap::new(),
            obs,
        }
    }

    /// Replace the observability handle (e.g. after [`Server::new`] via a
    /// builder that only later learns about it).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The server's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Register a handler under its app name.
    pub fn register(&mut self, handler: SharedHandler) {
        self.handlers.insert(handler.app_name().to_string(), handler);
    }

    /// Registered app names (sorted).
    pub fn apps(&self) -> Vec<&str> {
        self.handlers.keys().map(String::as_str).collect()
    }

    /// The session store.
    pub fn sessions(&self) -> &SessionManager {
        &self.sessions
    }

    /// Open a session for an app.
    pub fn open_session(&self, app: &str) -> String {
        self.sessions.create(app).0
    }

    /// Handle a request struct (the non-frame path).
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_under(request, &Span::noop())
    }

    /// Handle a request under a caller span (e.g. a TCP connection span):
    /// records a `server.request` span with app/status attributes plus
    /// `server.requests`, `server.cmd.<app>` and `server.status.*`
    /// counters. Byte-identical to [`Server::handle`] when nothing records.
    pub fn handle_under(&self, request: &Request, parent: &Span) -> Response {
        let span = if parent.is_recording() {
            parent.child("server.request", parent.tick())
        } else if self.obs.is_enabled() {
            self.obs.span("server.request", self.obs.tick())
        } else {
            return self.handle_inner(request, &Span::noop());
        };
        let obs = span.handle();
        span.attr("app", &request.app);
        span.attr("id", request.id);
        obs.counter("server.requests", 1);
        obs.counter(&format!("server.cmd.{}", request.app), 1);
        let resp = self.handle_inner(request, &span);
        let status = match resp.status {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::Error => "error",
        };
        span.attr("status", status);
        obs.counter(&format!("server.status.{status}"), 1);
        span.end(span.tick());
        resp
    }

    fn handle_inner(&self, request: &Request, span: &Span) -> Response {
        let handler = match self.handlers.get(&request.app) {
            Some(h) => h.clone(),
            None => {
                return Response::error(
                    request.id,
                    Status::BadRequest,
                    ServerError::UnknownApp(request.app.clone()).to_string(),
                )
            }
        };
        // Resolve (or fabricate) the session context.
        let session = if request.session.is_empty() {
            Session {
                id: crate::session::SessionId("ephemeral".into()),
                app: request.app.clone(),
                history: Vec::new(),
            }
        } else {
            match self.sessions.get(&request.session) {
                Ok(s) => s,
                Err(e) => return Response::error(request.id, Status::BadRequest, e.to_string()),
            }
        };
        match handler.handle_traced(&request.input, &request.params, &session, span) {
            Ok((content, rendered)) => {
                // Persist the turn for real sessions.
                if !request.session.is_empty() {
                    let _ = self
                        .sessions
                        .append(&request.session, ChatMessage::user(request.input.clone()));
                    let reply_text = rendered
                        .clone()
                        .unwrap_or_else(|| content.to_string());
                    let _ = self
                        .sessions
                        .append(&request.session, ChatMessage::assistant(reply_text));
                }
                let mut resp = Response::ok(request.id, content);
                if let Some(r) = rendered {
                    resp = resp.with_rendered(r);
                }
                resp
            }
            Err(e) => Response::error(request.id, Status::Error, e.to_string()),
        }
    }

    /// Handle a binary frame and produce a response frame (the external
    /// "HTTP" path).
    pub fn handle_frame(&self, frame: &[u8]) -> bytes::Bytes {
        self.handle_frame_under(frame, &Span::noop())
    }

    /// Frame path under a caller span, counting `server.frames` and
    /// `server.frame_errors`.
    pub fn handle_frame_under(&self, frame: &[u8], parent: &Span) -> bytes::Bytes {
        self.obs.counter("server.frames", 1);
        match decode_frame::<Request>(frame) {
            Ok((request, _)) => encode_frame(&self.handle_under(&request, parent)),
            Err(e) => {
                self.obs.counter("server.frame_errors", 1);
                encode_frame(&Response::error(0, Status::BadRequest, e.to_string()))
            }
        }
    }
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("apps", &self.apps())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Echoes input, reporting how much history it saw.
    struct EchoApp;
    impl AppHandler for EchoApp {
        fn app_name(&self) -> &str {
            "echo"
        }
        fn handle(
            &self,
            input: &str,
            params: &Value,
            session: &Session,
        ) -> Result<(Value, Option<String>), ServerError> {
            if input == "boom" {
                return Err(ServerError::Handler("exploded".into()));
            }
            Ok((
                json!({
                    "echo": input,
                    "history_len": session.history.len(),
                    "params": params,
                }),
                Some(format!("rendered: {input}")),
            ))
        }
    }

    fn server() -> Server {
        let mut s = Server::new();
        s.register(Arc::new(EchoApp));
        s
    }

    #[test]
    fn routes_to_handler() {
        let s = server();
        let resp = s.handle(&Request::new(1, "echo", "hello"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.content["echo"], "hello");
        assert_eq!(resp.rendered.as_deref(), Some("rendered: hello"));
    }

    #[test]
    fn unknown_app_is_bad_request() {
        let s = server();
        let resp = s.handle(&Request::new(2, "ghost", "x"));
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn handler_errors_reported() {
        let s = server();
        let resp = s.handle(&Request::new(3, "echo", "boom"));
        assert_eq!(resp.status, Status::Error);
        assert!(resp.content.as_str().unwrap().contains("exploded"));
    }

    #[test]
    fn sessions_accumulate_history() {
        let s = server();
        let sid = s.open_session("echo");
        let mut req = Request::new(1, "echo", "first");
        req.session = sid.clone();
        let r1 = s.handle(&req);
        assert_eq!(r1.content["history_len"], 0);
        let mut req = Request::new(2, "echo", "second");
        req.session = sid.clone();
        let r2 = s.handle(&req);
        // The handler saw both turns of round 1.
        assert_eq!(r2.content["history_len"], 2);
        assert_eq!(s.sessions().get(&sid).unwrap().history.len(), 4);
    }

    #[test]
    fn missing_session_is_bad_request() {
        let s = server();
        let mut req = Request::new(1, "echo", "x");
        req.session = "ghost".into();
        assert_eq!(s.handle(&req).status, Status::BadRequest);
    }

    #[test]
    fn frame_path_roundtrip() {
        let s = server();
        let frame = encode_frame(&Request::new(7, "echo", "framed"));
        let out = s.handle_frame(&frame);
        let (resp, _): (Response, usize) = decode_frame(&out).unwrap();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.content["echo"], "framed");
    }

    #[test]
    fn bad_frame_gets_error_response() {
        let s = server();
        let out = s.handle_frame(&[0, 0]);
        let (resp, _): (Response, usize) = decode_frame(&out).unwrap();
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn apps_listing() {
        assert_eq!(server().apps(), vec!["echo"]);
    }
}
