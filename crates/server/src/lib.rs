#![warn(missing_docs)]

//! # dbgpt-server — the server layer
//!
//! "The server layer in DB-GPT is an optional component that manages
//! external inputs, such as HTTP requests, by integrating them with domain
//! knowledge to guide lower-tier layers. … This layer's optional status
//! allows for direct communication between the application layer and the
//! module layer in simple scenarios" (paper §2.2).
//!
//! - [`protocol`] — the wire contract: [`Request`]/[`Response`] JSON
//!   bodies plus a length-prefixed binary framing
//!   ([`protocol::encode_frame`]) standing in for the HTTP transport.
//! - [`session`] — conversation state: each session keeps its chat
//!   history, which the server layer merges into requests ("integrating
//!   them with domain knowledge").
//! - [`tcp`] — the same framing over real sockets: a thread-per-connection
//!   TCP front door ([`TcpServer`]) plus a client helper.
//! - [`router`] — dispatch to registered application handlers by app name.
//!   The *optional* nature of the layer is explicit: handlers implement
//!   [`router::AppHandler`] and can be called directly (application →
//!   module), or through [`router::Server::handle`] /
//!   [`router::Server::handle_frame`] (the external-input path).

pub mod error;
pub mod protocol;
pub mod router;
pub mod session;
pub mod tcp;

pub use error::ServerError;
pub use protocol::{decode_frame, encode_frame, Request, Response, Status};
pub use router::{AppHandler, Server};
pub use session::{Session, SessionId, SessionManager};
pub use tcp::TcpServer;
