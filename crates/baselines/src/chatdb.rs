//! The ChatDB capability envelope.
//!
//! ChatDB (Table 1 column 4) augments an LLM with a database as symbolic
//! memory: SQL in both directions, chat over tables, multiple model
//! backends and bilingual operation — but no agent framework, no document
//! RAG, no workflow language, no fine-tuning, no privacy enforcement, no
//! generative analysis.

use serde_json::Value;

use dbgpt_llm::catalog::builtin_model;
use dbgpt_llm::skills::translate::{detect_language, zh_to_en, Language};
use dbgpt_llm::SharedModel;
use dbgpt_sqlengine::Engine;
use dbgpt_text2sql::{sql_to_text, Text2SqlModel};

use crate::framework::Framework;

/// ChatDB-like comparator (see module docs).
pub struct ChatDbLike {
    models: Vec<SharedModel>,
    engine: Engine,
    t2s: Text2SqlModel,
}

impl ChatDbLike {
    /// Build with two backends and the symbolic-memory database.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        engine
            .execute("CREATE TABLE orders (id INT, amount FLOAT, category TEXT)")
            .expect("ddl");
        engine
            .execute("INSERT INTO orders VALUES (1, 10.0, 'books'), (2, 20.0, 'tech'), (3, 12.5, 'books')")
            .expect("seed");
        ChatDbLike {
            models: vec![
                builtin_model("sim-glm").expect("builtin"),
                builtin_model("sim-qwen").expect("builtin"),
            ],
            engine,
            t2s: Text2SqlModel::base(),
        }
    }
}

impl Default for ChatDbLike {
    fn default() -> Self {
        ChatDbLike::new()
    }
}

impl Framework for ChatDbLike {
    fn name(&self) -> &str {
        "ChatDB"
    }

    fn run_multi_agent_goal(&mut self, _goal: &str) -> Option<usize> {
        None // single LLM + memory loop; no multi-agent framework
    }

    fn served_models(&self) -> Vec<String> {
        self.models.iter().map(|m| m.id().to_string()).collect()
    }

    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str> {
        vec![] // symbolic memory is the DB; no document RAG
    }

    fn run_workflow_dsl(&mut self, _dsl: &str) -> Option<Value> {
        None
    }

    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)> {
        None
    }

    fn text_to_sql(&mut self, question: &str) -> Option<String> {
        let ddl = self.engine.database().schema_ddl();
        self.t2s.generate_sql(&ddl, question).ok()
    }

    fn sql_to_text(&self, sql: &str) -> Option<String> {
        sql_to_text(sql).ok()
    }

    fn chat2x(&mut self) -> Option<(String, String)> {
        let sql = self.text_to_sql("how many orders are there?")?;
        let db_answer = self.engine.execute(&sql).ok()?.rows[0][0].to_string();
        // Sheet ingestion via the symbolic-memory pathway.
        dbgpt_sqlengine::csv::load_csv(
            self.engine.database_mut(),
            "cd_sheet",
            "region,sales\neast,8\nwest,9\n",
        )
        .ok()?;
        let sheet_sql = self.t2s.generate_sql(
            &self.engine.database().schema_ddl(),
            "what is the total sales of cd_sheet?",
        ).ok()?;
        let sheet_answer = self.engine.execute(&sheet_sql).ok()?.rows[0][0].to_string();
        Some((db_answer, sheet_answer))
    }

    fn privacy_guarantee(&self) -> bool {
        false
    }

    fn handle_chinese(&mut self, input: &str) -> Option<String> {
        // Bilingual path: translate, then answer over the DB.
        let canonical = match detect_language(input) {
            Language::Chinese => zh_to_en(input),
            Language::English => input.to_string(),
        };
        let sql = self.text_to_sql(&canonical)?;
        let result = self.engine.execute(&sql).ok()?;
        result.rows.first().map(|r| r[0].to_string())
    }

    fn generative_analysis(&mut self, _goal: &str) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chatdb_envelope() {
        let mut f = ChatDbLike::new();
        assert!(f.run_multi_agent_goal("anything").is_none());
        assert_eq!(f.served_models().len(), 2);
        assert!(f.rag_ingest_and_retrieve().is_empty());
        assert!(f.fine_tune_text2sql().is_none());
        let sql = f.text_to_sql("how many orders are there?").unwrap();
        assert!(sql.contains("COUNT"));
        assert!(f.sql_to_text(&sql).is_some());
        let (db, sheet) = f.chat2x().unwrap();
        assert_eq!(db, "3");
        assert_eq!(sheet, "17");
        assert!(!f.privacy_guarantee());
        let zh = f.handle_chinese("查询订单总额").unwrap();
        assert_eq!(zh, "42.5");
        assert!(f.generative_analysis("report").is_none());
    }
}
