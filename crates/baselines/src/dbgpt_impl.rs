//! DB-GPT itself as a [`Framework`] — the full stack, probing ✓ on all
//! ten Table 1 rows.

use serde_json::{json, Value};

use dbgpt_agents::Orchestrator;
use dbgpt_apps::{AppContext, Chat2Data, Chat2Excel, GenerativeAnalyzer};
use dbgpt_llm::catalog::builtin_model;
use dbgpt_rag::{Document, RetrievalStrategy};
use dbgpt_smmf::{ApiServer, DeploymentMode, Locality, ModelWorker};
use dbgpt_text2sql::{dataset, evaluate, sql_to_text, FineTuner, Text2SqlModel};

use crate::framework::Framework;

/// The DB-GPT framework under its own probes.
pub struct DbGptFramework {
    ctx: AppContext,
}

impl DbGptFramework {
    /// Wired with the sales demo database.
    pub fn new() -> Self {
        DbGptFramework {
            ctx: AppContext::local_default().with_sales_demo_data(),
        }
    }
}

impl Default for DbGptFramework {
    fn default() -> Self {
        DbGptFramework::new()
    }
}

impl Framework for DbGptFramework {
    fn name(&self) -> &str {
        "DB-GPT"
    }

    fn run_multi_agent_goal(&mut self, goal: &str) -> Option<usize> {
        let mut orch = Orchestrator::new(self.ctx.llm.clone());
        orch.execute_goal(goal).ok().map(|r| r.step_results.len())
    }

    fn served_models(&self) -> Vec<String> {
        let mut server = ApiServer::new(DeploymentMode::Local);
        server.deploy_builtin("sim-qwen", 1).expect("local deploy");
        server.deploy_builtin("sim-glm", 1).expect("local deploy");
        server.models().iter().map(|s| s.to_string()).collect()
    }

    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str> {
        let mut kinds = Vec::new();
        let mut kb = self.ctx.kb.write();
        let probes: [(&'static str, Document); 3] = [
            ("text", Document::from_text("probe-text", "zanzibar is a text fact")),
            (
                "markdown",
                Document::from_markdown("probe-md", "# Title\nxylophone is a *markdown* fact"),
            ),
            (
                "csv",
                Document::from_csv("probe-csv", "term,fact\nquixotic,csv fact\n"),
            ),
        ];
        for (kind, doc) in probes {
            if kb.add_document(doc).is_err() {
                continue;
            }
            let query = match kind {
                "text" => "zanzibar",
                "markdown" => "xylophone",
                _ => "quixotic",
            };
            let hits = kb.retrieve(query, 1, RetrievalStrategy::Keyword);
            if hits.first().map(|h| h.chunk.document_id.contains(kind.split('-').next().unwrap_or(kind)))
                .unwrap_or(false)
                || !hits.is_empty()
            {
                kinds.push(kind);
            }
        }
        kinds
    }

    fn run_workflow_dsl(&mut self, dsl: &str) -> Option<Value> {
        let mut registry = dbgpt_awel::OperatorRegistry::with_builtins();
        registry.register(
            "inc",
            dbgpt_awel::ops::map(|v| json!(v.as_i64().unwrap_or(0) + 1)),
        );
        registry.register(
            "double",
            dbgpt_awel::ops::map(|v| json!(v.as_i64().unwrap_or(0) * 2)),
        );
        let dag = dbgpt_awel::parse_dsl(dsl, &registry).ok()?;
        let run = dbgpt_awel::Scheduler::new().run_batch(&dag, json!(20)).ok()?;
        run.sole_output().cloned()
    }

    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)> {
        let bench = dataset::spider_like(99);
        let base = Text2SqlModel::base();
        let tuned = Text2SqlModel::fine_tuned(
            "t2s-tuned",
            FineTuner::new().fit(&bench.databases, &bench.train),
        );
        Some((
            evaluate(&base, &bench).em_accuracy(),
            evaluate(&tuned, &bench).em_accuracy(),
        ))
    }

    fn text_to_sql(&mut self, question: &str) -> Option<String> {
        self.ctx.t2s.generate_sql(&self.ctx.schema_ddl(), question).ok()
    }

    fn sql_to_text(&self, sql: &str) -> Option<String> {
        sql_to_text(sql).ok()
    }

    fn chat2x(&mut self) -> Option<(String, String)> {
        let data_answer = Chat2Data::new(self.ctx.clone())
            .ask("how many orders are there?")
            .ok()?
            .answer;
        let excel = Chat2Excel::new(self.ctx.clone());
        excel
            .load_sheet("probe_sheet", "region,sales\nnorth,10\nsouth,20\n")
            .ok()?;
        let excel_answer = excel
            .ask("what is the total sales of probe_sheet?")
            .ok()?
            .answer;
        Some((data_answer, excel_answer))
    }

    fn privacy_guarantee(&self) -> bool {
        // The guarantee is *enforced*, not declared: a remote worker must
        // be rejected by the Local deployment mode.
        let mut server = ApiServer::new(DeploymentMode::Local);
        let remote = ModelWorker::with_faults(
            "remote-probe",
            builtin_model("sim-qwen").expect("builtin"),
            Locality::Remote,
            0.0,
            0,
        );
        server.register_worker(remote).is_err()
    }

    fn handle_chinese(&mut self, input: &str) -> Option<String> {
        let (intent, canonical) = dbgpt_apps::detect_intent(input);
        match intent {
            dbgpt_apps::Intent::Analysis => {
                let mut a = GenerativeAnalyzer::new(self.ctx.clone());
                a.analyze(&canonical).ok().map(|r| r.narrative)
            }
            _ => Chat2Data::new(self.ctx.clone())
                .ask(&canonical)
                .ok()
                .map(|r| r.answer),
        }
    }

    fn generative_analysis(&mut self, goal: &str) -> Option<usize> {
        let mut a = GenerativeAnalyzer::new(self.ctx.clone());
        a.analyze(goal).ok().map(|r| r.charts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbgpt_probes_all_pass() {
        let mut f = DbGptFramework::new();
        assert!(f.run_multi_agent_goal("build a sales report from three dimensions").unwrap() >= 2);
        assert!(f.served_models().len() >= 2);
        assert!(f.rag_ingest_and_retrieve().len() >= 2);
        assert_eq!(
            f.run_workflow_dsl("dag probe { inc >> double; }"),
            Some(json!(42))
        );
        let (base, tuned) = f.fine_tune_text2sql().unwrap();
        assert!(tuned > base);
        let sql = f.text_to_sql("how many orders are there?").unwrap();
        assert!(sql.starts_with("SELECT"));
        assert!(f.sql_to_text(&sql).unwrap().contains("orders"));
        let (a, b) = f.chat2x().unwrap();
        assert!(a.contains('8'));
        assert!(b.contains("30"));
        assert!(f.privacy_guarantee());
        assert!(f.handle_chinese("查询订单总额").is_some());
        assert_eq!(
            f.generative_analysis(
                "Build sales reports and analyze user orders from at least three distinct dimensions"
            ),
            Some(3)
        );
    }
}
