#![warn(missing_docs)]

//! # dbgpt-baselines — the Table 1 comparator frameworks
//!
//! Table 1 of the paper compares DB-GPT against LangChain, LlamaIndex,
//! PrivateGPT and ChatDB across ten capabilities. Rather than hard-coding
//! the ✓/✗ cells, this crate re-implements each comparator's *capability
//! envelope* — what that framework can actually do, built from the same
//! substrates — behind one [`Framework`] trait, and [`matrix()`](matrix()) regenerates
//! the table by **probing**: each cell is ✓ only if the corresponding call
//! succeeds and its output passes a behavioural check (a plan actually
//! executes, generated SQL actually parses, an analysis actually yields
//! three charts, …).
//!
//! The comparators are deliberately *capability envelopes*, not clones:
//! e.g. `privategpt` is a single local model answering over a single
//! document store (its defining shape), so it probes ✓ only on the
//! privacy row.

pub mod chatdb;
pub mod dbgpt_impl;
pub mod framework;
pub mod langchain;
pub mod llamaindex;
pub mod matrix;
pub mod privategpt;

pub use chatdb::ChatDbLike;
pub use dbgpt_impl::DbGptFramework;
pub use framework::{Capability, Framework};
pub use langchain::LangChainLike;
pub use llamaindex::LlamaIndexLike;
pub use matrix::{all_frameworks, matrix, CapabilityMatrix};
pub use privategpt::PrivateGptLike;
