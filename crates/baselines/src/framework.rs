//! The [`Framework`] trait and the ten Table 1 capabilities.

use serde::{Deserialize, Serialize};

/// The ten rows of Table 1, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capability {
    /// System: a multi-agent framework that plans and executes.
    MultiAgents,
    /// System: serving more than one LLM backend.
    MultiLlms,
    /// System: RAG over more than one data-source kind.
    RagMultiSource,
    /// System: a declarative agent-workflow expression language.
    Awel,
    /// System: a fine-tuned Text-to-SQL model pipeline.
    FineTunedText2Sql,
    /// Functionality: Text-to-SQL and SQL-to-Text.
    Text2SqlBoth,
    /// Functionality: Chat2DB / Chat2Data / Chat2Excel.
    Chat2X,
    /// Functionality: data privacy & security (local-only guarantee).
    Privacy,
    /// Functionality: multilingual interactions (en + zh).
    Multilingual,
    /// Functionality: generative data analysis (plan → charts → report).
    GenerativeAnalysis,
}

impl Capability {
    /// All capabilities, in Table 1 row order.
    pub const ALL: &'static [Capability] = &[
        Capability::MultiAgents,
        Capability::MultiLlms,
        Capability::RagMultiSource,
        Capability::Awel,
        Capability::FineTunedText2Sql,
        Capability::Text2SqlBoth,
        Capability::Chat2X,
        Capability::Privacy,
        Capability::Multilingual,
        Capability::GenerativeAnalysis,
    ];

    /// Row label as printed in Table 1.
    pub fn label(&self) -> &'static str {
        match self {
            Capability::MultiAgents => "Multi-Agents Framework",
            Capability::MultiLlms => "Multi-LLMs Support",
            Capability::RagMultiSource => "RAG from Multiple Data Sources",
            Capability::Awel => "Agent Workflow Expression Language",
            Capability::FineTunedText2Sql => "Fine-tuned Text-to-SQL Model",
            Capability::Text2SqlBoth => "Text-to-SQL / SQL-to-Text",
            Capability::Chat2X => "Chat2DB / Chat2Data / Chat2Excel",
            Capability::Privacy => "Data Privacy and Security",
            Capability::Multilingual => "Multilingual Interactions",
            Capability::GenerativeAnalysis => "Generative Data Analysis",
        }
    }
}

/// A data-interaction framework under comparison.
///
/// Every method is a *probe*: implementations return `None` (or an empty
/// result) where the real framework lacks the capability, and working
/// output where it has it. The matrix builder validates outputs — merely
/// returning `Some` of garbage does not earn a ✓.
pub trait Framework {
    /// Framework display name.
    fn name(&self) -> &str;

    /// Execute a multi-step goal via agents; `Some(steps_executed)`.
    fn run_multi_agent_goal(&mut self, goal: &str) -> Option<usize>;

    /// Model backends this deployment can serve.
    fn served_models(&self) -> Vec<String>;

    /// Data-source kinds the RAG pipeline ingests (e.g. text, markdown,
    /// csv). Multi-source = more than one kind retrievable.
    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str>;

    /// Parse + execute a declarative workflow expression.
    fn run_workflow_dsl(&mut self, dsl: &str) -> Option<serde_json::Value>;

    /// Fine-tune Text-to-SQL on pairs; `Some((base_acc, tuned_acc))`.
    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)>;

    /// Text → SQL.
    fn text_to_sql(&mut self, question: &str) -> Option<String>;

    /// SQL → text.
    fn sql_to_text(&self, sql: &str) -> Option<String>;

    /// Answer a data question against a live table (chat2db/chat2data),
    /// and against an ingested CSV sheet (chat2excel). Returns the two
    /// answers.
    fn chat2x(&mut self) -> Option<(String, String)>;

    /// Does the deployment guarantee prompts never leave local
    /// infrastructure (and enforce it)?
    fn privacy_guarantee(&self) -> bool;

    /// Handle a Chinese utterance end to end; `Some(answer)`.
    fn handle_chinese(&mut self, input: &str) -> Option<String>;

    /// Run generative data analysis; `Some(number_of_charts)`.
    fn generative_analysis(&mut self, goal: &str) -> Option<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_rows_in_order() {
        assert_eq!(Capability::ALL.len(), 10);
        assert_eq!(Capability::ALL[0], Capability::MultiAgents);
        assert_eq!(Capability::ALL[9], Capability::GenerativeAnalysis);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Capability::Awel.label(), "Agent Workflow Expression Language");
        assert_eq!(Capability::Chat2X.label(), "Chat2DB / Chat2Data / Chat2Excel");
        let mut seen = std::collections::HashSet::new();
        for c in Capability::ALL {
            assert!(seen.insert(c.label()));
        }
    }
}
