//! The LlamaIndex capability envelope.
//!
//! LlamaIndex (Table 1 column 2): retrieval-first framework with
//! query-planning agents, multi-LLM support, multi-source ingestion and —
//! unlike LangChain — a Text-to-SQL fine-tuning integration. Its agent
//! behaviours are constrained to retrieval use cases (the paper's §2.3
//! contrast), so there is no workflow language, privacy enforcement,
//! multilingual path or generative analysis.

use serde_json::Value;

use dbgpt_llm::catalog::builtin_model;
use dbgpt_llm::{GenerationParams, SharedModel};
use dbgpt_rag::{Document, KnowledgeBase, RetrievalStrategy};
use dbgpt_sqlengine::Engine;
use dbgpt_text2sql::{dataset, evaluate, sql_to_text, FineTuner, Text2SqlModel};

use crate::framework::Framework;

/// LlamaIndex-like comparator (see module docs).
pub struct LlamaIndexLike {
    models: Vec<SharedModel>,
    kb: KnowledgeBase,
    engine: Engine,
    t2s: Text2SqlModel,
}

impl LlamaIndexLike {
    /// Build with two backends and the sales table.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        engine
            .execute("CREATE TABLE orders (id INT, amount FLOAT, category TEXT)")
            .expect("ddl");
        engine
            .execute("INSERT INTO orders VALUES (1, 10.0, 'books'), (2, 20.0, 'tech')")
            .expect("seed");
        LlamaIndexLike {
            models: vec![
                builtin_model("sim-qwen").expect("builtin"),
                builtin_model("sim-coder").expect("builtin"),
            ],
            kb: KnowledgeBase::with_defaults(),
            engine,
            t2s: Text2SqlModel::base(),
        }
    }
}

impl Default for LlamaIndexLike {
    fn default() -> Self {
        LlamaIndexLike::new()
    }
}

impl Framework for LlamaIndexLike {
    fn name(&self) -> &str {
        "LlamaIndex"
    }

    fn run_multi_agent_goal(&mut self, goal: &str) -> Option<usize> {
        // Query-planning agent: decompose via the model's planner, answer
        // each sub-query over the index (retrieval-constrained agents).
        let plan = self.models[0]
            .generate(
                &format!("### Task: plan\n### Input:\n{goal}"),
                &GenerationParams::default(),
            )
            .ok()?;
        let steps: Vec<serde_json::Value> = serde_json::from_str(plan.text.trim()).ok()?;
        let mut executed = 0;
        for s in &steps {
            let desc = s.get("description").and_then(Value::as_str)?;
            if self.models[0].generate(desc, &GenerationParams::default()).is_ok() {
                executed += 1;
            }
        }
        (executed > 0).then_some(executed)
    }

    fn served_models(&self) -> Vec<String> {
        self.models.iter().map(|m| m.id().to_string()).collect()
    }

    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str> {
        let mut kinds = Vec::new();
        let probes = [
            ("text", Document::from_text("li-text", "zanzibar is a text fact")),
            ("markdown", Document::from_markdown("li-md", "# T\nxylophone fact")),
            ("csv", Document::from_csv("li-csv", "term\nquixotic\n")),
        ];
        for (kind, doc) in probes {
            if self.kb.add_document(doc).is_err() {
                continue;
            }
            let q = match kind {
                "text" => "zanzibar",
                "markdown" => "xylophone",
                _ => "quixotic",
            };
            if !self.kb.retrieve(q, 1, RetrievalStrategy::Vector).is_empty() {
                kinds.push(kind);
            }
        }
        kinds
    }

    fn run_workflow_dsl(&mut self, _dsl: &str) -> Option<Value> {
        None // prescribed behaviours; no user-arranged workflow language
    }

    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)> {
        // LlamaIndex ships fine-tuning integrations: same hub workflow.
        let bench = dataset::spider_like(99);
        let base = Text2SqlModel::base();
        let tuned = Text2SqlModel::fine_tuned(
            "li-tuned",
            FineTuner::new().fit(&bench.databases, &bench.train),
        );
        Some((
            evaluate(&base, &bench).em_accuracy(),
            evaluate(&tuned, &bench).em_accuracy(),
        ))
    }

    fn text_to_sql(&mut self, question: &str) -> Option<String> {
        let ddl = self.engine.database().schema_ddl();
        self.t2s.generate_sql(&ddl, question).ok()
    }

    fn sql_to_text(&self, sql: &str) -> Option<String> {
        sql_to_text(sql).ok()
    }

    fn chat2x(&mut self) -> Option<(String, String)> {
        let sql = self.text_to_sql("how many orders are there?")?;
        let db_answer = self.engine.execute(&sql).ok()?.rows[0][0].to_string();
        dbgpt_sqlengine::csv::load_csv(
            self.engine.database_mut(),
            "li_sheet",
            "region,sales\nnorth,5\nsouth,7\n",
        )
        .ok()?;
        let sheet_sql = self.t2s.generate_sql(
            &self.engine.database().schema_ddl(),
            "what is the total sales of li_sheet?",
        ).ok()?;
        let sheet_answer = self.engine.execute(&sheet_sql).ok()?.rows[0][0].to_string();
        Some((db_answer, sheet_answer))
    }

    fn privacy_guarantee(&self) -> bool {
        false
    }

    fn handle_chinese(&mut self, _input: &str) -> Option<String> {
        None
    }

    fn generative_analysis(&mut self, _goal: &str) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llamaindex_envelope() {
        let mut f = LlamaIndexLike::new();
        assert!(f.run_multi_agent_goal("find facts, compare them").unwrap() >= 2);
        assert_eq!(f.served_models().len(), 2);
        assert_eq!(f.rag_ingest_and_retrieve().len(), 3);
        assert!(f.run_workflow_dsl("dag x { a >> b; }").is_none());
        let (base, tuned) = f.fine_tune_text2sql().unwrap();
        assert!(tuned > base, "tuning must help: {base} vs {tuned}");
        assert!(f.text_to_sql("how many orders are there?").is_some());
        assert!(f.sql_to_text("SELECT 1").is_some());
        let (db, sheet) = f.chat2x().unwrap();
        assert_eq!(db, "2");
        assert_eq!(sheet, "12");
        assert!(!f.privacy_guarantee());
        assert!(f.handle_chinese("查询订单总额").is_none());
        assert!(f.generative_analysis("report").is_none());
    }
}
