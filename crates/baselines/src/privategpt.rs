//! The PrivateGPT capability envelope.
//!
//! PrivateGPT (Table 1 column 3) is defined by one property: fully local,
//! offline document QA with a single model. Its *only* ✓ in Table 1 is
//! "Data Privacy and Security" — which this envelope earns by construction
//! (one local worker behind the Local deployment mode) while returning
//! `None` on everything else.

use serde_json::Value;

use dbgpt_llm::GenerationParams;
use dbgpt_rag::{IclBuilder, KnowledgeBase, RetrievalStrategy};
use dbgpt_smmf::{ApiServer, DeploymentMode};

use crate::framework::Framework;

/// PrivateGPT-like comparator (see module docs).
pub struct PrivateGptLike {
    server: ApiServer,
    kb: KnowledgeBase,
}

impl PrivateGptLike {
    /// One local model, one document store.
    pub fn new() -> Self {
        let mut server = ApiServer::new(DeploymentMode::Local);
        server
            .deploy_builtin("sim-vicuna", 1)
            .expect("local model deploys");
        PrivateGptLike {
            server,
            kb: KnowledgeBase::with_defaults(),
        }
    }

    /// Ingest a local document (its one capability besides QA).
    pub fn ingest(&mut self, id: &str, text: &str) -> usize {
        self.kb.add_text(id, text)
    }

    /// Local document QA.
    pub fn ask(&self, question: &str) -> Option<String> {
        let hits = self.kb.retrieve(question, 3, RetrievalStrategy::Vector);
        let (prompt, _) = IclBuilder::new(1024).build(question, &hits).ok()?;
        self.server
            .chat("sim-vicuna", &prompt, &GenerationParams::default())
            .ok()
            .map(|c| c.text)
    }
}

impl Default for PrivateGptLike {
    fn default() -> Self {
        PrivateGptLike::new()
    }
}

impl Framework for PrivateGptLike {
    fn name(&self) -> &str {
        "PrivateGPT"
    }

    fn run_multi_agent_goal(&mut self, _goal: &str) -> Option<usize> {
        None
    }

    fn served_models(&self) -> Vec<String> {
        self.server.models().iter().map(|s| s.to_string()).collect()
    }

    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str> {
        // Single-source (plain documents) ingestion only.
        self.ingest("pg-doc", "zanzibar is a fact");
        if !self.kb.retrieve("zanzibar", 1, RetrievalStrategy::Vector).is_empty() {
            vec!["text"]
        } else {
            vec![]
        }
    }

    fn run_workflow_dsl(&mut self, _dsl: &str) -> Option<Value> {
        None
    }

    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)> {
        None
    }

    fn text_to_sql(&mut self, _question: &str) -> Option<String> {
        None
    }

    fn sql_to_text(&self, _sql: &str) -> Option<String> {
        None
    }

    fn chat2x(&mut self) -> Option<(String, String)> {
        None
    }

    fn privacy_guarantee(&self) -> bool {
        // Enforced by the Local deployment mode it runs under.
        self.server.controller().mode().is_private()
    }

    fn handle_chinese(&mut self, _input: &str) -> Option<String> {
        None
    }

    fn generative_analysis(&mut self, _goal: &str) -> Option<usize> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privategpt_envelope() {
        let mut f = PrivateGptLike::new();
        assert!(f.run_multi_agent_goal("anything").is_none());
        assert_eq!(f.served_models().len(), 1);
        assert_eq!(f.rag_ingest_and_retrieve(), vec!["text"]);
        assert!(f.fine_tune_text2sql().is_none());
        assert!(f.text_to_sql("how many?").is_none());
        assert!(f.chat2x().is_none());
        assert!(f.privacy_guarantee());
        assert!(f.generative_analysis("report").is_none());
    }

    #[test]
    fn local_qa_works() {
        let mut f = PrivateGptLike::new();
        f.ingest("manual", "The reactor shuts down with the red switch.");
        let a = f.ask("how does the reactor shut down?").unwrap();
        assert!(a.contains("red switch") || !a.is_empty());
    }
}
