//! The LangChain capability envelope.
//!
//! LangChain (Table 1 column 1): chains and agents over multiple LLM
//! backends with multi-source RAG and SQL chains — but no workflow
//! expression language, no fine-tuning pipeline, no enforced privacy
//! posture, no multilingual handling, and no generative data analysis.

use serde_json::Value;

use dbgpt_llm::catalog::builtin_model;
use dbgpt_llm::{GenerationParams, SharedModel};
use dbgpt_rag::{Document, KnowledgeBase, RetrievalStrategy};
use dbgpt_sqlengine::Engine;
use dbgpt_text2sql::{sql_to_text, Text2SqlModel};

use crate::framework::Framework;

/// LangChain-like comparator (see module docs).
pub struct LangChainLike {
    models: Vec<SharedModel>,
    kb: KnowledgeBase,
    engine: Engine,
    t2s: Text2SqlModel,
}

impl LangChainLike {
    /// Build with two backends and the sales table.
    pub fn new() -> Self {
        let mut engine = Engine::new();
        engine
            .execute("CREATE TABLE orders (id INT, amount FLOAT, category TEXT)")
            .expect("ddl");
        engine
            .execute("INSERT INTO orders VALUES (1, 10.0, 'books'), (2, 20.0, 'tech'), (3, 30.0, 'tech')")
            .expect("seed");
        LangChainLike {
            models: vec![
                builtin_model("sim-qwen").expect("builtin"),
                builtin_model("sim-vicuna").expect("builtin"),
            ],
            kb: KnowledgeBase::with_defaults(),
            engine,
            t2s: Text2SqlModel::base(),
        }
    }
}

impl Default for LangChainLike {
    fn default() -> Self {
        LangChainLike::new()
    }
}

impl Framework for LangChainLike {
    fn name(&self) -> &str {
        "LangChain"
    }

    fn run_multi_agent_goal(&mut self, goal: &str) -> Option<usize> {
        // A plan-and-execute agent: ask the model for a plan, run each
        // step with another model call. Agents exist — but there is no
        // specialist-role dispatch, history archive, or chart agents.
        let plan = self.models[0]
            .generate(
                &format!("### Task: plan\n### Input:\n{goal}"),
                &GenerationParams::default(),
            )
            .ok()?;
        let steps: Vec<serde_json::Value> = serde_json::from_str(plan.text.trim()).ok()?;
        let mut executed = 0;
        for s in &steps {
            let desc = s.get("description").and_then(Value::as_str)?;
            if self.models[0].generate(desc, &GenerationParams::default()).is_ok() {
                executed += 1;
            }
        }
        (executed > 0).then_some(executed)
    }

    fn served_models(&self) -> Vec<String> {
        self.models.iter().map(|m| m.id().to_string()).collect()
    }

    fn rag_ingest_and_retrieve(&mut self) -> Vec<&'static str> {
        let mut kinds = Vec::new();
        let probes = [
            ("text", Document::from_text("lc-text", "zanzibar is a text fact")),
            ("markdown", Document::from_markdown("lc-md", "# T\nxylophone fact")),
            ("csv", Document::from_csv("lc-csv", "term\nquixotic\n")),
        ];
        for (kind, doc) in probes {
            if self.kb.add_document(doc).is_err() {
                continue;
            }
            let q = match kind {
                "text" => "zanzibar",
                "markdown" => "xylophone",
                _ => "quixotic",
            };
            if !self.kb.retrieve(q, 1, RetrievalStrategy::Vector).is_empty() {
                kinds.push(kind);
            }
        }
        kinds
    }

    fn run_workflow_dsl(&mut self, _dsl: &str) -> Option<Value> {
        None // no declarative workflow language
    }

    fn fine_tune_text2sql(&mut self) -> Option<(f64, f64)> {
        None // prompting only; no fine-tuning pipeline
    }

    fn text_to_sql(&mut self, question: &str) -> Option<String> {
        let ddl = self.engine.database().schema_ddl();
        self.t2s.generate_sql(&ddl, question).ok()
    }

    fn sql_to_text(&self, sql: &str) -> Option<String> {
        sql_to_text(sql).ok()
    }

    fn chat2x(&mut self) -> Option<(String, String)> {
        // SQL chain over the DB…
        let sql = self.text_to_sql("how many orders are there?")?;
        let db_answer = self.engine.execute(&sql).ok()?.rows[0][0].to_string();
        // …and a CSV loader (LangChain document loaders cover sheets).
        dbgpt_sqlengine::csv::load_csv(
            self.engine.database_mut(),
            "lc_sheet",
            "region,sales\nnorth,10\nsouth,20\n",
        )
        .ok()?;
        let sheet_sql = self.t2s.generate_sql(
            &self.engine.database().schema_ddl(),
            "what is the total sales of lc_sheet?",
        ).ok()?;
        let sheet_answer = self.engine.execute(&sheet_sql).ok()?.rows[0][0].to_string();
        Some((db_answer, sheet_answer))
    }

    fn privacy_guarantee(&self) -> bool {
        false // backends may be remote; nothing enforces locality
    }

    fn handle_chinese(&mut self, _input: &str) -> Option<String> {
        None // no multilingual pipeline
    }

    fn generative_analysis(&mut self, _goal: &str) -> Option<usize> {
        None // no planner → chart-agent → aggregator flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn langchain_envelope() {
        let mut f = LangChainLike::new();
        assert!(f.run_multi_agent_goal("collect data, summarise it").unwrap() >= 2);
        assert_eq!(f.served_models().len(), 2);
        assert_eq!(f.rag_ingest_and_retrieve().len(), 3);
        assert!(f.run_workflow_dsl("dag x { a >> b; }").is_none());
        assert!(f.fine_tune_text2sql().is_none());
        let sql = f.text_to_sql("how many orders are there?").unwrap();
        assert!(sql.contains("COUNT"));
        assert!(f.sql_to_text("SELECT 1").is_some());
        let (db, sheet) = f.chat2x().unwrap();
        assert_eq!(db, "3");
        assert_eq!(sheet, "30");
        assert!(!f.privacy_guarantee());
        assert!(f.handle_chinese("查询订单总额").is_none());
        assert!(f.generative_analysis("sales report").is_none());
    }
}
