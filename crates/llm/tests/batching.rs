//! Property tests for the continuous-batching engine: scheduling must never
//! change *what* is generated (completions are byte-identical to the
//! sequential path) or *how much* is billed (Usage totals are conserved,
//! prefix-cache hits included) — only simulated time.

use proptest::prelude::*;
use std::sync::Arc;

use dbgpt_llm::engine::{BatchEngine, EngineConfig};
use dbgpt_llm::latency::LatencyModel;
use dbgpt_llm::{
    GenerationParams, PrefixCache, SharedModel, SimLlm, SimModelSpec, Tokenizer, Vocab,
};

fn timed_model() -> SharedModel {
    let mut spec = SimModelSpec::for_tests("prop-batch");
    spec.latency = LatencyModel {
        base_us: 1_000,
        prefill_us_per_token: 10,
        decode_us_per_token: 1_000,
    };
    Arc::new(SimLlm::with_default_skills(spec))
}

/// Prompts with a shared system prefix and a unique suffix — the shape a
/// serving deployment actually sees, and what the prefix cache exploits.
fn prompts_strategy() -> impl Strategy<Value = Vec<String>> {
    (
        proptest::collection::vec("[a-z]{2,8}", 4..12),
        proptest::collection::vec(proptest::collection::vec("[a-z]{2,8}", 1..8), 1..10),
    )
        .prop_map(|(prefix, suffixes)| {
            let system = format!("### Task: chat\n{}", prefix.join(" "));
            suffixes
                .into_iter()
                .map(|s| format!("{system} {}", s.join(" ")))
                .collect()
        })
}

fn engine_config_strategy() -> impl Strategy<Value = EngineConfig> {
    (1usize..6, 64usize..4096, prop_oneof![Just(0usize), Just(1usize << 16)]).prop_map(
        |(batch, budget, cache)| {
            EngineConfig::full()
                .with_batch_requests(batch)
                .with_batch_tokens(budget)
                .with_prefix_cache(cache)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any batch size, token budget, and cache setting, every
    /// completion is byte-identical to sequential generation, Usage is
    /// conserved in the run totals, and the batched makespan never exceeds
    /// the sequential cost.
    #[test]
    fn any_schedule_matches_sequential(
        prompts in prompts_strategy(),
        cfg in engine_config_strategy(),
        seed in 0u64..1000,
    ) {
        let model = timed_model();
        let params = GenerationParams::default().with_seed(seed);
        let mut eng = BatchEngine::for_model(model.clone(), cfg);
        for p in &prompts {
            eng.submit(p.clone(), params.clone());
        }
        let (outs, run) = eng.run();
        prop_assert_eq!(outs.len(), prompts.len());
        let mut prompt_tokens = 0u64;
        let mut completion_tokens = 0u64;
        let mut sequential_us = 0u64;
        let mut cached = 0u64;
        for (i, (p, s)) in prompts.iter().zip(&outs).enumerate() {
            prop_assert_eq!(s.id, i, "results must come back in submit order");
            let direct = model.generate(p, &params).unwrap();
            let got = s.result.as_ref().unwrap();
            prop_assert_eq!(got, &direct, "batched completion diverged for {:?}", p);
            prompt_tokens += direct.usage.prompt_tokens as u64;
            completion_tokens += direct.usage.completion_tokens as u64;
            sequential_us += direct.simulated_latency_us;
            cached += s.cached_prefix_tokens as u64;
            prop_assert!(s.cached_prefix_tokens <= direct.usage.prompt_tokens,
                "cache can never cover more than the prompt");
            prop_assert!(s.admitted_us <= s.first_token_us);
            prop_assert!(s.first_token_us <= s.finished_us);
            prop_assert_eq!(s.batched_latency_us, s.finished_us - s.admitted_us);
        }
        // Usage conservation: batching and prefix-cache hits change time,
        // never billing.
        prop_assert_eq!(run.prompt_tokens, prompt_tokens);
        prop_assert_eq!(run.completion_tokens, completion_tokens);
        prop_assert_eq!(run.sequential_us, sequential_us);
        prop_assert_eq!(run.cached_prompt_tokens, cached);
        prop_assert!(run.cached_prompt_tokens <= run.prompt_tokens);
        if cfg.prefix_cache_tokens == 0 {
            prop_assert_eq!(run.cached_prompt_tokens, 0);
        }
        prop_assert_eq!(run.succeeded, prompts.len() as u64);
        prop_assert!(run.makespan_us <= run.sequential_us,
            "batching may never be slower than sequential: {} vs {}",
            run.makespan_us, run.sequential_us);
        prop_assert!(run.max_inflight <= cfg.max_batch_requests);
    }

    /// Splitting the same submissions across several `run()` drains at an
    /// arbitrary cut point yields the same completion contents as one big
    /// drain — interleaving only moves simulated time around.
    #[test]
    fn interleaved_runs_match_single_run(
        prompts in prompts_strategy(),
        cfg in engine_config_strategy(),
        cut in 0usize..10,
    ) {
        let model = timed_model();
        let params = GenerationParams::default();
        let mut one = BatchEngine::for_model(model.clone(), cfg);
        for p in &prompts {
            one.submit(p.clone(), params.clone());
        }
        let (single, _) = one.run();

        let mut two = BatchEngine::for_model(model, cfg);
        let cut = cut.min(prompts.len());
        for p in &prompts[..cut] {
            two.submit(p.clone(), params.clone());
        }
        let (mut split, _) = two.run();
        for p in &prompts[cut..] {
            two.submit(p.clone(), params.clone());
        }
        let (tail, _) = two.run();
        split.extend(tail);
        prop_assert_eq!(single.len(), split.len());
        for (a, b) in single.iter().zip(&split) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.result, &b.result,
                "interleaving changed a completion's content");
        }
    }

    /// The token-ID layer is lossless: decode(encode(text)) == text, and
    /// re-encoding is stable (interning is deterministic per vocab).
    #[test]
    fn token_ids_roundtrip(text in "[ a-zA-Z0-9,.!?]{0,80}") {
        let tok = Tokenizer::new();
        let vocab = Vocab::new();
        let ids = tok.encode_ids(&text, &vocab);
        prop_assert_eq!(tok.decode_ids(&ids, &vocab), text.clone());
        prop_assert_eq!(tok.encode_ids(&text, &vocab), ids);
    }

    /// Radix-cache invariant: after `admit(ids)`, the whole sequence is a
    /// cached prefix; accounting never counts more hit tokens than were
    /// looked up.
    #[test]
    fn prefix_cache_admit_then_full_hit(
        seqs in proptest::collection::vec(
            proptest::collection::vec(0u32..32, 1..40), 1..20),
    ) {
        let mut cache = PrefixCache::new(1 << 16);
        for ids in &seqs {
            cache.admit(ids);
            prop_assert_eq!(cache.longest_prefix(ids), ids.len(),
                "an admitted sequence must be fully cached");
        }
        let st = cache.stats();
        prop_assert!(st.hit_tokens <= st.lookup_tokens);
        prop_assert!(cache.cached_tokens() <= 1 << 16);
    }
}
