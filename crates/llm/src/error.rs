//! Error type for the LLM substrate.

use std::fmt;

/// Errors produced by model inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlmError {
    /// The prompt (plus requested completion budget) does not fit in the
    /// model's context window.
    ContextOverflow {
        /// Name of the model that rejected the prompt.
        model: String,
        /// Number of tokens in the offending prompt.
        prompt_tokens: usize,
        /// The model's context window, in tokens.
        context_window: usize,
    },
    /// The prompt was empty or contained no recognisable content.
    EmptyPrompt,
    /// A generation parameter was out of its legal range.
    InvalidParams(String),
    /// No model with the given name exists in the catalog/registry.
    UnknownModel(String),
    /// The (simulated) backend failed — used by SMMF failure injection.
    Backend(String),
}

impl fmt::Display for LlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlmError::ContextOverflow {
                model,
                prompt_tokens,
                context_window,
            } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds context window \
                 of {context_window} for model `{model}`"
            ),
            LlmError::EmptyPrompt => write!(f, "prompt is empty"),
            LlmError::InvalidParams(msg) => write!(f, "invalid generation params: {msg}"),
            LlmError::UnknownModel(name) => write!(f, "unknown model `{name}`"),
            LlmError::Backend(msg) => write!(f, "backend failure: {msg}"),
        }
    }
}

impl std::error::Error for LlmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_context_overflow() {
        let e = LlmError::ContextOverflow {
            model: "proxy-gpt".into(),
            prompt_tokens: 9000,
            context_window: 8192,
        };
        let s = e.to_string();
        assert!(s.contains("9000"));
        assert!(s.contains("8192"));
        assert!(s.contains("proxy-gpt"));
    }

    #[test]
    fn display_other_variants() {
        assert_eq!(LlmError::EmptyPrompt.to_string(), "prompt is empty");
        assert!(LlmError::UnknownModel("x".into()).to_string().contains('x'));
        assert!(LlmError::InvalidParams("temp".into())
            .to_string()
            .contains("temp"));
        assert!(LlmError::Backend("down".into()).to_string().contains("down"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LlmError::EmptyPrompt);
    }
}
