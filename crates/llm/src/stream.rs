//! Token streaming.
//!
//! DB-GPT's front-end renders completions incrementally; AWEL's stream mode
//! consumes operators that yield data piece by piece. [`TokenStream`] is the
//! substrate for both: an iterator over completion chunks that also carries
//! the final [`Completion`] metadata once drained.
//!
//! The stream is **lazy**: it keeps the completion text and a byte cursor,
//! and finds each chunk boundary on demand via
//! [`Tokenizer::chunks`](crate::tokenizer::Tokenizer::chunks) — no
//! `Vec<String>` of every chunk is ever materialised (the seed
//! implementation allocated one per completion).

use crate::tokenizer::Tokenizer;
use crate::types::{Completion, FinishReason, Usage};

/// An iterator over the chunks of one completion.
///
/// Concatenating every yielded chunk reproduces `completion().text` exactly.
#[derive(Debug, Clone)]
pub struct TokenStream {
    text: String,
    /// Byte offset of the first unyielded chunk.
    cursor: usize,
    /// Chunks not yet yielded (counted once at construction, O(n) scan,
    /// zero allocation).
    remaining: usize,
    finish_reason: FinishReason,
    usage: Usage,
    model: String,
    simulated_latency_us: u64,
    yielded: usize,
}

impl TokenStream {
    /// Build a stream that replays an already-finished completion.
    pub fn from_completion(completion: Completion) -> Self {
        let remaining = Tokenizer::new().chunks(&completion.text).count();
        TokenStream {
            cursor: 0,
            remaining,
            finish_reason: completion.finish_reason,
            usage: completion.usage,
            model: completion.model,
            simulated_latency_us: completion.simulated_latency_us,
            yielded: 0,
            text: completion.text,
        }
    }

    /// How many chunks have been yielded so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Chunks remaining.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Why the underlying generation stopped.
    pub fn finish_reason(&self) -> FinishReason {
        self.finish_reason
    }

    /// Token accounting for the whole completion.
    pub fn usage(&self) -> Usage {
        self.usage
    }

    /// Model that produced the stream.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Drain the stream and reassemble the full [`Completion`] (containing
    /// whatever text had not been yielded yet).
    pub fn into_completion(self) -> Completion {
        Completion {
            text: self.text[self.cursor..].to_string(),
            finish_reason: self.finish_reason,
            usage: self.usage,
            model: self.model,
            simulated_latency_us: self.simulated_latency_us,
        }
    }
}

impl Iterator for TokenStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let chunk = Tokenizer::new().chunks(&self.text[self.cursor..]).next()?;
        let len = chunk.len();
        let out = chunk.to_string();
        self.cursor += len;
        self.yielded += 1;
        self.remaining -= 1;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(text: &str) -> Completion {
        Completion {
            text: text.to_string(),
            finish_reason: FinishReason::Stop,
            usage: Usage {
                prompt_tokens: 4,
                completion_tokens: 3,
            },
            model: "proxy-gpt".into(),
            simulated_latency_us: 10,
        }
    }

    #[test]
    fn stream_concatenates_to_original() {
        let s = TokenStream::from_completion(completion("one two, three!"));
        let text: String = s.collect();
        assert_eq!(text, "one two, three!");
    }

    #[test]
    fn metadata_survives_streaming() {
        let s = TokenStream::from_completion(completion("a b"));
        assert_eq!(s.finish_reason(), FinishReason::Stop);
        assert_eq!(s.usage().completion_tokens, 3);
        assert_eq!(s.model(), "proxy-gpt");
    }

    #[test]
    fn yielded_and_remaining_track_progress() {
        let mut s = TokenStream::from_completion(completion("a b c"));
        assert_eq!(s.yielded(), 0);
        let total = s.remaining();
        s.next();
        assert_eq!(s.yielded(), 1);
        assert_eq!(s.remaining(), total - 1);
    }

    #[test]
    fn into_completion_reassembles_unconsumed_tail() {
        let mut s = TokenStream::from_completion(completion("a b c"));
        let first = s.next().unwrap();
        let rest = s.into_completion();
        assert_eq!(format!("{first}{}", rest.text), "a b c");
    }

    #[test]
    fn empty_completion_streams_nothing() {
        let mut s = TokenStream::from_completion(completion(""));
        assert!(s.next().is_none());
    }

    #[test]
    fn lazy_chunks_match_eager_stream_chunks() {
        for text in [
            "hello world, this is  DB-GPT!",
            "  leading",
            "trailing  ",
            "多语言 support",
        ] {
            let lazy: Vec<String> =
                TokenStream::from_completion(completion(text)).collect();
            assert_eq!(lazy, Tokenizer::new().stream_chunks(text), "for {text:?}");
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut s = TokenStream::from_completion(completion("a b c d"));
        assert_eq!(s.size_hint(), (4, Some(4)));
        s.next();
        assert_eq!(s.size_hint(), (3, Some(3)));
    }
}
