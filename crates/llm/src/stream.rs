//! Token streaming.
//!
//! DB-GPT's front-end renders completions incrementally; AWEL's stream mode
//! consumes operators that yield data piece by piece. [`TokenStream`] is the
//! substrate for both: an iterator over completion chunks that also carries
//! the final [`Completion`] metadata once drained.

use crate::tokenizer::Tokenizer;
use crate::types::{Completion, FinishReason, Usage};

/// An iterator over the chunks of one completion.
///
/// Concatenating every yielded chunk reproduces `completion().text` exactly.
#[derive(Debug, Clone)]
pub struct TokenStream {
    chunks: std::vec::IntoIter<String>,
    finish_reason: FinishReason,
    usage: Usage,
    model: String,
    simulated_latency_us: u64,
    yielded: usize,
}

impl TokenStream {
    /// Build a stream that replays an already-finished completion.
    pub fn from_completion(completion: Completion) -> Self {
        let tokenizer = Tokenizer::new();
        let chunks = tokenizer.stream_chunks(&completion.text);
        TokenStream {
            chunks: chunks.into_iter(),
            finish_reason: completion.finish_reason,
            usage: completion.usage,
            model: completion.model,
            simulated_latency_us: completion.simulated_latency_us,
            yielded: 0,
        }
    }

    /// How many chunks have been yielded so far.
    pub fn yielded(&self) -> usize {
        self.yielded
    }

    /// Chunks remaining.
    pub fn remaining(&self) -> usize {
        self.chunks.len()
    }

    /// Why the underlying generation stopped.
    pub fn finish_reason(&self) -> FinishReason {
        self.finish_reason
    }

    /// Token accounting for the whole completion.
    pub fn usage(&self) -> Usage {
        self.usage
    }

    /// Model that produced the stream.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Drain the stream and reassemble the full [`Completion`].
    pub fn into_completion(self) -> Completion {
        let usage = self.usage;
        let finish_reason = self.finish_reason;
        let model = self.model.clone();
        let simulated_latency_us = self.simulated_latency_us;
        let mut text = String::new();
        let already: Vec<String> = self.chunks.collect();
        for c in already {
            text.push_str(&c);
        }
        Completion {
            text,
            finish_reason,
            usage,
            model,
            simulated_latency_us,
        }
    }
}

impl Iterator for TokenStream {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        let n = self.chunks.next();
        if n.is_some() {
            self.yielded += 1;
        }
        n
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.chunks.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completion(text: &str) -> Completion {
        Completion {
            text: text.to_string(),
            finish_reason: FinishReason::Stop,
            usage: Usage {
                prompt_tokens: 4,
                completion_tokens: 3,
            },
            model: "proxy-gpt".into(),
            simulated_latency_us: 10,
        }
    }

    #[test]
    fn stream_concatenates_to_original() {
        let s = TokenStream::from_completion(completion("one two, three!"));
        let text: String = s.collect();
        assert_eq!(text, "one two, three!");
    }

    #[test]
    fn metadata_survives_streaming() {
        let s = TokenStream::from_completion(completion("a b"));
        assert_eq!(s.finish_reason(), FinishReason::Stop);
        assert_eq!(s.usage().completion_tokens, 3);
        assert_eq!(s.model(), "proxy-gpt");
    }

    #[test]
    fn yielded_and_remaining_track_progress() {
        let mut s = TokenStream::from_completion(completion("a b c"));
        assert_eq!(s.yielded(), 0);
        let total = s.remaining();
        s.next();
        assert_eq!(s.yielded(), 1);
        assert_eq!(s.remaining(), total - 1);
    }

    #[test]
    fn into_completion_reassembles_unconsumed_tail() {
        let mut s = TokenStream::from_completion(completion("a b c"));
        let first = s.next().unwrap();
        let rest = s.into_completion();
        assert_eq!(format!("{first}{}", rest.text), "a b c");
    }

    #[test]
    fn empty_completion_streams_nothing() {
        let mut s = TokenStream::from_completion(completion(""));
        assert!(s.next().is_none());
    }
}
