//! [`SimLlm`] — the simulated model runtime.
//!
//! A `SimLlm` is a [`SimModelSpec`] (identity, context window, chat
//! template, quality, latency) plus an ordered [`SkillSet`]. `generate`
//! follows exactly the steps a real inference server performs: validate
//! parameters → tokenize and budget-check the prompt → run the "model"
//! (skill dispatch) → apply stop sequences and the output budget → account
//! tokens and simulated latency.
//!
//! ## Quality noise
//!
//! Each spec carries a `quality ∈ (0, 1]`. At temperature 0 output is exact;
//! at higher temperatures a seeded sampler corrupts tokens with probability
//! `(1 - quality) · temperature`. This is how base-vs-fine-tuned
//! experiments (DB-GPT-Hub, experiment E1 in DESIGN.md) produce measurable
//! accuracy differences without any network access.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chat::PromptFormat;
use crate::error::LlmError;
use crate::latency::LatencyModel;
use crate::model::{LanguageModel, ModelId};
use crate::skill::{SharedSkill, SkillContext, SkillSet};
use crate::tokenizer::Tokenizer;
use crate::types::{Completion, FinishReason, GenerationParams, Usage};

/// Static description of a simulated model.
#[derive(Debug, Clone)]
pub struct SimModelSpec {
    /// Model identifier.
    pub id: ModelId,
    /// Context window in billable tokens (prompt + completion).
    pub context_window: usize,
    /// Chat template family.
    pub prompt_format: PromptFormat,
    /// Output fidelity in `(0, 1]`; see module docs.
    pub quality: f64,
    /// Latency model for simulated serving cost.
    pub latency: LatencyModel,
    /// Whether the model handles Chinese input natively.
    pub multilingual: bool,
}

impl SimModelSpec {
    /// A permissive spec for tests: huge window, perfect quality, zero cost.
    pub fn for_tests(name: &str) -> Self {
        SimModelSpec {
            id: ModelId::new(name),
            context_window: 1 << 20,
            prompt_format: PromptFormat::Plain,
            quality: 1.0,
            latency: LatencyModel::ZERO,
            multilingual: true,
        }
    }
}

/// A simulated language model (see module docs).
pub struct SimLlm {
    spec: SimModelSpec,
    skills: SkillSet,
    tokenizer: Tokenizer,
}

impl SimLlm {
    /// Build a model from a spec and skill set.
    pub fn new(spec: SimModelSpec, skills: SkillSet) -> Self {
        SimLlm {
            spec,
            skills,
            tokenizer: Tokenizer::new(),
        }
    }

    /// Build with the default built-in skill bundle.
    pub fn with_default_skills(spec: SimModelSpec) -> Self {
        SimLlm::new(spec, crate::skills::default_skills())
    }

    /// This model's spec.
    pub fn spec(&self) -> &SimModelSpec {
        &self.spec
    }

    /// Register an additional highest-priority skill — how `dbgpt-text2sql`
    /// turns a generic model into a SQL-specialised one.
    pub fn register_skill(&mut self, skill: SharedSkill) {
        self.skills.register_front(skill);
    }

    /// Names of this model's skills, highest priority first.
    pub fn skill_names(&self) -> Vec<&str> {
        self.skills.names()
    }

    /// Apply stop sequences: cut the text at the earliest stop match.
    fn apply_stops(text: &str, stops: &[String]) -> (String, bool) {
        let mut cut: Option<usize> = None;
        for s in stops {
            if s.is_empty() {
                continue;
            }
            if let Some(i) = text.find(s.as_str()) {
                cut = Some(cut.map_or(i, |c| c.min(i)));
            }
        }
        match cut {
            Some(i) => (text[..i].to_string(), true),
            None => (text.to_string(), false),
        }
    }

    /// Inject seeded corruption per the quality/temperature contract.
    fn apply_noise(&self, text: &str, params: &GenerationParams) -> String {
        let p_corrupt = (1.0 - self.spec.quality) * params.temperature;
        if p_corrupt <= 0.0 {
            return text.to_string();
        }
        // Seed from (request seed, prompt-independent model identity) so the
        // same request reproduces the same corruption.
        let mut seed = params.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in self.spec.id.as_str().bytes() {
            seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = String::with_capacity(text.len());
        // Lazy chunk walk: no per-chunk String allocation.
        for chunk in self.tokenizer.chunks(text) {
            if rng.gen_bool(p_corrupt.min(1.0)) {
                match rng.gen_range(0..3u8) {
                    0 => continue,                       // drop token
                    1 => {
                        out.push_str(chunk);
                        out.push_str(chunk);             // stutter
                    }
                    _ => {
                        // Garble: replace the word part with a filler.
                        let ws: String =
                            chunk.chars().take_while(|c| c.is_whitespace()).collect();
                        out.push_str(&ws);
                        out.push_str("umm");
                    }
                }
            } else {
                out.push_str(chunk);
            }
        }
        out
    }
}

impl LanguageModel for SimLlm {
    fn id(&self) -> &ModelId {
        &self.spec.id
    }

    fn context_window(&self) -> usize {
        self.spec.context_window
    }

    fn prompt_format(&self) -> PromptFormat {
        self.spec.prompt_format
    }

    fn latency_model(&self) -> LatencyModel {
        self.spec.latency
    }

    fn generate(&self, prompt: &str, params: &GenerationParams) -> Result<Completion, LlmError> {
        params.validate()?;
        if prompt.trim().is_empty() {
            return Err(LlmError::EmptyPrompt);
        }
        let prompt_tokens = self.tokenizer.count(prompt);
        if prompt_tokens >= self.spec.context_window {
            return Err(LlmError::ContextOverflow {
                model: self.spec.id.to_string(),
                prompt_tokens,
                context_window: self.spec.context_window,
            });
        }

        let ctx = SkillContext {
            tokenizer: self.tokenizer.clone(),
            temperature: params.temperature,
            seed: params.seed,
            model: self.spec.id.to_string(),
        };
        let raw_text = match self.skills.dispatch(prompt, &ctx) {
            Some((_skill, text)) => text,
            None => format!("[{}] (no applicable skill)", self.spec.id),
        };

        let noisy = self.apply_noise(&raw_text, params);
        let (stopped_text, hit_stop) = Self::apply_stops(&noisy, &params.stop);

        // Output budget: min(max_tokens, remaining context window).
        let budget = params
            .max_tokens
            .min(self.spec.context_window - prompt_tokens);
        let (final_text, completion_tokens) = self.tokenizer.truncate(&stopped_text, budget);
        let truncated = completion_tokens < self.tokenizer.count(&stopped_text);

        let finish_reason = if truncated {
            FinishReason::Length
        } else if hit_stop {
            FinishReason::StopSequence
        } else {
            FinishReason::Stop
        };

        Ok(Completion {
            text: final_text,
            finish_reason,
            usage: Usage {
                prompt_tokens,
                completion_tokens,
            },
            model: self.spec.id.to_string(),
            simulated_latency_us: self
                .spec
                .latency
                .request_us(prompt_tokens, completion_tokens),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SimLlm {
        SimLlm::with_default_skills(SimModelSpec::for_tests("sim-test"))
    }

    #[test]
    fn generate_plain_chat() {
        let out = model()
            .generate("tell me about indexes", &GenerationParams::default())
            .unwrap();
        assert!(out.text.contains("indexes"));
        assert_eq!(out.finish_reason, FinishReason::Stop);
        assert_eq!(out.model, "sim-test");
        assert!(out.usage.prompt_tokens > 0);
        assert!(out.usage.completion_tokens > 0);
    }

    #[test]
    fn empty_prompt_rejected() {
        assert_eq!(
            model().generate("  \n ", &GenerationParams::default()),
            Err(LlmError::EmptyPrompt)
        );
    }

    #[test]
    fn context_overflow_rejected() {
        let mut spec = SimModelSpec::for_tests("tiny");
        spec.context_window = 4;
        let m = SimLlm::with_default_skills(spec);
        let err = m
            .generate("one two three four five", &GenerationParams::default())
            .unwrap_err();
        assert!(matches!(err, LlmError::ContextOverflow { .. }));
    }

    #[test]
    fn max_tokens_truncates_with_length_reason() {
        let m = model();
        let params = GenerationParams::default().with_max_tokens(3);
        let out = m
            .generate("please explain database transactions thoroughly", &params)
            .unwrap();
        assert_eq!(out.usage.completion_tokens, 3);
        assert_eq!(out.finish_reason, FinishReason::Length);
    }

    #[test]
    fn stop_sequence_cuts_output() {
        let m = model();
        let probe = m
            .generate("describe database replication", &GenerationParams::default())
            .unwrap();
        // Use a word we know appears, as a stop sequence.
        let word = probe.text.split_whitespace().nth(2).unwrap().to_string();
        let params = GenerationParams::default().with_stop(word.clone());
        let out = m.generate("describe database replication", &params).unwrap();
        assert!(!out.text.contains(&word));
        assert_eq!(out.finish_reason, FinishReason::StopSequence);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m = model();
        let p = GenerationParams::default().with_temperature(0.8).with_seed(7);
        let a = m.generate("analyze the sales data", &p).unwrap();
        let b = m.generate("analyze the sales data", &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_temperature_means_no_noise() {
        let mut spec = SimModelSpec::for_tests("noisy");
        spec.quality = 0.1;
        let m = SimLlm::with_default_skills(spec);
        let a = m
            .generate("analyze the sales data", &GenerationParams::default())
            .unwrap();
        // A pristine generic-chat answer contains no stutter filler.
        assert!(!a.text.contains("umm"));
    }

    #[test]
    fn low_quality_high_temperature_corrupts() {
        let mut spec = SimModelSpec::for_tests("noisy");
        spec.quality = 0.05;
        let clean = model()
            .generate(
                "analyze the quarterly sales data for trends",
                &GenerationParams::default(),
            )
            .unwrap();
        let m = SimLlm::with_default_skills(spec);
        let p = GenerationParams::default().with_temperature(1.5).with_seed(3);
        let noisy = m
            .generate("analyze the quarterly sales data for trends", &p)
            .unwrap();
        // Same skill path, but noise must have changed the text (models
        // stamp their own name, so compare the part after the stamp).
        let tail = |s: &str| s.split(']').nth(1).unwrap_or("").trim().to_string();
        assert_ne!(tail(&noisy.text), tail(&clean.text));
    }

    #[test]
    fn simulated_latency_counts_tokens() {
        let mut spec = SimModelSpec::for_tests("timed");
        spec.latency = LatencyModel {
            base_us: 10,
            prefill_us_per_token: 1,
            decode_us_per_token: 100,
        };
        let m = SimLlm::with_default_skills(spec);
        let out = m
            .generate("ping pong", &GenerationParams::default())
            .unwrap();
        assert_eq!(
            out.simulated_latency_us,
            10 + out.usage.prompt_tokens as u64 + 100 * out.usage.completion_tokens as u64
        );
    }

    #[test]
    fn registered_skill_takes_priority() {
        use crate::skill::{PromptSkill, StructuredPrompt};
        struct Override;
        impl PromptSkill for Override {
            fn name(&self) -> &str {
                "override"
            }
            fn matches(&self, _: &StructuredPrompt, _: &str) -> bool {
                true
            }
            fn complete(
                &self,
                _: &StructuredPrompt,
                _: &str,
                _: &SkillContext,
            ) -> Option<String> {
                Some("OVERRIDDEN".into())
            }
        }
        let mut m = model();
        m.register_skill(std::sync::Arc::new(Override));
        let out = m.generate("anything", &GenerationParams::default()).unwrap();
        assert_eq!(out.text, "OVERRIDDEN");
        assert_eq!(m.skill_names()[0], "override");
    }

    #[test]
    fn apply_stops_earliest_match() {
        let (t, hit) = SimLlm::apply_stops("abc def ghi", &["ghi".into(), "def".into()]);
        assert_eq!(t, "abc ");
        assert!(hit);
        let (t, hit) = SimLlm::apply_stops("abc", &["zzz".into()]);
        assert_eq!(t, "abc");
        assert!(!hit);
    }

    #[test]
    fn streaming_matches_generate() {
        let m = model();
        let p = GenerationParams::default();
        let direct = m.generate("explain joins", &p).unwrap();
        let streamed: String = m.generate_stream("explain joins", &p).unwrap().collect();
        assert_eq!(direct.text, streamed);
    }
}
