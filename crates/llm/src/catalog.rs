//! The built-in model zoo.
//!
//! The DB-GPT demo offers OpenAI's GPT service plus local models such as
//! Qwen and GLM (§3). This catalog mirrors that line-up with simulated
//! equivalents whose specs differ the way the real models differ — context
//! window, chat template, quality, serving latency, multilinguality — so
//! SMMF routing and model-comparison experiments have real trade-offs to
//! explore.

use std::sync::Arc;

use crate::chat::PromptFormat;
use crate::latency::LatencyModel;
use crate::model::{ModelId, SharedModel};
use crate::sim::{SimLlm, SimModelSpec};

/// Names of every built-in model.
pub const BUILTIN_MODELS: &[&str] = &[
    "proxy-gpt",
    "sim-qwen",
    "sim-glm",
    "sim-vicuna",
    "sim-coder",
];

/// Spec for a built-in model, or `None` for unknown names.
pub fn builtin_spec(name: &str) -> Option<SimModelSpec> {
    let spec = match name {
        // The "OpenAI proxy" path: biggest window, best quality, but the
        // highest fixed overhead (network round trip is folded into base).
        "proxy-gpt" => SimModelSpec {
            id: ModelId::new("proxy-gpt"),
            context_window: 8192,
            prompt_format: PromptFormat::ChatMl,
            quality: 0.98,
            latency: LatencyModel {
                base_us: 350_000,
                prefill_us_per_token: 120,
                decode_us_per_token: 18_000,
            },
            multilingual: true,
        },
        // Local Qwen-style model: good quality, ChatML, bilingual.
        "sim-qwen" => SimModelSpec {
            id: ModelId::new("sim-qwen"),
            context_window: 8192,
            prompt_format: PromptFormat::ChatMl,
            quality: 0.92,
            latency: LatencyModel {
                base_us: 60_000,
                prefill_us_per_token: 300,
                decode_us_per_token: 26_000,
            },
            multilingual: true,
        },
        // Local GLM-style model: smaller window, GLM template, bilingual.
        "sim-glm" => SimModelSpec {
            id: ModelId::new("sim-glm"),
            context_window: 4096,
            prompt_format: PromptFormat::Glm,
            quality: 0.90,
            latency: LatencyModel {
                base_us: 55_000,
                prefill_us_per_token: 320,
                decode_us_per_token: 28_000,
            },
            multilingual: true,
        },
        // A weaker English-only baseline — useful as the "base model" in
        // fine-tuning experiments.
        "sim-vicuna" => SimModelSpec {
            id: ModelId::new("sim-vicuna"),
            context_window: 2048,
            prompt_format: PromptFormat::Plain,
            quality: 0.75,
            latency: LatencyModel {
                base_us: 45_000,
                prefill_us_per_token: 350,
                decode_us_per_token: 30_000,
            },
            multilingual: false,
        },
        // Code-specialised model: the default substrate for Text-to-SQL
        // fine-tuning (DB-GPT-Hub).
        "sim-coder" => SimModelSpec {
            id: ModelId::new("sim-coder"),
            context_window: 4096,
            prompt_format: PromptFormat::Plain,
            quality: 0.88,
            latency: LatencyModel {
                base_us: 50_000,
                prefill_us_per_token: 280,
                decode_us_per_token: 24_000,
            },
            multilingual: false,
        },
        _ => return None,
    };
    Some(spec)
}

/// Instantiate a built-in model with the default skill bundle.
pub fn builtin_model(name: &str) -> Option<SharedModel> {
    builtin_spec(name).map(|spec| Arc::new(SimLlm::with_default_skills(spec)) as SharedModel)
}

/// Instantiate every built-in model.
pub fn all_builtin_models() -> Vec<SharedModel> {
    BUILTIN_MODELS
        .iter()
        .filter_map(|n| builtin_model(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GenerationParams;

    #[test]
    fn every_builtin_instantiates() {
        let models = all_builtin_models();
        assert_eq!(models.len(), BUILTIN_MODELS.len());
        for m in &models {
            let out = m
                .generate("hello data world", &GenerationParams::default())
                .unwrap();
            assert!(!out.text.is_empty());
        }
    }

    #[test]
    fn unknown_model_is_none() {
        assert!(builtin_spec("gpt-99").is_none());
        assert!(builtin_model("gpt-99").is_none());
    }

    #[test]
    fn specs_have_distinct_tradeoffs() {
        let gpt = builtin_spec("proxy-gpt").unwrap();
        let qwen = builtin_spec("sim-qwen").unwrap();
        let vicuna = builtin_spec("sim-vicuna").unwrap();
        // Proxy has highest quality but highest fixed overhead.
        assert!(gpt.quality > qwen.quality);
        assert!(gpt.latency.base_us > qwen.latency.base_us);
        // Local models are cheaper per request to start.
        assert!(vicuna.latency.base_us < gpt.latency.base_us);
        // Windows differ.
        assert!(vicuna.context_window < gpt.context_window);
    }

    #[test]
    fn templates_match_families() {
        assert_eq!(
            builtin_spec("sim-glm").unwrap().prompt_format,
            PromptFormat::Glm
        );
        assert_eq!(
            builtin_spec("sim-qwen").unwrap().prompt_format,
            PromptFormat::ChatMl
        );
    }

    #[test]
    fn multilingual_flags() {
        assert!(builtin_spec("sim-qwen").unwrap().multilingual);
        assert!(!builtin_spec("sim-vicuna").unwrap().multilingual);
    }
}
