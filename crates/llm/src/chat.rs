//! Chat messages and prompt-format rendering.
//!
//! DB-GPT's SMMF serves heterogeneous models, each expecting its own chat
//! template (ChatML for Qwen-style models, bracketed turns for GLM-style
//! models, a plain transcript for completion models). The server layer keeps
//! conversations as [`ChatMessage`] lists and renders them into the target
//! model's native format at dispatch time.

use serde::{Deserialize, Serialize};

/// Speaker of a chat message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// System instructions (persona, task framing).
    System,
    /// End-user input.
    User,
    /// Model output.
    Assistant,
}

impl Role {
    /// Lowercase wire name, as used in ChatML-style templates.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::System => "system",
            Role::User => "user",
            Role::Assistant => "assistant",
        }
    }
}

/// One turn of a conversation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatMessage {
    /// Who spoke.
    pub role: Role,
    /// What they said.
    pub content: String,
}

impl ChatMessage {
    /// Construct a system message.
    pub fn system(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::System,
            content: content.into(),
        }
    }

    /// Construct a user message.
    pub fn user(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::User,
            content: content.into(),
        }
    }

    /// Construct an assistant message.
    pub fn assistant(content: impl Into<String>) -> Self {
        ChatMessage {
            role: Role::Assistant,
            content: content.into(),
        }
    }
}

/// The prompt template family a model expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptFormat {
    /// `<|im_start|>role\n...<|im_end|>` turns (Qwen / OpenAI-style).
    ChatMl,
    /// `[Round n]\n问: ...\n答: ...` turns (GLM-style).
    Glm,
    /// A plain `ROLE: content` transcript (completion models).
    Plain,
}

/// A chat-completion request: a message list plus the target format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatRequest {
    /// Conversation so far, oldest first.
    pub messages: Vec<ChatMessage>,
}

impl ChatRequest {
    /// Start from a single user message.
    pub fn from_user(content: impl Into<String>) -> Self {
        ChatRequest {
            messages: vec![ChatMessage::user(content)],
        }
    }

    /// Append a message, builder style.
    pub fn with(mut self, msg: ChatMessage) -> Self {
        self.messages.push(msg);
        self
    }

    /// Render the conversation into a single prompt string in `format`,
    /// ending with the cue for the assistant's next turn.
    pub fn render(&self, format: PromptFormat) -> String {
        let mut out = String::with_capacity(
            self.messages.iter().map(|m| m.content.len() + 32).sum::<usize>() + 32,
        );
        match format {
            PromptFormat::ChatMl => {
                for m in &self.messages {
                    out.push_str("<|im_start|>");
                    out.push_str(m.role.as_str());
                    out.push('\n');
                    out.push_str(&m.content);
                    out.push_str("<|im_end|>\n");
                }
                out.push_str("<|im_start|>assistant\n");
            }
            PromptFormat::Glm => {
                let mut round = 1usize;
                for m in &self.messages {
                    match m.role {
                        Role::System => {
                            out.push_str(&m.content);
                            out.push('\n');
                        }
                        Role::User => {
                            out.push_str(&format!("[Round {round}]\n问: {}\n", m.content));
                        }
                        Role::Assistant => {
                            out.push_str(&format!("答: {}\n", m.content));
                            round += 1;
                        }
                    }
                }
                out.push_str("答: ");
            }
            PromptFormat::Plain => {
                for m in &self.messages {
                    out.push_str(&m.role.as_str().to_uppercase());
                    out.push_str(": ");
                    out.push_str(&m.content);
                    out.push('\n');
                }
                out.push_str("ASSISTANT: ");
            }
        }
        out
    }

    /// The content of the most recent user message, if any.
    pub fn last_user(&self) -> Option<&str> {
        self.messages
            .iter()
            .rev()
            .find(|m| m.role == Role::User)
            .map(|m| m.content.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChatRequest {
        ChatRequest {
            messages: vec![
                ChatMessage::system("You are DB-GPT."),
                ChatMessage::user("show total sales"),
                ChatMessage::assistant("SELECT SUM(amount) FROM orders;"),
                ChatMessage::user("now by month"),
            ],
        }
    }

    #[test]
    fn chatml_render_has_all_turns_and_cue() {
        let p = sample().render(PromptFormat::ChatMl);
        assert!(p.contains("<|im_start|>system\nYou are DB-GPT.<|im_end|>"));
        assert!(p.contains("<|im_start|>user\nshow total sales<|im_end|>"));
        assert!(p.ends_with("<|im_start|>assistant\n"));
    }

    #[test]
    fn glm_render_numbers_rounds() {
        let p = sample().render(PromptFormat::Glm);
        assert!(p.contains("[Round 1]\n问: show total sales"));
        assert!(p.contains("[Round 2]\n问: now by month"));
        assert!(p.ends_with("答: "));
    }

    #[test]
    fn plain_render_uppercases_roles() {
        let p = sample().render(PromptFormat::Plain);
        assert!(p.contains("SYSTEM: You are DB-GPT."));
        assert!(p.contains("USER: now by month"));
        assert!(p.ends_with("ASSISTANT: "));
    }

    #[test]
    fn last_user_finds_latest() {
        assert_eq!(sample().last_user(), Some("now by month"));
        let empty = ChatRequest { messages: vec![] };
        assert_eq!(empty.last_user(), None);
        let only_system = ChatRequest {
            messages: vec![ChatMessage::system("x")],
        };
        assert_eq!(only_system.last_user(), None);
    }

    #[test]
    fn builder_appends() {
        let r = ChatRequest::from_user("hi").with(ChatMessage::assistant("hello"));
        assert_eq!(r.messages.len(), 2);
        assert_eq!(r.messages[1].role, Role::Assistant);
    }

    #[test]
    fn role_names() {
        assert_eq!(Role::System.as_str(), "system");
        assert_eq!(Role::User.as_str(), "user");
        assert_eq!(Role::Assistant.as_str(), "assistant");
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: ChatRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
