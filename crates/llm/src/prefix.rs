//! Radix prefix cache over interned token-id sequences.
//!
//! Chat-template headers, system prompts and few-shot ICL examples make the
//! prompts that reach the serving path massively prefix-shared: hundreds of
//! requests differ only in their final user turn. A real inference server
//! exploits that with KV-prefix caching — the shared prefix is prefilled
//! once and later requests skip straight to their divergent suffix. This
//! module is the simulated equivalent: a compressed radix trie over the
//! `u32` id sequences produced by [`crate::intern`], with per-node hit
//! accounting and LRU eviction under a token capacity.
//!
//! [`BatchEngine`](crate::engine::BatchEngine) consults the cache at
//! admission: the longest cached prefix is discounted from the request's
//! simulated prefill time ([`crate::latency::LatencyModel::prefill_us`]),
//! while `Usage` still bills the full prompt — caching changes *time*, not
//! *accounting*.

use std::collections::BTreeMap;

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefixCacheStats {
    /// Prefix lookups performed.
    pub lookups: u64,
    /// Total tokens across all looked-up sequences.
    pub lookup_tokens: u64,
    /// Tokens satisfied by a cached prefix.
    pub hit_tokens: u64,
    /// Tokens newly inserted into the trie.
    pub inserted_tokens: u64,
    /// Tokens removed by LRU eviction.
    pub evicted_tokens: u64,
}

impl PrefixCacheStats {
    /// Fraction of looked-up tokens served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookup_tokens == 0 {
            return 0.0;
        }
        self.hit_tokens as f64 / self.lookup_tokens as f64
    }
}

/// One trie node: a compressed edge of token ids plus children keyed by
/// their edge's first id.
#[derive(Debug)]
struct Node {
    /// Ids on the edge from the parent to this node (root: empty).
    edge: Vec<u32>,
    /// Children, keyed by the first id of the child's edge (BTreeMap for
    /// deterministic iteration).
    children: BTreeMap<u32, usize>,
    parent: usize,
    /// Lookups whose match traversed this node's full edge.
    hits: u64,
    /// Logical tick of the last lookup/insert that touched this node.
    last_used: u64,
}

/// The radix prefix cache (see module docs). Capacity `0` disables it:
/// every lookup misses and inserts are no-ops.
#[derive(Debug)]
pub struct PrefixCache {
    nodes: Vec<Node>,
    free: Vec<usize>,
    capacity_tokens: usize,
    cached_tokens: usize,
    tick: u64,
    stats: PrefixCacheStats,
}

const ROOT: usize = 0;

impl PrefixCache {
    /// A cache holding at most `capacity_tokens` tokens (`0` = disabled).
    pub fn new(capacity_tokens: usize) -> Self {
        PrefixCache {
            nodes: vec![Node {
                edge: Vec::new(),
                children: BTreeMap::new(),
                parent: ROOT,
                hits: 0,
                last_used: 0,
            }],
            free: Vec::new(),
            capacity_tokens,
            cached_tokens: 0,
            tick: 0,
            stats: PrefixCacheStats::default(),
        }
    }

    /// Is the cache switched off (capacity 0)?
    pub fn is_disabled(&self) -> bool {
        self.capacity_tokens == 0
    }

    /// Tokens currently stored in the trie.
    pub fn cached_tokens(&self) -> usize {
        self.cached_tokens
    }

    /// Live node count (excluding the root).
    pub fn nodes(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Length (in tokens) of the longest cached prefix of `ids`, bumping
    /// recency along the matched path and hit counters on fully-matched
    /// nodes.
    pub fn longest_prefix(&mut self, ids: &[u32]) -> usize {
        self.stats.lookups += 1;
        self.stats.lookup_tokens += ids.len() as u64;
        if self.is_disabled() {
            return 0;
        }
        self.tick += 1;
        let tick = self.tick;
        let mut node = ROOT;
        let mut matched = 0usize;
        while matched < ids.len() {
            let Some(&child) = self.nodes[node].children.get(&ids[matched]) else {
                break;
            };
            let edge_len = self.nodes[child].edge.len();
            let mut k = 0usize;
            while k < edge_len && matched + k < ids.len() && self.nodes[child].edge[k] == ids[matched + k]
            {
                k += 1;
            }
            self.nodes[child].last_used = tick;
            matched += k;
            if k < edge_len {
                break; // diverged (or ran out of query) mid-edge
            }
            self.nodes[child].hits += 1;
            node = child;
        }
        self.stats.hit_tokens += matched as u64;
        matched
    }

    /// Insert `ids` into the trie (splitting edges as needed), then evict
    /// least-recently-used leaves until the token capacity holds.
    pub fn insert(&mut self, ids: &[u32]) {
        if self.is_disabled() || ids.is_empty() {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        let mut node = ROOT;
        let mut pos = 0usize;
        while pos < ids.len() {
            match self.nodes[node].children.get(&ids[pos]).copied() {
                None => {
                    // Fresh suffix: one new leaf holds the whole remainder.
                    let rest: Vec<u32> = ids[pos..].to_vec();
                    self.stats.inserted_tokens += rest.len() as u64;
                    self.cached_tokens += rest.len();
                    let leaf = self.alloc(Node {
                        edge: rest,
                        children: BTreeMap::new(),
                        parent: node,
                        hits: 0,
                        last_used: tick,
                    });
                    self.nodes[node].children.insert(ids[pos], leaf);
                    break;
                }
                Some(child) => {
                    let edge_len = self.nodes[child].edge.len();
                    let mut k = 0usize;
                    while k < edge_len
                        && pos + k < ids.len()
                        && self.nodes[child].edge[k] == ids[pos + k]
                    {
                        k += 1;
                    }
                    self.nodes[child].last_used = tick;
                    if k == edge_len {
                        // Full edge consumed; descend.
                        node = child;
                        pos += k;
                    } else {
                        // Split `child` at offset k: mid holds edge[..k].
                        let tail: Vec<u32> = self.nodes[child].edge.split_off(k);
                        let head = std::mem::take(&mut self.nodes[child].edge);
                        let mid = self.alloc(Node {
                            edge: head,
                            children: BTreeMap::new(),
                            parent: node,
                            hits: self.nodes[child].hits,
                            last_used: tick,
                        });
                        self.nodes[child].edge = tail;
                        self.nodes[child].parent = mid;
                        let tail_first = self.nodes[child].edge[0];
                        self.nodes[mid].children.insert(tail_first, child);
                        self.nodes[node].children.insert(ids[pos], mid);
                        node = mid;
                        pos += k;
                        // Loop continues: the remainder (if any) now misses
                        // under `mid` and lands in the None arm.
                    }
                }
            }
        }
        self.evict_to_capacity();
    }

    /// Convenience for the serving path: longest cached prefix, then
    /// insert. Returns the prefix length.
    pub fn admit(&mut self, ids: &[u32]) -> usize {
        let hit = self.longest_prefix(ids);
        self.insert(ids);
        hit
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    /// Evict least-recently-used leaves (oldest tick first, lowest index on
    /// ties) until `cached_tokens <= capacity_tokens`.
    fn evict_to_capacity(&mut self) {
        while self.cached_tokens > self.capacity_tokens {
            let mut victim: Option<(u64, usize)> = None;
            for i in 1..self.nodes.len() {
                if self.free.contains(&i) || !self.nodes[i].children.is_empty() {
                    continue;
                }
                let key = (self.nodes[i].last_used, i);
                if victim.is_none_or(|v| key < v) {
                    victim = Some(key);
                }
            }
            let Some((_, leaf)) = victim else { break };
            let parent = self.nodes[leaf].parent;
            let first = self.nodes[leaf].edge[0];
            self.nodes[parent].children.remove(&first);
            let freed = self.nodes[leaf].edge.len();
            self.cached_tokens -= freed;
            self.stats.evicted_tokens += freed as u64;
            self.nodes[leaf].edge = Vec::new();
            self.free.push(leaf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses() {
        let mut c = PrefixCache::new(1024);
        assert_eq!(c.longest_prefix(&[1, 2, 3]), 0);
        assert_eq!(c.stats().hit_tokens, 0);
        assert_eq!(c.stats().lookup_tokens, 3);
    }

    #[test]
    fn full_and_partial_prefix_hits() {
        let mut c = PrefixCache::new(1024);
        c.insert(&[1, 2, 3, 4]);
        assert_eq!(c.longest_prefix(&[1, 2, 3, 4]), 4);
        assert_eq!(c.longest_prefix(&[1, 2, 3, 4, 5, 6]), 4);
        assert_eq!(c.longest_prefix(&[1, 2, 9]), 2);
        assert_eq!(c.longest_prefix(&[9, 9]), 0);
        assert_eq!(c.cached_tokens(), 4);
    }

    #[test]
    fn insert_splits_shared_edges() {
        let mut c = PrefixCache::new(1024);
        c.insert(&[1, 2, 3, 4]);
        c.insert(&[1, 2, 7, 8]);
        // Shared [1,2] + branches [3,4] and [7,8]: 6 tokens total.
        assert_eq!(c.cached_tokens(), 6);
        assert_eq!(c.longest_prefix(&[1, 2, 3, 4]), 4);
        assert_eq!(c.longest_prefix(&[1, 2, 7, 8]), 4);
        assert_eq!(c.longest_prefix(&[1, 2]), 2);
    }

    #[test]
    fn reinserting_is_free() {
        let mut c = PrefixCache::new(1024);
        c.insert(&[5, 6, 7]);
        let before = c.stats().inserted_tokens;
        c.insert(&[5, 6, 7]);
        assert_eq!(c.stats().inserted_tokens, before);
        assert_eq!(c.cached_tokens(), 3);
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let mut c = PrefixCache::new(4);
        c.insert(&[1, 2]);
        c.insert(&[3, 4]);
        assert_eq!(c.cached_tokens(), 4);
        // Touch [1,2] so [3,4] is the LRU leaf.
        assert_eq!(c.longest_prefix(&[1, 2]), 2);
        c.insert(&[5, 6]);
        assert!(c.cached_tokens() <= 4);
        assert_eq!(c.longest_prefix(&[1, 2]), 2, "recently used survives");
        assert_eq!(c.longest_prefix(&[3, 4]), 0, "LRU leaf evicted");
        assert_eq!(c.longest_prefix(&[5, 6]), 2, "new entry cached");
        assert_eq!(c.stats().evicted_tokens, 2);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = PrefixCache::new(0);
        c.insert(&[1, 2, 3]);
        assert_eq!(c.longest_prefix(&[1, 2, 3]), 0);
        assert_eq!(c.cached_tokens(), 0);
        assert_eq!(c.nodes(), 0);
    }

    #[test]
    fn hit_accounting_per_node() {
        let mut c = PrefixCache::new(1024);
        c.insert(&[1, 2, 3]);
        for _ in 0..3 {
            c.longest_prefix(&[1, 2, 3]);
        }
        let s = c.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.hit_tokens, 9);
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_then_reinsert_reuses_nodes() {
        let mut c = PrefixCache::new(2);
        c.insert(&[1, 2]);
        c.insert(&[3, 4]); // evicts [1,2]
        assert_eq!(c.cached_tokens(), 2);
        let nodes_before = c.nodes();
        c.insert(&[5, 6]); // evicts [3,4], reuses the freed slot
        assert_eq!(c.nodes(), nodes_before);
        assert_eq!(c.longest_prefix(&[5, 6]), 2);
    }

    #[test]
    fn deep_shared_prefix_chain() {
        let mut c = PrefixCache::new(1 << 16);
        let base: Vec<u32> = (0..100).collect();
        for tail in 0..10u32 {
            let mut ids = base.clone();
            ids.push(1000 + tail);
            c.insert(&ids);
        }
        // 100 shared + 10 distinct tails.
        assert_eq!(c.cached_tokens(), 110);
        let mut probe = base.clone();
        probe.push(2000);
        assert_eq!(c.longest_prefix(&probe), 100);
    }
}
