//! Simulated inference latency.
//!
//! SMMF's routing policies (least-latency, weighted) and the deployment
//! benchmarks need models whose *relative* cost behaves like real serving:
//! a fixed prefill cost proportional to prompt length plus a decode cost per
//! generated token, with larger models slower per token. No wall clock is
//! consulted — latency is an arithmetic model, so tests and benchmarks are
//! exactly reproducible.

use serde::{Deserialize, Serialize};

/// Latency parameters of one model backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-request overhead (scheduling, tokenization), µs.
    pub base_us: u64,
    /// Prefill cost per prompt token, µs.
    pub prefill_us_per_token: u64,
    /// Decode cost per completion token, µs.
    pub decode_us_per_token: u64,
}

impl LatencyModel {
    /// A model that costs nothing (useful in tests).
    pub const ZERO: LatencyModel = LatencyModel {
        base_us: 0,
        prefill_us_per_token: 0,
        decode_us_per_token: 0,
    };

    /// Simulated latency for a request, in microseconds.
    pub fn request_us(&self, prompt_tokens: usize, completion_tokens: usize) -> u64 {
        self.base_us
            + self.prefill_us_per_token * prompt_tokens as u64
            + self.decode_us_per_token * completion_tokens as u64
    }

    /// Simulated time-to-first-token, in microseconds (prefill + base).
    pub fn ttft_us(&self, prompt_tokens: usize) -> u64 {
        self.base_us + self.prefill_us_per_token * prompt_tokens as u64
    }

    /// Prefill cost (base + per-token prefill) with the first
    /// `cached_prefix_tokens` discounted — they were prefilled by an
    /// earlier request sharing the prefix, so only the divergent suffix is
    /// computed. `Usage` accounting is unaffected: caching changes time,
    /// not billing.
    pub fn prefill_us(&self, prompt_tokens: usize, cached_prefix_tokens: usize) -> u64 {
        let uncached = prompt_tokens.saturating_sub(cached_prefix_tokens);
        self.base_us + self.prefill_us_per_token * uncached as u64
    }

    /// [`LatencyModel::ttft_us`] with a cached prefix discounted.
    pub fn ttft_cached_us(&self, prompt_tokens: usize, cached_prefix_tokens: usize) -> u64 {
        self.prefill_us(prompt_tokens, cached_prefix_tokens)
    }

    /// [`LatencyModel::request_us`] with a cached prefix discounted from
    /// the prefill phase.
    pub fn request_cached_us(
        &self,
        prompt_tokens: usize,
        cached_prefix_tokens: usize,
        completion_tokens: usize,
    ) -> u64 {
        self.prefill_us(prompt_tokens, cached_prefix_tokens)
            + self.decode_us_per_token * completion_tokens as u64
    }

    /// Simulated decode throughput in tokens/second (0 if free).
    pub fn decode_tokens_per_sec(&self) -> f64 {
        if self.decode_us_per_token == 0 {
            return f64::INFINITY;
        }
        1_000_000.0 / self.decode_us_per_token as f64
    }
}

impl Default for LatencyModel {
    /// Defaults roughly shaped like a 7B model on one GPU: 50 ms overhead,
    /// 0.25 ms/token prefill, 25 ms/token decode (~40 tok/s).
    fn default() -> Self {
        LatencyModel {
            base_us: 50_000,
            prefill_us_per_token: 250,
            decode_us_per_token: 25_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latency_is_linear() {
        let m = LatencyModel {
            base_us: 100,
            prefill_us_per_token: 10,
            decode_us_per_token: 1000,
        };
        assert_eq!(m.request_us(0, 0), 100);
        assert_eq!(m.request_us(5, 2), 100 + 50 + 2000);
        // Doubling both components doubles the variable part.
        let a = m.request_us(10, 10) - m.base_us;
        let b = m.request_us(20, 20) - m.base_us;
        assert_eq!(b, 2 * a);
    }

    #[test]
    fn ttft_excludes_decode() {
        let m = LatencyModel {
            base_us: 100,
            prefill_us_per_token: 10,
            decode_us_per_token: 1000,
        };
        assert_eq!(m.ttft_us(7), 170);
    }

    #[test]
    fn cached_prefix_discounts_prefill_only() {
        let m = LatencyModel {
            base_us: 100,
            prefill_us_per_token: 10,
            decode_us_per_token: 1000,
        };
        // No cache hit: identical to the uncached formulas.
        assert_eq!(m.prefill_us(7, 0), m.ttft_us(7));
        assert_eq!(m.request_cached_us(5, 0, 2), m.request_us(5, 2));
        // Full hit: only base remains of the prefill phase.
        assert_eq!(m.prefill_us(7, 7), 100);
        // Partial hit discounts exactly the cached tokens.
        assert_eq!(m.request_us(10, 3) - m.request_cached_us(10, 4, 3), 40);
        // Over-long cached prefix saturates instead of underflowing.
        assert_eq!(m.prefill_us(3, 99), 100);
    }

    #[test]
    fn throughput_inverse_of_decode_cost() {
        let m = LatencyModel {
            base_us: 0,
            prefill_us_per_token: 0,
            decode_us_per_token: 25_000,
        };
        assert!((m.decode_tokens_per_sec() - 40.0).abs() < 1e-9);
        assert!(LatencyModel::ZERO.decode_tokens_per_sec().is_infinite());
    }

    #[test]
    fn default_is_plausible() {
        let m = LatencyModel::default();
        let tps = m.decode_tokens_per_sec();
        assert!(tps > 10.0 && tps < 200.0, "default {tps} tok/s implausible");
    }
}
