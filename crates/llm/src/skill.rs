//! The [`PromptSkill`] extension point and the structured-prompt convention.
//!
//! A simulated model is a bundle of *skills*. Each skill recognises one kind
//! of structured prompt (planning, extractive QA, summarisation, SQL
//! generation, …) and produces a completion for it. Upstream crates register
//! extra skills onto a [`crate::SimLlm`] — e.g. `dbgpt-text2sql` registers a
//! trainable Text-to-SQL skill, mirroring how DB-GPT-Hub produces fine-tuned
//! model variants.
//!
//! ## The structured-prompt convention
//!
//! Components in this repository build prompts in sections:
//!
//! ```text
//! ### Task: plan
//! ### Context:
//! <retrieved paragraphs, schema dumps, …>
//! ### Input:
//! <the user's goal or question>
//! ```
//!
//! [`StructuredPrompt::parse`] recovers the sections; free-form prompts (no
//! `### Task:` header) fall through to the generic chat skill.

use std::sync::Arc;

use crate::tokenizer::Tokenizer;

/// A prompt parsed into its conventional sections.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StructuredPrompt {
    /// The declared task name (lowercased), if a `### Task:` header exists.
    pub task: Option<String>,
    /// All named sections in order of appearance, excluding `Task`.
    pub sections: Vec<(String, String)>,
    /// Text before the first section header (e.g. a rendered system turn).
    pub preamble: String,
}

impl StructuredPrompt {
    /// Parse `prompt` into sections. Headers are lines starting with `### `
    /// and ending with `:` (optionally with inline content after the colon).
    pub fn parse(prompt: &str) -> Self {
        let mut out = StructuredPrompt::default();
        let mut current: Option<(String, String)> = None;
        for line in prompt.lines() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("### ") {
                // Flush previous section.
                if let Some((name, body)) = current.take() {
                    out.push_section(name, body);
                }
                let (name, inline) = match rest.split_once(':') {
                    Some((n, i)) => (n.trim().to_string(), i.trim().to_string()),
                    None => (rest.trim().to_string(), String::new()),
                };
                current = Some((name, inline));
            } else {
                match &mut current {
                    Some((_, body)) => {
                        if !body.is_empty() {
                            body.push('\n');
                        }
                        body.push_str(line);
                    }
                    None => {
                        if !out.preamble.is_empty() {
                            out.preamble.push('\n');
                        }
                        out.preamble.push_str(line);
                    }
                }
            }
        }
        if let Some((name, body)) = current.take() {
            out.push_section(name, body);
        }
        out
    }

    fn push_section(&mut self, name: String, body: String) {
        if name.eq_ignore_ascii_case("task") {
            self.task = Some(body.trim().to_lowercase());
        } else {
            self.sections.push((name, body.trim().to_string()));
        }
    }

    /// Body of the first section with the given (case-insensitive) name.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, b)| b.as_str())
    }

    /// The `Input` section, falling back to the preamble, falling back to
    /// the whole last section. This is "what the user actually asked".
    pub fn input(&self) -> &str {
        if let Some(i) = self.section("input") {
            return i;
        }
        if !self.preamble.trim().is_empty() {
            return self.preamble.trim();
        }
        self.sections
            .last()
            .map(|(_, b)| b.as_str())
            .unwrap_or("")
    }
}

/// Per-request context handed to a skill.
#[derive(Debug, Clone)]
pub struct SkillContext {
    /// Shared tokenizer for budget decisions.
    pub tokenizer: Tokenizer,
    /// Sampling temperature (skills may vary phrasing at higher values).
    pub temperature: f64,
    /// Request seed, for any sampled choice a skill makes.
    pub seed: u64,
    /// The serving model's name (skills may reference it in output).
    pub model: String,
}

/// One capability of a simulated model.
pub trait PromptSkill: Send + Sync {
    /// Skill name (diagnostic).
    fn name(&self) -> &str;

    /// Does this skill handle the given prompt? Skills are consulted in
    /// registration order; the first match wins.
    fn matches(&self, prompt: &StructuredPrompt, raw: &str) -> bool;

    /// Produce the completion text. Returning `None` passes the prompt to
    /// the next skill.
    fn complete(&self, prompt: &StructuredPrompt, raw: &str, ctx: &SkillContext)
        -> Option<String>;
}

/// Shared skill handle.
pub type SharedSkill = Arc<dyn PromptSkill>;

/// An ordered set of skills.
#[derive(Clone, Default)]
pub struct SkillSet {
    skills: Vec<SharedSkill>,
}

impl SkillSet {
    /// Empty set.
    pub fn new() -> Self {
        SkillSet { skills: Vec::new() }
    }

    /// Append a skill (lowest priority so far).
    pub fn register(&mut self, skill: SharedSkill) {
        self.skills.push(skill);
    }

    /// Insert a skill at the front (highest priority).
    pub fn register_front(&mut self, skill: SharedSkill) {
        self.skills.insert(0, skill);
    }

    /// Number of registered skills.
    pub fn len(&self) -> usize {
        self.skills.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.skills.is_empty()
    }

    /// Names of registered skills, in priority order.
    pub fn names(&self) -> Vec<&str> {
        self.skills.iter().map(|s| s.name()).collect()
    }

    /// Run the first matching skill; `None` if nothing matched or the
    /// matching skills all declined.
    pub fn dispatch(&self, raw: &str, ctx: &SkillContext) -> Option<(String, String)> {
        let parsed = StructuredPrompt::parse(raw);
        for skill in &self.skills {
            if skill.matches(&parsed, raw) {
                if let Some(text) = skill.complete(&parsed, raw, ctx) {
                    return Some((skill.name().to_string(), text));
                }
            }
        }
        None
    }
}

impl std::fmt::Debug for SkillSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkillSet").field("skills", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_task_and_sections() {
        let p = StructuredPrompt::parse(
            "### Task: plan\n### Context:\nctx line 1\nctx line 2\n### Input:\ndo things",
        );
        assert_eq!(p.task.as_deref(), Some("plan"));
        assert_eq!(p.section("context"), Some("ctx line 1\nctx line 2"));
        assert_eq!(p.section("Input"), Some("do things"));
        assert_eq!(p.input(), "do things");
    }

    #[test]
    fn parse_inline_section_content() {
        let p = StructuredPrompt::parse("### Task: qa\n### Question: what is rust?");
        assert_eq!(p.task.as_deref(), Some("qa"));
        assert_eq!(p.section("question"), Some("what is rust?"));
    }

    #[test]
    fn freeform_prompt_has_no_task() {
        let p = StructuredPrompt::parse("just a plain question");
        assert_eq!(p.task, None);
        assert_eq!(p.input(), "just a plain question");
    }

    #[test]
    fn preamble_preserved() {
        let p = StructuredPrompt::parse("system stuff\n### Task: qa\n### Input: hi");
        assert_eq!(p.preamble, "system stuff");
        assert_eq!(p.input(), "hi");
    }

    #[test]
    fn task_name_lowercased() {
        let p = StructuredPrompt::parse("### Task: PLAN");
        assert_eq!(p.task.as_deref(), Some("plan"));
    }

    struct Always(&'static str);
    impl PromptSkill for Always {
        fn name(&self) -> &str {
            self.0
        }
        fn matches(&self, _: &StructuredPrompt, _: &str) -> bool {
            true
        }
        fn complete(&self, _: &StructuredPrompt, _: &str, _: &SkillContext) -> Option<String> {
            Some(self.0.to_string())
        }
    }

    struct Never;
    impl PromptSkill for Never {
        fn name(&self) -> &str {
            "never"
        }
        fn matches(&self, _: &StructuredPrompt, _: &str) -> bool {
            false
        }
        fn complete(&self, _: &StructuredPrompt, _: &str, _: &SkillContext) -> Option<String> {
            unreachable!()
        }
    }

    fn ctx() -> SkillContext {
        SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 1,
            model: "test".into(),
        }
    }

    #[test]
    fn dispatch_first_match_wins() {
        let mut set = SkillSet::new();
        set.register(Arc::new(Never));
        set.register(Arc::new(Always("a")));
        set.register(Arc::new(Always("b")));
        let (name, text) = set.dispatch("x", &ctx()).unwrap();
        assert_eq!(name, "a");
        assert_eq!(text, "a");
    }

    #[test]
    fn register_front_takes_priority() {
        let mut set = SkillSet::new();
        set.register(Arc::new(Always("low")));
        set.register_front(Arc::new(Always("high")));
        assert_eq!(set.dispatch("x", &ctx()).unwrap().0, "high");
        assert_eq!(set.names(), vec!["high", "low"]);
    }

    #[test]
    fn empty_set_dispatches_nothing() {
        let set = SkillSet::new();
        assert!(set.is_empty());
        assert!(set.dispatch("x", &ctx()).is_none());
    }
}
