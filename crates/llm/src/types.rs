//! Request/response types shared by every model backend.

use serde::{Deserialize, Serialize};

use crate::error::LlmError;

/// Decoding parameters for a generation request.
///
/// Mirrors the knobs DB-GPT exposes per model worker: sampling temperature,
/// an output budget, optional stop sequences, and an explicit seed so that
/// every component in this repository is reproducible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationParams {
    /// Sampling temperature in `[0.0, 2.0]`. `0.0` is fully greedy; the
    /// simulated models use temperature to scale their noise injection.
    pub temperature: f64,
    /// Maximum number of completion tokens to emit.
    pub max_tokens: usize,
    /// Generation stops when any of these strings would be emitted.
    pub stop: Vec<String>,
    /// Seed for the model's sampler. Identical (prompt, params) pairs always
    /// produce identical completions.
    pub seed: u64,
}

impl Default for GenerationParams {
    fn default() -> Self {
        GenerationParams {
            temperature: 0.0,
            max_tokens: 1024,
            stop: Vec::new(),
            seed: 42,
        }
    }
}

impl GenerationParams {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), LlmError> {
        if !(0.0..=2.0).contains(&self.temperature) || self.temperature.is_nan() {
            return Err(LlmError::InvalidParams(format!(
                "temperature {} outside [0, 2]",
                self.temperature
            )));
        }
        if self.max_tokens == 0 {
            return Err(LlmError::InvalidParams("max_tokens must be > 0".into()));
        }
        Ok(())
    }

    /// Builder-style temperature setter.
    pub fn with_temperature(mut self, t: f64) -> Self {
        self.temperature = t;
        self
    }

    /// Builder-style max-tokens setter.
    pub fn with_max_tokens(mut self, m: usize) -> Self {
        self.max_tokens = m;
        self
    }

    /// Builder-style seed setter.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builder-style stop-sequence setter.
    pub fn with_stop(mut self, stop: impl Into<String>) -> Self {
        self.stop.push(stop.into());
        self
    }
}

/// Why generation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinishReason {
    /// The model emitted its natural end of output.
    Stop,
    /// The `max_tokens` budget was exhausted.
    Length,
    /// A stop sequence was hit.
    StopSequence,
}

/// Token accounting for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Usage {
    /// Billable tokens in the prompt.
    pub prompt_tokens: usize,
    /// Billable tokens in the completion.
    pub completion_tokens: usize,
}

impl Usage {
    /// Total billable tokens.
    pub fn total(&self) -> usize {
        self.prompt_tokens + self.completion_tokens
    }

    /// Merge accounting from another request (used by agents that make
    /// several model calls for one task).
    pub fn add(&mut self, other: Usage) {
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// A finished completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The generated text.
    pub text: String,
    /// Why generation stopped.
    pub finish_reason: FinishReason,
    /// Token accounting.
    pub usage: Usage,
    /// Name of the model that produced this completion.
    pub model: String,
    /// Simulated inference latency in microseconds (from the latency model;
    /// no wall clock is consulted).
    pub simulated_latency_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_valid() {
        assert!(GenerationParams::default().validate().is_ok());
    }

    #[test]
    fn bad_temperature_rejected() {
        let p = GenerationParams::default().with_temperature(3.0);
        assert!(matches!(p.validate(), Err(LlmError::InvalidParams(_))));
        let p = GenerationParams::default().with_temperature(f64::NAN);
        assert!(p.validate().is_err());
        let p = GenerationParams::default().with_temperature(-0.1);
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_max_tokens_rejected() {
        let p = GenerationParams::default().with_max_tokens(0);
        assert!(p.validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let p = GenerationParams::default()
            .with_temperature(0.7)
            .with_max_tokens(64)
            .with_seed(7)
            .with_stop("\n\n");
        assert_eq!(p.temperature, 0.7);
        assert_eq!(p.max_tokens, 64);
        assert_eq!(p.seed, 7);
        assert_eq!(p.stop, vec!["\n\n".to_string()]);
    }

    #[test]
    fn usage_arithmetic() {
        let mut u = Usage {
            prompt_tokens: 10,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 15);
        u.add(Usage {
            prompt_tokens: 1,
            completion_tokens: 2,
        });
        assert_eq!(u.prompt_tokens, 11);
        assert_eq!(u.completion_tokens, 7);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Completion {
            text: "hi".into(),
            finish_reason: FinishReason::Stop,
            usage: Usage {
                prompt_tokens: 3,
                completion_tokens: 1,
            },
            model: "proxy-gpt".into(),
            simulated_latency_us: 1234,
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: Completion = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
