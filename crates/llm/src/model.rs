//! The [`LanguageModel`] trait — the narrow waist every DB-GPT layer
//! programs against — plus the [`ModelId`] newtype.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::chat::{ChatRequest, PromptFormat};
use crate::error::LlmError;
use crate::latency::LatencyModel;
use crate::stream::TokenStream;
use crate::types::{Completion, GenerationParams};

/// Stable identifier for a registered model (e.g. `proxy-gpt`, `sim-qwen`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub String);

impl ModelId {
    /// Construct from anything string-like.
    pub fn new(name: impl Into<String>) -> Self {
        ModelId(name.into())
    }

    /// Borrow the underlying name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(s: &str) -> Self {
        ModelId(s.to_string())
    }
}

/// A language model backend.
///
/// Everything above this trait (agents, RAG, apps, SMMF workers) is
/// model-agnostic; everything below it (the simulated model zoo, a future
/// network-backed client) is interchangeable.
pub trait LanguageModel: Send + Sync {
    /// This model's identifier.
    fn id(&self) -> &ModelId;

    /// Context window in billable tokens.
    fn context_window(&self) -> usize;

    /// Chat template the model was trained with.
    fn prompt_format(&self) -> PromptFormat;

    /// The model's serving-cost self-description, used by schedulers (the
    /// batch engine, SMMF benchmarks) to simulate prefill/decode time.
    /// Defaults to free for backends that don't model latency.
    fn latency_model(&self) -> LatencyModel {
        LatencyModel::ZERO
    }

    /// Generate a completion for a raw prompt.
    fn generate(&self, prompt: &str, params: &GenerationParams) -> Result<Completion, LlmError>;

    /// Generate a completion and expose it as a token stream (the default
    /// implementation completes eagerly then streams the chunks — exactly
    /// what an SSE proxy in front of a non-streaming backend does).
    fn generate_stream(
        &self,
        prompt: &str,
        params: &GenerationParams,
    ) -> Result<TokenStream, LlmError> {
        let completion = self.generate(prompt, params)?;
        Ok(TokenStream::from_completion(completion))
    }

    /// Convenience: render a chat request in this model's native template
    /// and generate.
    fn chat(&self, request: &ChatRequest, params: &GenerationParams) -> Result<Completion, LlmError> {
        let prompt = request.render(self.prompt_format());
        self.generate(&prompt, params)
    }
}

/// Shared handle to a model.
pub type SharedModel = Arc<dyn LanguageModel>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FinishReason, Usage};

    /// A trivially-correct model used to test the trait's default methods.
    struct Parrot(ModelId);

    impl LanguageModel for Parrot {
        fn id(&self) -> &ModelId {
            &self.0
        }
        fn context_window(&self) -> usize {
            128
        }
        fn prompt_format(&self) -> PromptFormat {
            PromptFormat::Plain
        }
        fn generate(&self, prompt: &str, _p: &GenerationParams) -> Result<Completion, LlmError> {
            Ok(Completion {
                text: prompt.to_string(),
                finish_reason: FinishReason::Stop,
                usage: Usage::default(),
                model: self.0.to_string(),
                simulated_latency_us: 0,
            })
        }
    }

    #[test]
    fn model_id_display_and_eq() {
        let a = ModelId::new("proxy-gpt");
        let b: ModelId = "proxy-gpt".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "proxy-gpt");
        assert_eq!(a.as_str(), "proxy-gpt");
    }

    #[test]
    fn default_stream_replays_completion() {
        let m = Parrot(ModelId::new("parrot"));
        let s = m
            .generate_stream("a b c", &GenerationParams::default())
            .unwrap();
        let text: String = s.collect();
        assert_eq!(text, "a b c");
    }

    #[test]
    fn chat_renders_native_format() {
        let m = Parrot(ModelId::new("parrot"));
        let req = ChatRequest::from_user("hello");
        let out = m.chat(&req, &GenerationParams::default()).unwrap();
        assert!(out.text.contains("USER: hello"));
        assert!(out.text.ends_with("ASSISTANT: "));
    }

    #[test]
    fn trait_object_is_usable() {
        let m: SharedModel = Arc::new(Parrot(ModelId::new("parrot")));
        assert_eq!(m.context_window(), 128);
    }
}
