//! A deterministic word/punctuation tokenizer.
//!
//! Real LLM stacks use subword (BPE) tokenizers; for the simulated models in
//! this repository the interesting properties of a tokenizer are that it is
//! (a) deterministic, (b) reversible enough to stream completions token by
//! token, and (c) produces counts that grow linearly with text length so the
//! context-window and latency models behave realistically. A
//! word-and-punctuation tokenizer satisfies all three.
//!
//! The hot paths (`count`, `truncate`, chunking for streams, id encoding)
//! all run over two non-allocating iterators:
//!
//! - [`TokenIter`] yields [`Token`] slices (word / punct / whitespace run);
//! - [`ChunkIter`] yields *stream chunks*: contiguous slices pairing each
//!   billable token with the whitespace that precedes it, so concatenating
//!   the chunks reproduces the input byte for byte. Chunks are also the
//!   unit of the token-ID layer ([`crate::intern`]) and of the prefix cache
//!   ([`crate::prefix`]).

/// A borrowed token: either a word, a punctuation mark, or whitespace run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Alphanumeric word (includes CJK characters, one token per char —
    /// mirroring how real tokenizers treat Chinese text).
    Word,
    /// A single punctuation/symbol character.
    Punct,
    /// A run of whitespace.
    Space,
}

/// A token slice into the original text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token's text.
    pub text: &'a str,
    /// Its classification.
    pub kind: TokenKind,
}

/// Non-allocating iterator over the tokens of a text (see [`Tokenizer::tokens`]).
#[derive(Debug, Clone)]
pub struct TokenIter<'a> {
    text: &'a str,
    /// Byte offset of the next unread character.
    pos: usize,
}

impl<'a> TokenIter<'a> {
    fn new(text: &'a str) -> Self {
        TokenIter { text, pos: 0 }
    }

    /// Byte offset just past the last yielded token.
    fn offset(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        let rest = &self.text[self.pos..];
        let mut chars = rest.char_indices();
        let (_, first) = chars.next()?;
        let start = self.pos;
        let (len, kind) = if first.is_whitespace() {
            let mut len = first.len_utf8();
            for (i, c) in chars {
                if c.is_whitespace() {
                    len = i + c.len_utf8();
                } else {
                    break;
                }
            }
            (len, TokenKind::Space)
        } else if is_cjk(first) {
            (first.len_utf8(), TokenKind::Word)
        } else if first.is_alphanumeric() || first == '_' {
            let mut len = first.len_utf8();
            for (i, c) in chars {
                if (c.is_alphanumeric() || c == '_') && !is_cjk(c) {
                    len = i + c.len_utf8();
                } else {
                    break;
                }
            }
            (len, TokenKind::Word)
        } else {
            (first.len_utf8(), TokenKind::Punct)
        };
        self.pos += len;
        Some(Token {
            text: &self.text[start..start + len],
            kind,
        })
    }
}

/// Non-allocating iterator over stream chunks (see [`Tokenizer::chunks`]).
///
/// Each chunk is a contiguous slice of the input: the whitespace run (if
/// any) preceding one billable token, plus that token — or, as a final
/// chunk, a trailing whitespace run. Concatenating every chunk reproduces
/// the input exactly, and the number of non-trailing-space chunks equals
/// [`Tokenizer::count`].
#[derive(Debug, Clone)]
pub struct ChunkIter<'a> {
    tokens: TokenIter<'a>,
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        let text = self.tokens.text;
        let start = self.tokens.offset();
        loop {
            match self.tokens.next() {
                Some(t) if t.kind == TokenKind::Space => continue,
                Some(_) => return Some(&text[start..self.tokens.offset()]),
                None => {
                    // Trailing whitespace (if any) becomes the last chunk.
                    if self.tokens.offset() > start {
                        return Some(&text[start..self.tokens.offset()]);
                    }
                    return None;
                }
            }
        }
    }
}

/// The tokenizer. Stateless; all methods take `&self` so it can be shared.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Create a tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Iterate the tokens of `text` without allocating.
    pub fn tokens<'a>(&self, text: &'a str) -> TokenIter<'a> {
        TokenIter::new(text)
    }

    /// Iterate the stream chunks of `text` without allocating (whitespace
    /// attached to the following billable token; see [`ChunkIter`]).
    pub fn chunks<'a>(&self, text: &'a str) -> ChunkIter<'a> {
        ChunkIter {
            tokens: TokenIter::new(text),
        }
    }

    /// Tokenize `text` into word / punctuation / whitespace tokens.
    ///
    /// CJK ideographs are split one-per-token (like real BPE vocabularies,
    /// which rarely merge Chinese characters), which matters for the
    /// multilingual paths in the application layer.
    pub fn tokenize<'a>(&self, text: &'a str) -> Vec<Token<'a>> {
        self.tokens(text).collect()
    }

    /// Count the *billable* tokens in `text` (words + punctuation; whitespace
    /// is free, matching how BPE folds spaces into word tokens).
    pub fn count(&self, text: &str) -> usize {
        self.tokens(text)
            .filter(|t| t.kind != TokenKind::Space)
            .count()
    }

    /// Split a completion into the chunks emitted by the streaming API:
    /// whitespace is attached to the following token so concatenating the
    /// chunks reproduces the original text exactly. Allocates one `String`
    /// per chunk; prefer [`Tokenizer::chunks`] on hot paths.
    pub fn stream_chunks(&self, text: &str) -> Vec<String> {
        self.chunks(text).map(str::to_string).collect()
    }

    /// Truncate `text` to at most `max_tokens` billable tokens, preserving
    /// whitespace structure. Returns the prefix as an owned string plus the
    /// number of billable tokens kept.
    pub fn truncate(&self, text: &str, max_tokens: usize) -> (String, usize) {
        let mut kept = 0usize;
        // Byte offset just past the last billable token we kept; trailing
        // whitespace is never included in a truncated prefix.
        let mut cut = 0usize;
        let mut tokens = self.tokens(text);
        while let Some(t) = tokens.next() {
            if t.kind != TokenKind::Space {
                if kept == max_tokens {
                    return (text[..cut].to_string(), kept);
                }
                kept += 1;
                cut = tokens.offset();
            }
        }
        (text.to_string(), kept)
    }
}

/// Is `c` a CJK ideograph (or in the common CJK punctuation/extension areas)?
fn is_cjk(c: char) -> bool {
    matches!(c as u32,
        0x4E00..=0x9FFF      // CJK Unified Ideographs
        | 0x3400..=0x4DBF    // Extension A
        | 0xF900..=0xFAFF    // Compatibility Ideographs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk() -> Tokenizer {
        Tokenizer::new()
    }

    #[test]
    fn tokenize_words_and_punct() {
        let toks = tk().tokenize("SELECT a, b FROM t;");
        let words: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(|t| t.text)
            .collect();
        assert_eq!(words, vec!["SELECT", "a", "b", "FROM", "t"]);
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec![",", ";"]);
    }

    #[test]
    fn count_ignores_whitespace() {
        assert_eq!(tk().count("a  b\t\nc"), 3);
        assert_eq!(tk().count(""), 0);
        assert_eq!(tk().count("   "), 0);
    }

    #[test]
    fn cjk_chars_are_individual_tokens() {
        // "构建销售报表" = 6 ideographs = 6 tokens.
        assert_eq!(tk().count("构建销售报表"), 6);
        // Mixed text.
        assert_eq!(tk().count("build 报表 now"), 4);
    }

    #[test]
    fn underscores_stay_in_words() {
        assert_eq!(tk().count("user_name order_id"), 2);
    }

    #[test]
    fn stream_chunks_roundtrip() {
        let texts = [
            "hello world, this is  DB-GPT!",
            "  leading space",
            "trailing space  ",
            "多语言 support 混合",
            "",
        ];
        for text in texts {
            let chunks = tk().stream_chunks(text);
            let rebuilt: String = chunks.concat();
            assert_eq!(rebuilt, text, "roundtrip failed for {text:?}");
        }
    }

    #[test]
    fn chunk_iter_is_borrowed_and_matches_stream_chunks() {
        let text = "  SELECT a, b  FROM 订单 WHERE x_1 > 3;  ";
        let lazy: Vec<&str> = tk().chunks(text).collect();
        let eager = tk().stream_chunks(text);
        assert_eq!(lazy, eager.iter().map(String::as_str).collect::<Vec<_>>());
        // Every chunk except a trailing all-whitespace one carries exactly
        // one billable token.
        let billable = lazy
            .iter()
            .filter(|c| !c.chars().all(char::is_whitespace))
            .count();
        assert_eq!(billable, tk().count(text));
    }

    #[test]
    fn token_iter_matches_tokenize() {
        let text = "mixed 文本 with_punct! and  spaces";
        let lazy: Vec<Token> = tk().tokens(text).collect();
        assert_eq!(lazy, tk().tokenize(text));
    }

    #[test]
    fn truncate_respects_limit() {
        let (s, n) = tk().truncate("one two three four five", 3);
        assert_eq!(n, 3);
        assert_eq!(s, "one two three");
        assert_eq!(tk().count(&s), 3);
    }

    #[test]
    fn truncate_short_text_is_identity() {
        let (s, n) = tk().truncate("one two", 10);
        assert_eq!(s, "one two");
        assert_eq!(n, 2);
    }

    #[test]
    fn truncate_zero_tokens() {
        let (s, n) = tk().truncate("one two", 0);
        assert_eq!(n, 0);
        assert_eq!(tk().count(&s), 0);
    }

    #[test]
    fn token_count_scales_linearly() {
        let one = "word ".repeat(10);
        let two = "word ".repeat(20);
        assert_eq!(tk().count(&two), 2 * tk().count(&one));
    }
}
