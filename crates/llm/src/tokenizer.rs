//! A deterministic word/punctuation tokenizer.
//!
//! Real LLM stacks use subword (BPE) tokenizers; for the simulated models in
//! this repository the interesting properties of a tokenizer are that it is
//! (a) deterministic, (b) reversible enough to stream completions token by
//! token, and (c) produces counts that grow linearly with text length so the
//! context-window and latency models behave realistically. A
//! word-and-punctuation tokenizer satisfies all three.

/// A borrowed token: either a word, a punctuation mark, or whitespace run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Alphanumeric word (includes CJK characters, one token per char —
    /// mirroring how real tokenizers treat Chinese text).
    Word,
    /// A single punctuation/symbol character.
    Punct,
    /// A run of whitespace.
    Space,
}

/// A token slice into the original text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token's text.
    pub text: &'a str,
    /// Its classification.
    pub kind: TokenKind,
}

/// The tokenizer. Stateless; all methods take `&self` so it can be shared.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer;

impl Tokenizer {
    /// Create a tokenizer.
    pub fn new() -> Self {
        Tokenizer
    }

    /// Tokenize `text` into word / punctuation / whitespace tokens.
    ///
    /// CJK ideographs are split one-per-token (like real BPE vocabularies,
    /// which rarely merge Chinese characters), which matters for the
    /// multilingual paths in the application layer.
    pub fn tokenize<'a>(&self, text: &'a str) -> Vec<Token<'a>> {
        let mut tokens = Vec::with_capacity(text.len() / 4 + 1);
        let mut chars = text.char_indices().peekable();
        while let Some((start, c)) = chars.next() {
            if c.is_whitespace() {
                let mut end = start + c.len_utf8();
                while let Some(&(i, nc)) = chars.peek() {
                    if nc.is_whitespace() {
                        end = i + nc.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    text: &text[start..end],
                    kind: TokenKind::Space,
                });
            } else if is_cjk(c) {
                tokens.push(Token {
                    text: &text[start..start + c.len_utf8()],
                    kind: TokenKind::Word,
                });
            } else if c.is_alphanumeric() || c == '_' {
                let mut end = start + c.len_utf8();
                while let Some(&(i, nc)) = chars.peek() {
                    if (nc.is_alphanumeric() || nc == '_') && !is_cjk(nc) {
                        end = i + nc.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    text: &text[start..end],
                    kind: TokenKind::Word,
                });
            } else {
                tokens.push(Token {
                    text: &text[start..start + c.len_utf8()],
                    kind: TokenKind::Punct,
                });
            }
        }
        tokens
    }

    /// Count the *billable* tokens in `text` (words + punctuation; whitespace
    /// is free, matching how BPE folds spaces into word tokens).
    pub fn count(&self, text: &str) -> usize {
        self.tokenize(text)
            .iter()
            .filter(|t| t.kind != TokenKind::Space)
            .count()
    }

    /// Split a completion into the chunks emitted by the streaming API:
    /// whitespace is attached to the following token so concatenating the
    /// chunks reproduces the original text exactly.
    pub fn stream_chunks(&self, text: &str) -> Vec<String> {
        let tokens = self.tokenize(text);
        let mut chunks = Vec::with_capacity(tokens.len());
        let mut pending_space: Option<&str> = None;
        for t in tokens {
            match t.kind {
                TokenKind::Space => {
                    // Merge consecutive whitespace into the pending prefix.
                    pending_space = Some(match pending_space {
                        None => t.text,
                        Some(_) => t.text, // runs are already merged by tokenize
                    });
                }
                _ => {
                    let mut s = String::with_capacity(t.text.len() + 1);
                    if let Some(sp) = pending_space.take() {
                        s.push_str(sp);
                    }
                    s.push_str(t.text);
                    chunks.push(s);
                }
            }
        }
        if let Some(sp) = pending_space {
            chunks.push(sp.to_string());
        }
        chunks
    }

    /// Truncate `text` to at most `max_tokens` billable tokens, preserving
    /// whitespace structure. Returns the prefix as an owned string plus the
    /// number of billable tokens kept.
    pub fn truncate(&self, text: &str, max_tokens: usize) -> (String, usize) {
        let mut kept = 0usize;
        let mut pos = 0usize;
        // Byte offset just past the last billable token we kept; trailing
        // whitespace is never included in a truncated prefix.
        let mut cut = 0usize;
        for t in self.tokenize(text) {
            let at_limit = kept == max_tokens;
            if t.kind != TokenKind::Space && at_limit {
                return (text[..cut].to_string(), kept);
            }
            pos += t.text.len();
            if t.kind != TokenKind::Space {
                kept += 1;
                cut = pos;
            }
        }
        (text.to_string(), kept)
    }
}

/// Is `c` a CJK ideograph (or in the common CJK punctuation/extension areas)?
fn is_cjk(c: char) -> bool {
    matches!(c as u32,
        0x4E00..=0x9FFF      // CJK Unified Ideographs
        | 0x3400..=0x4DBF    // Extension A
        | 0xF900..=0xFAFF    // Compatibility Ideographs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk() -> Tokenizer {
        Tokenizer::new()
    }

    #[test]
    fn tokenize_words_and_punct() {
        let toks = tk().tokenize("SELECT a, b FROM t;");
        let words: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Word)
            .map(|t| t.text)
            .collect();
        assert_eq!(words, vec!["SELECT", "a", "b", "FROM", "t"]);
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, vec![",", ";"]);
    }

    #[test]
    fn count_ignores_whitespace() {
        assert_eq!(tk().count("a  b\t\nc"), 3);
        assert_eq!(tk().count(""), 0);
        assert_eq!(tk().count("   "), 0);
    }

    #[test]
    fn cjk_chars_are_individual_tokens() {
        // "构建销售报表" = 6 ideographs = 6 tokens.
        assert_eq!(tk().count("构建销售报表"), 6);
        // Mixed text.
        assert_eq!(tk().count("build 报表 now"), 4);
    }

    #[test]
    fn underscores_stay_in_words() {
        assert_eq!(tk().count("user_name order_id"), 2);
    }

    #[test]
    fn stream_chunks_roundtrip() {
        let texts = [
            "hello world, this is  DB-GPT!",
            "  leading space",
            "trailing space  ",
            "多语言 support 混合",
            "",
        ];
        for text in texts {
            let chunks = tk().stream_chunks(text);
            let rebuilt: String = chunks.concat();
            assert_eq!(rebuilt, text, "roundtrip failed for {text:?}");
        }
    }

    #[test]
    fn truncate_respects_limit() {
        let (s, n) = tk().truncate("one two three four five", 3);
        assert_eq!(n, 3);
        assert_eq!(s, "one two three");
        assert_eq!(tk().count(&s), 3);
    }

    #[test]
    fn truncate_short_text_is_identity() {
        let (s, n) = tk().truncate("one two", 10);
        assert_eq!(s, "one two");
        assert_eq!(n, 2);
    }

    #[test]
    fn truncate_zero_tokens() {
        let (s, n) = tk().truncate("one two", 0);
        assert_eq!(n, 0);
        assert_eq!(tk().count(&s), 0);
    }

    #[test]
    fn token_count_scales_linearly() {
        let one = "word ".repeat(10);
        let two = "word ".repeat(20);
        assert_eq!(tk().count(&two), 2 * tk().count(&one));
    }
}
