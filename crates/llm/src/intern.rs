//! The token-ID layer: a shared vocabulary interning stream chunks to
//! `u32` ids.
//!
//! Serving-path components (the batch engine, the prefix cache) want to
//! compare and hash prompt prefixes millions of times. Re-walking strings
//! for every comparison is the seed behaviour this layer replaces: a prompt
//! is encoded to a `Vec<u32>` **once** ([`Tokenizer::encode_ids`]) and every
//! later operation — prefix matching, cache keys, batching budgets — works
//! on machine words.
//!
//! Ids intern *stream chunks* (whitespace glued to the following billable
//! token, exactly the unit the streaming API emits), so an id sequence is
//! fully reversible: [`Tokenizer::decode_ids`] reproduces the original text
//! byte for byte, which is what lets a streaming decoder emit interned
//! completions without keeping the source string around.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::tokenizer::Tokenizer;

/// A shared, append-only vocabulary mapping chunk strings to dense `u32`
/// ids. Thread-safe and cheap to clone (clones share the same table).
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    inner: Arc<RwLock<VocabInner>>,
}

#[derive(Debug, Default)]
struct VocabInner {
    map: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocab::default()
    }

    /// Intern `chunk`, returning its stable id. Ids are dense and assigned
    /// in first-seen order, so two `Vocab`s fed the same chunk sequence
    /// assign identical ids (determinism across runs).
    pub fn intern(&self, chunk: &str) -> u32 {
        if let Some(&id) = self.inner.read().expect("vocab lock").map.get(chunk) {
            return id;
        }
        let mut inner = self.inner.write().expect("vocab lock");
        // Re-check: another writer may have interned it between locks.
        if let Some(&id) = inner.map.get(chunk) {
            return id;
        }
        let id = inner.strings.len() as u32;
        let s: Arc<str> = Arc::from(chunk);
        inner.strings.push(s.clone());
        inner.map.insert(s, id);
        id
    }

    /// Resolve an id back to its chunk text, or `None` for unknown ids.
    pub fn resolve(&self, id: u32) -> Option<Arc<str>> {
        self.inner
            .read()
            .expect("vocab lock")
            .strings
            .get(id as usize)
            .cloned()
    }

    /// Number of distinct chunks interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("vocab lock").strings.len()
    }

    /// Is the vocabulary empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Tokenizer {
    /// Encode `text` into interned chunk ids (one id per billable token,
    /// plus at most one trailing-whitespace id). The prompt is walked
    /// exactly once; everything downstream operates on the id sequence.
    pub fn encode_ids(&self, text: &str, vocab: &Vocab) -> Vec<u32> {
        self.chunks(text).map(|c| vocab.intern(c)).collect()
    }

    /// Decode an id sequence back to text. Unknown ids are skipped (they
    /// cannot occur for sequences produced by [`Tokenizer::encode_ids`]
    /// against the same vocabulary).
    pub fn decode_ids(&self, ids: &[u32], vocab: &Vocab) -> String {
        let mut out = String::new();
        for &id in ids {
            if let Some(s) = vocab.resolve(id) {
                out.push_str(&s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let v = Vocab::new();
        let a = v.intern("hello");
        let b = v.intern(" world");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(v.intern("hello"), a);
        assert_eq!(v.len(), 2);
        assert_eq!(v.resolve(a).unwrap().as_ref(), "hello");
        assert!(v.resolve(99).is_none());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tk = Tokenizer::new();
        let v = Vocab::new();
        for text in [
            "SELECT name, total FROM orders WHERE region = 'EMEA';",
            "  leading and trailing  ",
            "多语言 mixed 文本!",
            "",
        ] {
            let ids = tk.encode_ids(text, &v);
            assert_eq!(tk.decode_ids(&ids, &v), text, "roundtrip for {text:?}");
        }
    }

    #[test]
    fn id_count_tracks_billable_tokens() {
        let tk = Tokenizer::new();
        let v = Vocab::new();
        // No trailing whitespace: ids == billable tokens.
        let ids = tk.encode_ids("a b c", &v);
        assert_eq!(ids.len(), tk.count("a b c"));
        // Trailing whitespace adds exactly one reversibility id.
        let ids = tk.encode_ids("a b c  ", &v);
        assert_eq!(ids.len(), tk.count("a b c  ") + 1);
    }

    #[test]
    fn shared_prefixes_share_ids() {
        let tk = Tokenizer::new();
        let v = Vocab::new();
        let a = tk.encode_ids("system: be helpful. user: q one", &v);
        let b = tk.encode_ids("system: be helpful. user: q two", &v);
        let common = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        // Everything up to the divergent last token is id-identical.
        assert!(common >= a.len() - 2, "common={common} of {}", a.len());
    }

    #[test]
    fn clones_share_the_table() {
        let v = Vocab::new();
        let v2 = v.clone();
        let id = v.intern("shared");
        assert_eq!(v2.intern("shared"), id);
        assert_eq!(v2.len(), 1);
    }

    #[test]
    fn deterministic_across_instances() {
        let tk = Tokenizer::new();
        let mk = || {
            let v = Vocab::new();
            (
                tk.encode_ids("one two three", &v),
                tk.encode_ids("one two four", &v),
            )
        };
        assert_eq!(mk(), mk());
    }
}
