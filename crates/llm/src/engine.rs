//! [`BatchEngine`] — a continuous-batching scheduler for the simulated
//! serving path.
//!
//! Real inference servers (vLLM, TGI, DB-GPT's vLLM backend) do not serve
//! requests one at a time: they keep an *in-flight batch* that new requests
//! join at decode-step boundaries and finished requests leave immediately,
//! so the expensive decode loop is amortised over every concurrent request.
//! This module reproduces that scheduling discipline on the repository's
//! simulated µs clock:
//!
//! 1. queued requests are **admitted** into the in-flight batch in FIFO
//!    order, under a request cap and a token budget;
//! 2. at admission the prompt is encoded to interned token ids **once**
//!    ([`crate::intern`]) and checked against the radix **prefix cache**
//!    ([`crate::prefix`]); cached prefix tokens are discounted from the
//!    simulated prefill time while `Usage` still bills them;
//! 3. the engine then **steps**: each decode step advances the clock by one
//!    token-time and emits one token for every request whose prefill has
//!    completed; requests join and leave only at step boundaries.
//!
//! The *content* of every completion is produced by the underlying
//! [`LanguageModel`](crate::model::LanguageModel) with the caller's exact
//! `(prompt, params)` — so per-request outputs are byte-identical to the
//! sequential path by construction, and the engine's whole effect is on
//! simulated *time* (property-tested in `tests/batching.rs`).

use std::collections::VecDeque;

use dbgpt_obs::metrics::{COUNT_BUCKETS, LATENCY_BUCKETS_US};
use dbgpt_obs::{Obs, Span};

use crate::error::LlmError;
use crate::intern::Vocab;
use crate::latency::LatencyModel;
use crate::model::SharedModel;
use crate::prefix::{PrefixCache, PrefixCacheStats};
use crate::tokenizer::Tokenizer;
use crate::types::{Completion, GenerationParams};

/// Configuration for the batching engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Master switch. When `false`, callers that own a sequential path
    /// (e.g. `dbgpt-smmf`'s `ApiServer`) bypass the engine entirely, and a
    /// directly-driven engine degenerates to one-at-a-time scheduling with
    /// the prefix cache off — reproducing sequential timing exactly.
    pub enabled: bool,
    /// Maximum requests decoding concurrently.
    pub max_batch_requests: usize,
    /// Token budget for the in-flight batch: the sum of each admitted
    /// request's uncached prompt tokens plus completion tokens. A request
    /// that would overflow the budget waits (FIFO head-of-line), except
    /// that an empty batch always admits one request.
    pub max_batch_tokens: usize,
    /// Prefix-cache capacity in tokens (`0` disables the cache).
    pub prefix_cache_tokens: usize,
}

impl EngineConfig {
    /// Batching and prefix caching off: scheduling is one request at a
    /// time and timing matches the sequential path exactly.
    pub fn disabled() -> Self {
        EngineConfig {
            enabled: false,
            max_batch_requests: 1,
            max_batch_tokens: 1 << 30,
            prefix_cache_tokens: 0,
        }
    }

    /// A production-shaped default: 8-way batching, a 4k-token budget, a
    /// 64k-token prefix cache.
    pub fn full() -> Self {
        EngineConfig {
            enabled: true,
            max_batch_requests: 8,
            max_batch_tokens: 4096,
            prefix_cache_tokens: 1 << 16,
        }
    }

    /// Builder-style batch-size setter.
    pub fn with_batch_requests(mut self, n: usize) -> Self {
        self.max_batch_requests = n;
        self
    }

    /// Builder-style token-budget setter.
    pub fn with_batch_tokens(mut self, n: usize) -> Self {
        self.max_batch_tokens = n;
        self
    }

    /// Builder-style prefix-cache capacity setter (`0` = off).
    pub fn with_prefix_cache(mut self, tokens: usize) -> Self {
        self.prefix_cache_tokens = tokens;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::full()
    }
}

/// One request's scheduling outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCompletion {
    /// Id returned by [`BatchEngine::submit`], in submit order.
    pub id: usize,
    /// The completion (byte-identical to sequential generation) or the
    /// model's error.
    pub result: Result<Completion, LlmError>,
    /// Simulated time the request joined the in-flight batch, µs.
    pub admitted_us: u64,
    /// Simulated time of the first decoded token (prefill end for
    /// zero-token completions; `admitted_us` for errors), µs.
    pub first_token_us: u64,
    /// Simulated completion time, µs.
    pub finished_us: u64,
    /// Prompt tokens satisfied by the prefix cache (billed but not
    /// re-prefilled).
    pub cached_prefix_tokens: usize,
    /// `finished_us - admitted_us`: the request's simulated latency under
    /// batching (the sequential latency stays in `result`'s
    /// `simulated_latency_us`, untouched).
    pub batched_latency_us: u64,
}

/// Summary of one [`BatchEngine::run`] drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineRun {
    /// Engine clock when the drain started, µs.
    pub started_us: u64,
    /// Engine clock when the last request finished, µs.
    pub finished_us: u64,
    /// `finished_us - started_us`: simulated wall time for the whole batch.
    pub makespan_us: u64,
    /// Decode steps executed.
    pub steps: u64,
    /// Largest concurrent in-flight batch observed.
    pub max_inflight: usize,
    /// Requests that completed successfully.
    pub succeeded: u64,
    /// Requests rejected by the model (errors pass through unscheduled).
    pub failed: u64,
    /// Billable prompt tokens across successful requests.
    pub prompt_tokens: u64,
    /// Completion tokens across successful requests.
    pub completion_tokens: u64,
    /// Prompt tokens served from the prefix cache (still billed).
    pub cached_prompt_tokens: u64,
    /// What the same requests would cost served one at a time (sum of each
    /// completion's sequential `simulated_latency_us`) — the baseline the
    /// batched makespan is measured against.
    pub sequential_us: u64,
}

impl EngineRun {
    /// Simulated throughput gain of batching: sequential cost over batched
    /// makespan (`1.0` when nothing ran).
    pub fn speedup(&self) -> f64 {
        if self.makespan_us == 0 {
            return 1.0;
        }
        self.sequential_us as f64 / self.makespan_us as f64
    }
}

/// A submitted-but-not-admitted request.
struct Pending {
    id: usize,
    prompt: String,
    params: GenerationParams,
    /// Set once the admission loop has generated (or the caller supplied)
    /// the completion; kept here so a budget-deferred head-of-line request
    /// is never generated twice.
    result: Option<Result<Completion, LlmError>>,
}

/// A request inside the in-flight batch.
struct InFlight {
    id: usize,
    completion: Completion,
    admitted_us: u64,
    /// Simulated time prefill (base + uncached prompt tokens) completes.
    prefill_done_us: u64,
    first_token_us: Option<u64>,
    /// Completion tokens still to decode.
    remaining: usize,
    /// Tokens this request holds against the batch token budget.
    footprint: usize,
    cached_prefix_tokens: usize,
}

/// The continuous-batching engine (see module docs).
pub struct BatchEngine {
    model: SharedModel,
    latency: LatencyModel,
    config: EngineConfig,
    tokenizer: Tokenizer,
    vocab: Vocab,
    cache: PrefixCache,
    clock_us: u64,
    queue: VecDeque<Pending>,
    next_id: usize,
    obs: Obs,
}

impl BatchEngine {
    /// Build an engine over `model` with an explicit latency model.
    pub fn new(model: SharedModel, latency: LatencyModel, config: EngineConfig) -> Self {
        let effective = if config.enabled {
            config
        } else {
            // A disabled engine driven directly degenerates to sequential
            // scheduling: batch of one, no prefix cache.
            EngineConfig {
                enabled: false,
                max_batch_requests: 1,
                max_batch_tokens: config.max_batch_tokens,
                prefix_cache_tokens: 0,
            }
        };
        BatchEngine {
            latency,
            tokenizer: Tokenizer::new(),
            vocab: Vocab::new(),
            cache: PrefixCache::new(effective.prefix_cache_tokens),
            clock_us: 0,
            queue: VecDeque::new(),
            next_id: 0,
            obs: Obs::disabled(),
            config: effective,
            model,
        }
    }

    /// Attach an observability handle; drains then record spans and
    /// metrics. The default handle is disabled and records nothing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The engine's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Build an engine using the model's own latency self-description.
    pub fn for_model(model: SharedModel, config: EngineConfig) -> Self {
        let latency = model.latency_model();
        Self::new(model, latency, config)
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current simulated engine time, µs.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Advance the engine clock (models inter-batch idle gaps).
    pub fn advance_clock(&mut self, us: u64) {
        self.clock_us += us;
    }

    /// Prefix-cache counters (lookups, hit tokens, evictions).
    pub fn cache_stats(&self) -> PrefixCacheStats {
        self.cache.stats()
    }

    /// Distinct chunks interned by the token-ID layer so far.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Queue a request; the completion is generated at admission with
    /// exactly these `(prompt, params)`, so its content matches sequential
    /// generation byte for byte. Returns the request id.
    pub fn submit(&mut self, prompt: impl Into<String>, params: GenerationParams) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending {
            id,
            prompt: prompt.into(),
            params,
            result: None,
        });
        id
    }

    /// Queue a request whose completion was already produced elsewhere
    /// (e.g. by an SMMF worker with fault injection); the engine only
    /// schedules its timing. Returns the request id.
    pub fn submit_completed(
        &mut self,
        prompt: impl Into<String>,
        result: Result<Completion, LlmError>,
    ) -> usize {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(Pending {
            id,
            prompt: prompt.into(),
            params: GenerationParams::default(),
            result: Some(result),
        });
        id
    }

    /// Drain the queue through the continuous-batching schedule, returning
    /// per-request outcomes (in submit order) plus the run summary. The
    /// engine clock ends at the batch's finish time, and the prefix cache
    /// persists across runs (so later batches hit prefixes warmed by
    /// earlier ones).
    pub fn run(&mut self) -> (Vec<ScheduledCompletion>, EngineRun) {
        self.run_traced(None)
    }

    /// Like [`BatchEngine::run`], recording the drain as a child of
    /// `parent` when that span is live (otherwise the drain becomes its
    /// own trace if this engine's [`Obs`] is enabled, or records nothing).
    pub fn run_traced(&mut self, parent: Option<&Span>) -> (Vec<ScheduledCompletion>, EngineRun) {
        let max_requests = self.config.max_batch_requests.max(1);
        let started = self.clock_us;
        let span = match parent {
            Some(p) => p.child("llm.engine.run", started),
            None => self.obs.span("llm.engine.run", started),
        };
        let cache_before = self.cache.stats();
        let mut now = self.clock_us;
        let mut inflight: Vec<InFlight> = Vec::new();
        let mut inflight_tokens = 0usize;
        let mut out: Vec<ScheduledCompletion> = Vec::new();
        let mut run = EngineRun {
            started_us: started,
            ..EngineRun::default()
        };

        loop {
            // ---- admission, at the current step boundary ----------------
            while inflight.len() < max_requests {
                let Some(front) = self.queue.front_mut() else { break };
                let result = match front.result.take() {
                    Some(r) => r,
                    None => self.model.generate(&front.prompt, &front.params),
                };
                let completion = match result {
                    Err(e) => {
                        // Rejected before scheduling: zero simulated cost,
                        // exactly like the sequential path's validation.
                        let p = self.queue.pop_front().expect("front exists");
                        run.failed += 1;
                        out.push(ScheduledCompletion {
                            id: p.id,
                            result: Err(e),
                            admitted_us: now,
                            first_token_us: now,
                            finished_us: now,
                            cached_prefix_tokens: 0,
                            batched_latency_us: 0,
                        });
                        continue;
                    }
                    Ok(c) => c,
                };
                let footprint = completion.usage.total();
                if !inflight.is_empty() && inflight_tokens + footprint > self.config.max_batch_tokens
                {
                    // Head-of-line request doesn't fit the token budget;
                    // it (and FIFO order) waits for departures.
                    front.result = Some(Ok(completion));
                    break;
                }
                let p = self.queue.pop_front().expect("front exists");
                let prompt_tokens = completion.usage.prompt_tokens;
                // Token-ID layer: walk the prompt string once, then work
                // in ids. The cached-prefix discount is capped to billable
                // prompt tokens (ids may carry one trailing-space chunk).
                let ids = self.tokenizer.encode_ids(&p.prompt, &self.vocab);
                let cached = self.cache.admit(&ids).min(prompt_tokens);
                let prefill_done = now + self.latency.prefill_us(prompt_tokens, cached);
                run.prompt_tokens += prompt_tokens as u64;
                run.completion_tokens += completion.usage.completion_tokens as u64;
                run.cached_prompt_tokens += cached as u64;
                run.sequential_us += completion.simulated_latency_us;
                inflight_tokens += footprint;
                if span.is_recording() {
                    span.event(
                        now,
                        format!("admit id={} cached={cached} footprint={footprint}", p.id),
                    );
                }
                inflight.push(InFlight {
                    id: p.id,
                    remaining: completion.usage.completion_tokens,
                    completion,
                    admitted_us: now,
                    prefill_done_us: prefill_done,
                    first_token_us: None,
                    footprint,
                    cached_prefix_tokens: cached,
                });
                run.max_inflight = run.max_inflight.max(inflight.len());
            }

            // ---- retire zero-decode requests whose prefill is done ------
            let mut i = 0;
            while i < inflight.len() {
                if inflight[i].remaining == 0 && inflight[i].prefill_done_us <= now {
                    let r = inflight.swap_remove(i);
                    inflight_tokens -= r.footprint;
                    run.succeeded += 1;
                    out.push(ScheduledCompletion {
                        id: r.id,
                        admitted_us: r.admitted_us,
                        first_token_us: r.prefill_done_us,
                        finished_us: r.prefill_done_us,
                        cached_prefix_tokens: r.cached_prefix_tokens,
                        batched_latency_us: r.prefill_done_us - r.admitted_us,
                        result: Ok(r.completion),
                    });
                } else {
                    i += 1;
                }
            }

            if inflight.is_empty() {
                if self.queue.is_empty() {
                    break;
                }
                continue; // an empty batch always admits the next request
            }

            // ---- advance to the next prefill completion if nobody is
            //      ready to decode ---------------------------------------
            let step_start = now;
            if !inflight.iter().any(|r| r.prefill_done_us <= step_start) {
                now = inflight
                    .iter()
                    .map(|r| r.prefill_done_us)
                    .min()
                    .expect("inflight non-empty");
                continue;
            }

            // ---- one decode step: every prefilled request emits a token -
            run.steps += 1;
            now += self.latency.decode_us_per_token;
            let mut decoding = 0u64;
            let mut i = 0;
            while i < inflight.len() {
                if inflight[i].prefill_done_us > step_start {
                    i += 1;
                    continue;
                }
                decoding += 1;
                if inflight[i].first_token_us.is_none() {
                    inflight[i].first_token_us = Some(now);
                }
                inflight[i].remaining -= 1;
                if inflight[i].remaining == 0 {
                    let r = inflight.swap_remove(i);
                    inflight_tokens -= r.footprint;
                    run.succeeded += 1;
                    // Exemplar: the latency bucket remembers the trace of
                    // the run that produced its slowest request, so a p99
                    // bucket in obs_exemplars links back to a trace tree.
                    match span.trace_id() {
                        Some(t) => self.obs.observe_exemplar(
                            "llm.engine.batched_latency_us",
                            LATENCY_BUCKETS_US,
                            now - r.admitted_us,
                            t,
                        ),
                        None => self
                            .obs
                            .observe("llm.engine.batched_latency_us", now - r.admitted_us),
                    }
                    out.push(ScheduledCompletion {
                        id: r.id,
                        admitted_us: r.admitted_us,
                        first_token_us: r.first_token_us.expect("just decoded"),
                        finished_us: now,
                        cached_prefix_tokens: r.cached_prefix_tokens,
                        batched_latency_us: now - r.admitted_us,
                        result: Ok(r.completion),
                    });
                } else {
                    i += 1;
                }
            }
            self.obs
                .observe_with("llm.engine.batch_occupancy", COUNT_BUCKETS, decoding);
        }

        self.clock_us = now;
        run.finished_us = now;
        run.makespan_us = now - started;
        out.sort_by_key(|c| c.id);

        self.obs.counter("llm.engine.runs", 1);
        self.obs.counter("llm.engine.steps", run.steps);
        self.obs.counter("llm.engine.succeeded", run.succeeded);
        self.obs.counter("llm.engine.failed", run.failed);
        self.obs.counter("llm.engine.prompt_tokens", run.prompt_tokens);
        self.obs
            .counter("llm.engine.completion_tokens", run.completion_tokens);
        self.obs
            .counter("llm.engine.cached_prompt_tokens", run.cached_prompt_tokens);
        self.obs.observe("llm.engine.makespan_us", run.makespan_us);
        let cache_after = self.cache.stats();
        self.obs.counter(
            "llm.prefix_cache.lookups",
            cache_after.lookups - cache_before.lookups,
        );
        self.obs.counter(
            "llm.prefix_cache.lookup_tokens",
            cache_after.lookup_tokens - cache_before.lookup_tokens,
        );
        self.obs.counter(
            "llm.prefix_cache.hit_tokens",
            cache_after.hit_tokens - cache_before.hit_tokens,
        );
        self.obs.counter(
            "llm.prefix_cache.inserted_tokens",
            cache_after.inserted_tokens - cache_before.inserted_tokens,
        );
        self.obs.counter(
            "llm.prefix_cache.evicted_tokens",
            cache_after.evicted_tokens - cache_before.evicted_tokens,
        );
        if span.is_recording() {
            span.attr("steps", run.steps);
            span.attr("max_inflight", run.max_inflight);
            span.attr("succeeded", run.succeeded);
            span.attr("failed", run.failed);
            span.attr("cached_prompt_tokens", run.cached_prompt_tokens);
        }
        span.end(now);
        (out, run)
    }
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("model", &self.model.id().to_string())
            .field("config", &self.config)
            .field("clock_us", &self.clock_us)
            .field("queued", &self.queue.len())
            .field("vocab", &self.vocab.len())
            .field("cache", &self.cache.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimLlm, SimModelSpec};
    use std::sync::Arc;

    fn timed_model(name: &str) -> SharedModel {
        let mut spec = SimModelSpec::for_tests(name);
        spec.latency = LatencyModel {
            base_us: 1_000,
            prefill_us_per_token: 10,
            decode_us_per_token: 1_000,
        };
        Arc::new(SimLlm::with_default_skills(spec))
    }

    fn prompts() -> Vec<String> {
        let system = "### Task: chat\nYou are DB-GPT, a data analysis copilot. \
                      Answer with precision and cite the schema when relevant.";
        (0..6)
            .map(|i| format!("{system}\nUser question number {i}: explain indexes please"))
            .collect()
    }

    #[test]
    fn disabled_engine_reproduces_sequential_timing() {
        let model = timed_model("seq");
        let mut eng = BatchEngine::for_model(model.clone(), EngineConfig::disabled());
        let params = GenerationParams::default();
        for p in prompts() {
            eng.submit(p, params.clone());
        }
        let (outs, run) = eng.run();
        let mut expected_total = 0u64;
        for (p, s) in prompts().iter().zip(&outs) {
            let direct = model.generate(p, &params).unwrap();
            let sc = s.result.as_ref().unwrap();
            assert_eq!(sc, &direct, "disabled engine must not change completions");
            assert_eq!(
                s.batched_latency_us, direct.simulated_latency_us,
                "batch-of-one timing must equal the sequential latency"
            );
            assert_eq!(s.cached_prefix_tokens, 0, "cache must be off");
            expected_total += direct.simulated_latency_us;
        }
        assert_eq!(run.makespan_us, expected_total);
        assert_eq!(run.sequential_us, expected_total);
        assert!((run.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batching_preserves_completions_and_compresses_time() {
        let model = timed_model("batched");
        let params = GenerationParams::default();
        let cfg = EngineConfig::full().with_batch_requests(6);
        let mut eng = BatchEngine::for_model(model.clone(), cfg);
        for p in prompts() {
            eng.submit(p, params.clone());
        }
        let (outs, run) = eng.run();
        for (p, s) in prompts().iter().zip(&outs) {
            assert_eq!(
                s.result.as_ref().unwrap(),
                &model.generate(p, &params).unwrap(),
                "batched completions must be byte-identical to sequential"
            );
        }
        assert_eq!(run.max_inflight, 6);
        assert!(
            run.makespan_us < run.sequential_us,
            "6-way batching must beat sequential: {} vs {}",
            run.makespan_us,
            run.sequential_us
        );
        assert!(run.speedup() > 2.0, "speedup {:.2}", run.speedup());
    }

    #[test]
    fn prefix_cache_discounts_repeated_prefill() {
        let model = timed_model("cached");
        let params = GenerationParams::default();
        // Batch of one isolates the prefill effect.
        let cfg = EngineConfig::full().with_batch_requests(1);
        let mut warm = BatchEngine::for_model(model.clone(), cfg);
        let mut cold =
            BatchEngine::for_model(model.clone(), cfg.with_prefix_cache(0));
        for p in prompts() {
            warm.submit(p.clone(), params.clone());
            cold.submit(p, params.clone());
        }
        let (warm_outs, warm_run) = warm.run();
        let (cold_outs, cold_run) = cold.run();
        // Same completions either way; Usage still bills cached tokens.
        for (w, c) in warm_outs.iter().zip(&cold_outs) {
            assert_eq!(w.result, c.result);
        }
        assert!(warm_run.cached_prompt_tokens > 0, "shared prefixes must hit");
        assert_eq!(cold_run.cached_prompt_tokens, 0);
        assert!(
            warm_run.makespan_us < cold_run.makespan_us,
            "cache must save prefill time: {} vs {}",
            warm_run.makespan_us,
            cold_run.makespan_us
        );
        assert!(warm.cache_stats().hit_tokens > 0);
    }

    #[test]
    fn errors_pass_through_unscheduled() {
        let model = timed_model("err");
        let mut eng = BatchEngine::for_model(model, EngineConfig::full());
        eng.submit("   ", GenerationParams::default()); // empty prompt
        eng.submit("valid question about joins", GenerationParams::default());
        let (outs, run) = eng.run();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].result, Err(LlmError::EmptyPrompt));
        assert_eq!(outs[0].batched_latency_us, 0);
        assert!(outs[1].result.is_ok());
        assert_eq!(run.failed, 1);
        assert_eq!(run.succeeded, 1);
    }

    #[test]
    fn token_budget_defers_admission() {
        let model = timed_model("budget");
        let params = GenerationParams::default();
        // Budget so small only one request fits at a time.
        let cfg = EngineConfig::full()
            .with_batch_requests(8)
            .with_batch_tokens(1)
            .with_prefix_cache(0);
        let mut eng = BatchEngine::for_model(model.clone(), cfg);
        for p in prompts() {
            eng.submit(p, params.clone());
        }
        let (outs, run) = eng.run();
        assert_eq!(run.max_inflight, 1, "budget must serialize the batch");
        let total: u64 = outs
            .iter()
            .map(|s| s.result.as_ref().unwrap().simulated_latency_us)
            .sum();
        assert_eq!(run.makespan_us, total);
    }

    #[test]
    fn clock_and_cache_persist_across_runs() {
        let model = timed_model("persist");
        let params = GenerationParams::default();
        let mut eng =
            BatchEngine::for_model(model, EngineConfig::full().with_batch_requests(2));
        let p = prompts();
        eng.submit(p[0].clone(), params.clone());
        let (_, first) = eng.run();
        assert_eq!(eng.clock_us(), first.finished_us);
        assert_eq!(first.cached_prompt_tokens, 0);
        // The second run shares the first run's prompt prefix.
        eng.submit(p[1].clone(), params.clone());
        let (_, second) = eng.run();
        assert!(second.started_us >= first.finished_us);
        assert!(
            second.cached_prompt_tokens > 0,
            "cache must persist across runs"
        );
    }

    #[test]
    fn obs_off_is_identical_and_on_is_deterministic() {
        use dbgpt_obs::ObsConfig;
        let go = |cfg: ObsConfig| {
            let model = timed_model("obs");
            let mut eng =
                BatchEngine::for_model(model, EngineConfig::full().with_batch_requests(3));
            let obs = Obs::new(cfg);
            eng.set_obs(obs.clone());
            for p in prompts() {
                eng.submit(p, GenerationParams::default());
            }
            let (outs, run) = eng.run();
            let shape: Vec<_> = outs
                .iter()
                .map(|s| (s.id, s.result.clone(), s.admitted_us, s.finished_us))
                .collect();
            (shape, run, obs)
        };
        let (off, off_run, off_obs) = go(ObsConfig::disabled());
        let (on, on_run, on_obs) = go(ObsConfig::enabled(7));
        assert_eq!(off, on, "tracing must not change scheduling");
        assert_eq!(off_run, on_run);
        assert_eq!(off_obs.span_count(), 0);
        assert_eq!(off_obs.metrics_json(), Obs::disabled().metrics_json());
        assert!(on_obs.span_count() >= 1, "drain span recorded");
        assert!(on_obs.counter_value("llm.engine.steps") > 0);
        assert!(on_obs.counter_value("llm.prefix_cache.lookup_tokens") > 0);
        // Two identical traced runs dump byte-identical artifacts.
        let (_, _, again) = go(ObsConfig::enabled(7));
        assert_eq!(on_obs.trace_json(), again.trace_json());
        assert_eq!(on_obs.metrics_json(), again.metrics_json());
    }

    #[test]
    fn deterministic_replay() {
        let go = || {
            let model = timed_model("replay");
            let mut eng = BatchEngine::for_model(
                model,
                EngineConfig::full().with_batch_requests(3),
            );
            for p in prompts() {
                eng.submit(p, GenerationParams::default().with_seed(9));
            }
            let (outs, run) = eng.run();
            (
                outs.iter()
                    .map(|s| {
                        (
                            s.id,
                            s.result.clone(),
                            s.admitted_us,
                            s.first_token_us,
                            s.finished_us,
                            s.cached_prefix_tokens,
                        )
                    })
                    .collect::<Vec<_>>(),
                run,
            )
        };
        assert_eq!(go(), go(), "same submissions must replay identically");
    }
}
