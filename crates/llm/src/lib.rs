#![warn(missing_docs)]

//! # dbgpt-llm — simulated large-language-model substrate for `db-gpt-rs`
//!
//! DB-GPT (VLDB 2024 demo) is built *around* large language models: every
//! layer of the system — the multi-agent framework, AWEL workflows, the RAG
//! pipeline, SMMF model serving and the application layer — ultimately calls
//! into an LLM through a narrow inference interface.
//!
//! This crate provides that interface ([`LanguageModel`]) together with a
//! family of **deterministic simulated models**. A simulated model is a
//! structured-prompt interpreter: it tokenizes the prompt, recognises the
//! task section embedded by the upstream component (planning, extractive QA
//! over retrieved context, summarisation, translation, …) and produces a
//! plausible completion via rule/template engines with seeded sampling.
//!
//! ## Why simulation is faithful
//!
//! The paper's contributions (SMMF, AWEL, the agent framework, the RAG
//! plumbing) are *model-agnostic*: they only require something that maps a
//! prompt to a completion with token accounting and streaming. A
//! deterministic model exercises exactly the same code paths — prompt
//! assembly, context-window enforcement, streaming decode, output parsing —
//! while keeping every test reproducible and runnable offline.
//!
//! ## Crate map
//!
//! - [`tokenizer`] — whitespace/punctuation tokenizer with token accounting,
//!   built on non-allocating token/chunk iterators.
//! - [`intern`] — the token-ID layer: a shared [`Vocab`] interning stream
//!   chunks to `u32` ids (`encode_ids`/`decode_ids`, fully reversible).
//! - [`prefix`] — radix prefix cache over id sequences with LRU eviction
//!   and per-node hit accounting (simulated KV-prefix reuse).
//! - [`engine`] — [`BatchEngine`], the continuous-batching scheduler the
//!   SMMF serving path dispatches through.
//! - [`types`] — [`GenerationParams`], [`Completion`], [`Usage`].
//! - [`chat`] — chat messages and prompt-format rendering.
//! - [`model`] — the [`LanguageModel`] trait and [`ModelId`] newtype.
//! - [`skill`] — the [`PromptSkill`] extension point simulated models use.
//! - [`skills`] — built-in skills (planner, extractive QA, summarise, …).
//! - [`sim`] — [`SimLlm`], the simulated model runtime, plus its spec.
//! - [`catalog`] — the built-in model zoo (`proxy-gpt`, `sim-qwen`, …).
//! - [`stream`] — lazy token streaming.
//! - [`latency`] — the simulated latency model used by SMMF benchmarks,
//!   with cached-prefix-aware prefill costs.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_llm::{catalog, LanguageModel, GenerationParams};
//!
//! let model = catalog::builtin_model("proxy-gpt").unwrap();
//! let out = model
//!     .generate("### Task: summarize\nRust is fast. Rust is safe. Rust is fun.",
//!               &GenerationParams::default())
//!     .unwrap();
//! assert!(!out.text.is_empty());
//! assert!(out.usage.prompt_tokens > 0);
//! ```

pub mod catalog;
pub mod chat;
pub mod engine;
pub mod error;
pub mod intern;
pub mod latency;
pub mod model;
pub mod prefix;
pub mod sim;
pub mod skill;
pub mod skills;
pub mod stream;
pub mod tokenizer;
pub mod types;

pub use catalog::builtin_model;
pub use chat::{ChatMessage, ChatRequest, PromptFormat, Role};
pub use engine::{BatchEngine, EngineConfig, EngineRun, ScheduledCompletion};
pub use error::LlmError;
pub use intern::Vocab;
pub use latency::LatencyModel;
pub use model::{LanguageModel, ModelId, SharedModel};
pub use prefix::{PrefixCache, PrefixCacheStats};
pub use sim::{SimLlm, SimModelSpec};
pub use skill::{PromptSkill, SkillContext};
pub use stream::TokenStream;
pub use tokenizer::Tokenizer;
pub use types::{Completion, FinishReason, GenerationParams, Usage};
