//! Built-in skills for the simulated model zoo.
//!
//! Each submodule implements one [`crate::PromptSkill`]:
//!
//! - [`planner`] — turns a natural-language goal into a JSON task plan
//!   (drives the Multi-Agents framework's planning agent).
//! - [`extractive_qa`] — answers a question from supplied context paragraphs
//!   (the generation stage of the RAG pipeline, Fig. 2).
//! - [`summarize`] — lead-sentence summarisation.
//! - [`translate`] — zh↔en handling for the multilingual application paths.
//! - [`generic`] — the catch-all chat skill every model ends with.

pub mod extractive_qa;
pub mod generic;
pub mod planner;
pub mod summarize;
pub mod translate;

pub use extractive_qa::ExtractiveQaSkill;
pub use generic::GenericChatSkill;
pub use planner::PlannerSkill;
pub use summarize::SummarizeSkill;
pub use translate::TranslateSkill;

use crate::skill::SkillSet;
use std::sync::Arc;

/// The default skill bundle shared by every built-in simulated model.
pub fn default_skills() -> SkillSet {
    let mut set = SkillSet::new();
    set.register(Arc::new(PlannerSkill::new()));
    set.register(Arc::new(ExtractiveQaSkill::new()));
    set.register(Arc::new(SummarizeSkill::new()));
    set.register(Arc::new(TranslateSkill::new()));
    set.register(Arc::new(GenericChatSkill::new()));
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundle_order() {
        let set = default_skills();
        assert_eq!(
            set.names(),
            vec!["planner", "extractive-qa", "summarize", "translate", "generic-chat"]
        );
    }
}
