//! The translation skill — multilingual interaction support.
//!
//! Table 1 lists "Multilingual Interactions" as a DB-GPT capability
//! (English and Chinese, §1). The simulated models implement it with a
//! domain phrasebook covering the data-interaction vocabulary the
//! application layer actually uses, plus language detection so apps can
//! route Chinese goals through the same pipelines as English ones.

use crate::skill::{PromptSkill, SkillContext, StructuredPrompt};

/// zh → en phrasebook for the data-interaction domain. Longest-match-first
/// replacement; entries are ordered accordingly at construction.
const PHRASEBOOK: &[(&str, &str)] = &[
    ("构建销售报表", "build sales reports"),
    ("销售报表", "sales report"),
    ("用户订单", "user orders"),
    ("产品品类", "product category"),
    ("数据分析", "data analysis"),
    ("知识库", "knowledge base"),
    ("数据库", "database"),
    ("月度趋势", "monthly trend"),
    ("可视化", "visualization"),
    ("查询", "query"),
    ("销售", "sales"),
    ("报表", "report"),
    ("分析", "analyze"),
    ("用户", "user"),
    ("订单", "orders"),
    ("图表", "chart"),
    ("维度", "dimensions"),
    ("三个", "three"),
    ("四个", "four"),
    ("总额", "total"),
    ("月份", "month"),
    ("地区", "region"),
];

/// Fraction of CJK characters above which text counts as Chinese.
const CJK_THRESHOLD: f64 = 0.25;

/// Is `c` in the main CJK ranges?
fn is_cjk(c: char) -> bool {
    matches!(c as u32, 0x4E00..=0x9FFF | 0x3400..=0x4DBF)
}

/// Detected language of a piece of text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// Mostly English/Latin text.
    English,
    /// Mostly Chinese text.
    Chinese,
}

/// Detect the dominant language of `text`.
pub fn detect_language(text: &str) -> Language {
    let total = text.chars().filter(|c| !c.is_whitespace()).count();
    if total == 0 {
        return Language::English;
    }
    let cjk = text.chars().filter(|&c| is_cjk(c)).count();
    if (cjk as f64) / (total as f64) >= CJK_THRESHOLD {
        Language::Chinese
    } else {
        Language::English
    }
}

/// Translate Chinese data-interaction phrases to English using the
/// phrasebook (unknown spans pass through unchanged).
pub fn zh_to_en(text: &str) -> String {
    let mut out = text.to_string();
    for (zh, en) in PHRASEBOOK {
        if out.contains(zh) {
            // Insert spaces so the result tokenizes like English.
            out = out.replace(zh, &format!(" {en} "));
        }
    }
    // Collapse runs of spaces introduced by replacement.
    let mut collapsed = String::with_capacity(out.len());
    let mut last_space = true;
    for c in out.chars() {
        if c == ' ' {
            if !last_space {
                collapsed.push(' ');
            }
            last_space = true;
        } else {
            collapsed.push(c);
            last_space = false;
        }
    }
    collapsed.trim().to_string()
}

/// The translation skill (see module docs).
#[derive(Debug, Default)]
pub struct TranslateSkill;

impl TranslateSkill {
    /// Create the skill.
    pub fn new() -> Self {
        TranslateSkill
    }
}

impl PromptSkill for TranslateSkill {
    fn name(&self) -> &str {
        "translate"
    }

    fn matches(&self, prompt: &StructuredPrompt, _raw: &str) -> bool {
        matches!(prompt.task.as_deref(), Some("translate"))
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        _raw: &str,
        _ctx: &SkillContext,
    ) -> Option<String> {
        let input = prompt.input();
        if input.is_empty() {
            return None;
        }
        match detect_language(input) {
            Language::Chinese => Some(zh_to_en(input)),
            // en→zh is out of the phrasebook's scope: echo, which keeps the
            // pipeline total (apps treat English as canonical).
            Language::English => Some(input.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn ctx() -> SkillContext {
        SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 0,
            model: "t".into(),
        }
    }

    #[test]
    fn detects_chinese() {
        assert_eq!(detect_language("构建销售报表"), Language::Chinese);
        assert_eq!(detect_language("build sales reports"), Language::English);
        assert_eq!(detect_language(""), Language::English);
    }

    #[test]
    fn mixed_text_uses_threshold() {
        // One CJK char in a long English sentence stays English.
        assert_eq!(
            detect_language("please analyze the 表 in the database now"),
            Language::English
        );
    }

    #[test]
    fn demo_command_translates() {
        let en = zh_to_en("构建销售报表，从三个维度分析用户订单");
        assert!(en.contains("build sales reports"), "got: {en}");
        assert!(en.contains("three"));
        assert!(en.contains("dimensions"));
        assert!(en.contains("user"));
        assert!(en.contains("orders"));
    }

    #[test]
    fn longest_match_wins() {
        // "构建销售报表" must be matched before its substring "销售报表".
        let en = zh_to_en("构建销售报表");
        assert_eq!(en, "build sales reports");
    }

    #[test]
    fn skill_translates_chinese_input() {
        let raw = "### Task: translate\n### Input:\n查询销售总额";
        let parsed = StructuredPrompt::parse(raw);
        let skill = TranslateSkill::new();
        assert!(skill.matches(&parsed, raw));
        let out = skill.complete(&parsed, raw, &ctx()).unwrap();
        assert!(out.contains("query"));
        assert!(out.contains("total"));
    }

    #[test]
    fn skill_echoes_english_input() {
        let raw = "### Task: translate\n### Input:\nshow me the money";
        let parsed = StructuredPrompt::parse(raw);
        let out = TranslateSkill::new().complete(&parsed, raw, &ctx()).unwrap();
        assert_eq!(out, "show me the money");
    }

    #[test]
    fn unknown_chinese_passes_through() {
        let out = zh_to_en("你好世界");
        assert!(out.contains("你好世界"));
    }
}
