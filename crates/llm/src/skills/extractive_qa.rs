//! The extractive question-answering skill.
//!
//! This is the generation stage of the RAG pipeline (Fig. 2): the retrieval
//! stage places the top-k paragraphs into a `### Context:` section and the
//! question into `### Input:`; this skill then answers *extractively* by
//! scoring context sentences against the question and returning the best
//! ones. Extractive answering keeps the simulation honest — the model can
//! only answer from supplied context, so RAG recall experiments measure the
//! retrieval stack, not a hallucinating generator.

use std::collections::HashSet;

use crate::skill::{PromptSkill, SkillContext, StructuredPrompt};

/// Stop words ignored when scoring sentence overlap.
const STOP_WORDS: &[&str] = &[
    "the", "a", "an", "is", "are", "was", "were", "of", "in", "on", "to", "and", "or", "for",
    "with", "what", "which", "who", "how", "why", "when", "where", "does", "do", "did", "it",
    "this", "that", "be", "as", "at", "by", "from",
];

/// The extractive QA skill (see module docs).
#[derive(Debug, Default)]
pub struct ExtractiveQaSkill {
    /// Maximum sentences to include in an answer.
    max_sentences: usize,
}

impl ExtractiveQaSkill {
    /// Create with the default answer budget (2 sentences).
    pub fn new() -> Self {
        ExtractiveQaSkill { max_sentences: 2 }
    }

    /// Create with a custom sentence budget.
    pub fn with_max_sentences(max_sentences: usize) -> Self {
        ExtractiveQaSkill {
            max_sentences: max_sentences.max(1),
        }
    }
}

/// Lowercased content words of `text`.
fn content_words(text: &str) -> HashSet<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| !STOP_WORDS.contains(&w.as_str()))
        .collect()
}

/// Split text into sentences on `.`, `!`, `?`, `。`, and newlines.
fn sentences(text: &str) -> Vec<&str> {
    text.split_inclusive(['.', '!', '?', '。', '\n'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

impl PromptSkill for ExtractiveQaSkill {
    fn name(&self) -> &str {
        "extractive-qa"
    }

    fn matches(&self, prompt: &StructuredPrompt, _raw: &str) -> bool {
        let task_is_qa = matches!(prompt.task.as_deref(), Some("qa") | Some("answer"));
        // Also handle any untasked prompt that carries context + a question.
        task_is_qa || (prompt.task.is_none() && prompt.section("context").is_some())
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        _raw: &str,
        _ctx: &SkillContext,
    ) -> Option<String> {
        let context = prompt.section("context")?;
        let question = prompt.input();
        if context.trim().is_empty() {
            return Some(
                "I could not find relevant information in the knowledge base to answer that."
                    .to_string(),
            );
        }
        let q_words = content_words(question);
        let mut scored: Vec<(f64, usize, &str)> = sentences(context)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let s_words = content_words(s);
                let overlap = s_words.intersection(&q_words).count() as f64;
                let denom = (q_words.len().max(1)) as f64;
                (overlap / denom, i, s)
            })
            .collect();
        // Highest score first; ties broken by original order for determinism.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let best: Vec<&str> = scored
            .iter()
            .take(self.max_sentences)
            .filter(|(score, _, _)| *score > 0.0)
            .map(|&(_, _, s)| s)
            .collect();
        if best.is_empty() {
            return Some(
                "I could not find relevant information in the knowledge base to answer that."
                    .to_string(),
            );
        }
        Some(best.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn ctx() -> SkillContext {
        SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 0,
            model: "t".into(),
        }
    }

    fn answer(context: &str, question: &str) -> String {
        let raw = format!("### Task: qa\n### Context:\n{context}\n### Input:\n{question}");
        let parsed = StructuredPrompt::parse(&raw);
        let skill = ExtractiveQaSkill::new();
        assert!(skill.matches(&parsed, &raw));
        skill.complete(&parsed, &raw, &ctx()).unwrap()
    }

    #[test]
    fn answers_from_most_relevant_sentence() {
        let context = "DB-GPT uses AWEL to orchestrate workflows. \
                       The moon orbits the earth. \
                       SMMF manages private model deployments.";
        let a = answer(context, "what manages private model deployments?");
        assert!(a.contains("SMMF"), "got: {a}");
    }

    #[test]
    fn refuses_when_no_overlap() {
        let a = answer("Cats are mammals.", "quantum chromodynamics coupling constant?");
        assert!(a.contains("could not find"));
    }

    #[test]
    fn refuses_on_empty_context() {
        let raw = "### Task: qa\n### Context:\n\n### Input:\nanything?";
        let parsed = StructuredPrompt::parse(raw);
        let a = ExtractiveQaSkill::new()
            .complete(&parsed, raw, &ctx())
            .unwrap();
        assert!(a.contains("could not find"));
    }

    #[test]
    fn sentence_budget_respected() {
        let context = "Rust is fast. Rust is safe. Rust is fun. Rust is popular.";
        let raw = format!("### Task: qa\n### Context:\n{context}\n### Input:\ntell me about Rust");
        let parsed = StructuredPrompt::parse(&raw);
        let skill = ExtractiveQaSkill::with_max_sentences(1);
        let a = skill.complete(&parsed, &raw, &ctx()).unwrap();
        assert_eq!(sentences(&a).len(), 1);
    }

    #[test]
    fn matches_contextful_prompt_without_task() {
        let raw = "### Context:\nfoo bar\n### Input:\nfoo?";
        let parsed = StructuredPrompt::parse(raw);
        assert!(ExtractiveQaSkill::new().matches(&parsed, raw));
    }

    #[test]
    fn deterministic_tie_break_prefers_earlier_sentence() {
        let context = "Alpha mentions rust. Beta mentions rust.";
        let a = answer(context, "rust?");
        assert!(a.starts_with("Alpha"), "got: {a}");
    }

    #[test]
    fn content_words_filters_stop_words() {
        let w = content_words("What is the AWEL language?");
        assert!(w.contains("awel"));
        assert!(w.contains("language"));
        assert!(!w.contains("what"));
        assert!(!w.contains("the"));
    }

    #[test]
    fn sentence_splitter_handles_cjk_period() {
        let s = sentences("第一句。第二句。");
        assert_eq!(s.len(), 2);
    }
}
