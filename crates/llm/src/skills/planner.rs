//! The planning skill.
//!
//! DB-GPT's Multi-Agents framework "begins with invoking a planner to
//! generate a four-step strategy tailored to the task" (§3, Fig. 3 area ③).
//! This skill is the model-side half of that: given a `### Task: plan`
//! prompt whose `Input` is the user's goal, it emits a JSON array of plan
//! steps the planner agent parses back.
//!
//! The skill understands the sales-report demo goal specially — it detects
//! analysis *dimensions* (product category, user demographics, monthly
//! trend) and assigns the chart types the paper names (donut, bar, area) —
//! and degrades gracefully to a clause-per-step plan for arbitrary goals.

use serde::{Deserialize, Serialize};

use crate::skill::{PromptSkill, SkillContext, StructuredPrompt};

/// One step of a generated plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStep {
    /// 1-based step number.
    pub id: usize,
    /// Human-readable description.
    pub description: String,
    /// Which agent role should execute this step.
    pub agent: String,
    /// Chart type, when the step produces a chart.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub chart: Option<String>,
    /// Analysis dimension, when the step analyses data.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dimension: Option<String>,
}

/// A recognised analysis dimension with its paper-assigned chart type.
struct Dimension {
    keywords: &'static [&'static str],
    name: &'static str,
    chart: &'static str,
    description: &'static str,
}

const DIMENSIONS: &[Dimension] = &[
    Dimension {
        keywords: &["category", "categories", "product", "品类", "产品"],
        name: "product category",
        chart: "donut",
        description: "Analyze total sales by product category",
    },
    Dimension {
        keywords: &["user", "users", "customer", "demographic", "order", "orders", "用户", "客户"],
        name: "user demographics",
        chart: "bar",
        description: "Examine sales data from the perspective of user demographics",
    },
    Dimension {
        keywords: &["month", "monthly", "trend", "time", "季度", "月", "趋势"],
        name: "monthly trend",
        chart: "area",
        description: "Evaluate monthly sales trends",
    },
    Dimension {
        keywords: &["region", "regional", "geography", "city", "地区", "城市"],
        name: "region",
        chart: "bar",
        description: "Break down sales by region",
    },
];

/// The planning skill (see module docs).
#[derive(Debug, Default)]
pub struct PlannerSkill;

impl PlannerSkill {
    /// Create the skill.
    pub fn new() -> Self {
        PlannerSkill
    }

    /// Build the demo-style analysis plan when the goal mentions data
    /// analysis / reports, else a clause-per-step generic plan.
    fn plan_for(&self, goal: &str) -> Vec<PlanStep> {
        let lower = goal.to_lowercase();
        let is_analysis = ["report", "analy", "sales", "chart", "dashboard", "报表", "分析"]
            .iter()
            .any(|k| lower.contains(k));
        if is_analysis {
            self.analysis_plan(&lower, goal)
        } else {
            self.generic_plan(goal)
        }
    }

    fn analysis_plan(&self, lower_goal: &str, goal: &str) -> Vec<PlanStep> {
        // Pick the dimensions the goal mentions; default to the paper's
        // three (category, demographics, monthly trend) when it just asks
        // for "at least three distinct dimensions".
        let mut picked: Vec<&Dimension> = DIMENSIONS
            .iter()
            .filter(|d| d.keywords.iter().any(|k| lower_goal.contains(k)))
            .collect();
        let wanted = requested_dimension_count(lower_goal).unwrap_or(3).max(1);
        for d in DIMENSIONS {
            if picked.len() >= wanted {
                break;
            }
            if !picked.iter().any(|p| p.name == d.name) {
                picked.push(d);
            }
        }
        picked.truncate(wanted);
        // Present steps in the canonical order of Fig. 3: category, then
        // demographics, then trend (DIMENSIONS order).
        picked.sort_by_key(|d| {
            DIMENSIONS.iter().position(|x| x.name == d.name).unwrap_or(usize::MAX)
        });

        let mut steps = Vec::with_capacity(picked.len() + 1);
        for (i, d) in picked.iter().enumerate() {
            steps.push(PlanStep {
                id: i + 1,
                description: d.description.to_string(),
                agent: "chart_generator".into(),
                chart: Some(d.chart.to_string()),
                dimension: Some(d.name.to_string()),
            });
        }
        steps.push(PlanStep {
            id: steps.len() + 1,
            description: format!("Aggregate the charts and present the report for: {goal}"),
            agent: "aggregator".into(),
            chart: None,
            dimension: None,
        });
        steps
    }

    fn generic_plan(&self, goal: &str) -> Vec<PlanStep> {
        let clauses: Vec<&str> = goal
            .split(['.', ';', ',', '，', '。'])
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let mut steps: Vec<PlanStep> = clauses
            .iter()
            .enumerate()
            .map(|(i, c)| PlanStep {
                id: i + 1,
                description: c.to_string(),
                agent: "worker".into(),
                chart: None,
                dimension: None,
            })
            .collect();
        if steps.is_empty() {
            steps.push(PlanStep {
                id: 1,
                description: goal.to_string(),
                agent: "worker".into(),
                chart: None,
                dimension: None,
            });
        }
        steps.push(PlanStep {
            id: steps.len() + 1,
            description: "Summarize and report the results".into(),
            agent: "aggregator".into(),
            chart: None,
            dimension: None,
        });
        steps
    }
}

/// Parse "three distinct dimensions" / "3 dimensions" style requests.
fn requested_dimension_count(lower_goal: &str) -> Option<usize> {
    const WORDS: &[(&str, usize)] = &[
        ("two", 2),
        ("three", 3),
        ("four", 4),
        ("三个", 3),
        ("四个", 4),
    ];
    if let Some(pos) = lower_goal.find("dimension").or_else(|| lower_goal.find("维度")) {
        let before = &lower_goal[..pos];
        // Nearest number word or digit before "dimension".
        for (w, n) in WORDS {
            if before.contains(w) {
                return Some(*n);
            }
        }
        if let Some(d) = before.chars().rev().find(|c| c.is_ascii_digit()) {
            return d.to_digit(10).map(|n| n as usize);
        }
    }
    None
}

impl PromptSkill for PlannerSkill {
    fn name(&self) -> &str {
        "planner"
    }

    fn matches(&self, prompt: &StructuredPrompt, _raw: &str) -> bool {
        matches!(prompt.task.as_deref(), Some("plan") | Some("planning"))
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        _raw: &str,
        _ctx: &SkillContext,
    ) -> Option<String> {
        let goal = prompt.input();
        if goal.is_empty() {
            return None;
        }
        let steps = self.plan_for(goal);
        serde_json::to_string_pretty(&steps).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn run(goal: &str) -> Vec<PlanStep> {
        let skill = PlannerSkill::new();
        let raw = format!("### Task: plan\n### Input:\n{goal}");
        let parsed = StructuredPrompt::parse(&raw);
        assert!(skill.matches(&parsed, &raw));
        let ctx = SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 0,
            model: "t".into(),
        };
        let out = skill.complete(&parsed, &raw, &ctx).unwrap();
        serde_json::from_str(&out).unwrap()
    }

    #[test]
    fn demo_goal_yields_four_step_plan() {
        // The exact Fig. 3 command.
        let steps = run(
            "Build sales reports and analyze user orders from at least three distinct dimensions",
        );
        assert_eq!(steps.len(), 4, "planner + 3 charts + aggregate = 4 steps");
        let charts: Vec<&str> = steps
            .iter()
            .filter_map(|s| s.chart.as_deref())
            .collect();
        assert!(charts.contains(&"donut"));
        assert!(charts.contains(&"bar"));
        assert!(charts.contains(&"area"));
        assert_eq!(steps.last().unwrap().agent, "aggregator");
    }

    #[test]
    fn dimensions_follow_goal_keywords() {
        let steps = run("sales report by product category only, 1 dimension");
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].dimension.as_deref(), Some("product category"));
        assert_eq!(steps[0].chart.as_deref(), Some("donut"));
    }

    #[test]
    fn four_dimensions_when_requested() {
        let steps = run("build a sales report across four distinct dimensions");
        assert_eq!(steps.len(), 5);
    }

    #[test]
    fn chinese_goal_is_understood() {
        let steps = run("构建销售报表，从三个维度分析用户订单");
        assert_eq!(steps.len(), 4);
        assert!(steps.iter().any(|s| s.chart.as_deref() == Some("donut")));
    }

    #[test]
    fn generic_goal_splits_into_clauses() {
        let steps = run("collect the logs, parse the errors, email the summary");
        assert_eq!(steps.len(), 4); // 3 clauses + aggregate
        assert_eq!(steps[0].agent, "worker");
        assert_eq!(steps.last().unwrap().agent, "aggregator");
    }

    #[test]
    fn ids_are_sequential() {
        let steps = run("Build sales reports from three dimensions");
        for (i, s) in steps.iter().enumerate() {
            assert_eq!(s.id, i + 1);
        }
    }

    #[test]
    fn does_not_match_other_tasks() {
        let skill = PlannerSkill::new();
        let p = StructuredPrompt::parse("### Task: qa\n### Input: hi");
        assert!(!skill.matches(&p, ""));
    }

    #[test]
    fn plan_steps_serde_roundtrip() {
        let steps = run("Build sales reports from three dimensions");
        let json = serde_json::to_string(&steps).unwrap();
        let back: Vec<PlanStep> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, steps);
    }
}
