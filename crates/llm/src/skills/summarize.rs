//! The summarisation skill.
//!
//! Used by the aggregator agent (Fig. 3 area ⑤) to produce the narrative
//! that accompanies the generated charts, and by the knowledge-base QA app
//! to compress long retrieved passages. Lead-sentence extraction per
//! paragraph keeps output deterministic and grounded in the input.

use crate::skill::{PromptSkill, SkillContext, StructuredPrompt};

/// The summarisation skill (see module docs).
#[derive(Debug, Default)]
pub struct SummarizeSkill {
    /// Token budget for the summary.
    budget_tokens: usize,
}

impl SummarizeSkill {
    /// Create with the default budget (60 tokens).
    pub fn new() -> Self {
        SummarizeSkill { budget_tokens: 60 }
    }

    /// Create with a custom token budget.
    pub fn with_budget(budget_tokens: usize) -> Self {
        SummarizeSkill {
            budget_tokens: budget_tokens.max(5),
        }
    }
}

/// First sentence of `paragraph`, or the whole paragraph if unpunctuated.
fn lead_sentence(paragraph: &str) -> &str {
    for (i, c) in paragraph.char_indices() {
        if matches!(c, '.' | '!' | '?' | '。') {
            return paragraph[..i + c.len_utf8()].trim();
        }
    }
    paragraph.trim()
}

impl PromptSkill for SummarizeSkill {
    fn name(&self) -> &str {
        "summarize"
    }

    fn matches(&self, prompt: &StructuredPrompt, raw: &str) -> bool {
        matches!(prompt.task.as_deref(), Some("summarize") | Some("summary"))
            || (prompt.task.is_none()
                && raw.to_lowercase().starts_with("summarize"))
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        raw: &str,
        ctx: &SkillContext,
    ) -> Option<String> {
        // The text to summarise: a Context section, the Input, or everything
        // after a leading "summarize" directive.
        let body = prompt
            .section("context")
            .map(str::to_string)
            .or_else(|| {
                let input = prompt.input();
                if !input.is_empty() {
                    Some(input.to_string())
                } else {
                    None
                }
            })
            .or_else(|| {
                raw.to_lowercase()
                    .starts_with("summarize")
                    .then(|| raw[9..].trim().to_string())
            })?;
        if body.trim().is_empty() {
            return None;
        }
        let mut out = String::new();
        for para in body.split("\n\n").flat_map(|p| p.split('\n')) {
            let para = para.trim();
            if para.is_empty() {
                continue;
            }
            let lead = lead_sentence(para);
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(lead);
            if ctx.tokenizer.count(&out) >= self.budget_tokens {
                break;
            }
        }
        let (truncated, _) = ctx.tokenizer.truncate(&out, self.budget_tokens);
        Some(truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn ctx() -> SkillContext {
        SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 0,
            model: "t".into(),
        }
    }

    #[test]
    fn takes_lead_sentences_per_paragraph() {
        let raw = "### Task: summarize\n### Context:\nAlpha one. Alpha two.\nBeta one. Beta two.";
        let parsed = StructuredPrompt::parse(raw);
        let s = SummarizeSkill::new().complete(&parsed, raw, &ctx()).unwrap();
        assert!(s.contains("Alpha one."));
        assert!(s.contains("Beta one."));
        assert!(!s.contains("Alpha two"));
    }

    #[test]
    fn respects_token_budget() {
        let body = "word. ".repeat(100);
        let raw = format!("### Task: summarize\n### Context:\n{body}");
        let parsed = StructuredPrompt::parse(&raw);
        let skill = SummarizeSkill::with_budget(10);
        let s = skill.complete(&parsed, &raw, &ctx()).unwrap();
        assert!(ctx().tokenizer.count(&s) <= 10);
    }

    #[test]
    fn matches_bare_summarize_prefix() {
        let raw = "Summarize the following: Rust is great. It compiles fast.";
        let parsed = StructuredPrompt::parse(raw);
        let skill = SummarizeSkill::new();
        assert!(skill.matches(&parsed, raw));
        let s = skill.complete(&parsed, raw, &ctx()).unwrap();
        assert!(!s.is_empty());
    }

    #[test]
    fn declines_on_empty_body() {
        let raw = "### Task: summarize\n### Context:\n";
        let parsed = StructuredPrompt::parse(raw);
        assert!(SummarizeSkill::new().complete(&parsed, raw, &ctx()).is_none());
    }

    #[test]
    fn unpunctuated_paragraph_taken_whole() {
        assert_eq!(lead_sentence("no punctuation here"), "no punctuation here");
        assert_eq!(lead_sentence("first. second."), "first.");
    }
}
