//! The catch-all chat skill.
//!
//! Every simulated model ends its skill chain with this skill so that any
//! prompt — including free-form chit-chat the application layer forwards
//! verbatim — receives *some* deterministic completion. The reply is a
//! template anchored on the prompt's salient terms, so downstream tests can
//! assert the model "engaged with" the input without the simulation
//! pretending to general intelligence.

use std::collections::HashSet;

use crate::skill::{PromptSkill, SkillContext, StructuredPrompt};

/// Words too common to count as salient.
const COMMON: &[&str] = &[
    "the", "a", "an", "is", "are", "of", "in", "on", "to", "and", "or", "for", "with", "me",
    "my", "your", "please", "can", "you", "i", "we", "it", "show", "tell", "about", "what",
    "how", "that", "this",
];

/// The fallback chat skill (see module docs).
#[derive(Debug, Default)]
pub struct GenericChatSkill;

impl GenericChatSkill {
    /// Create the skill.
    pub fn new() -> Self {
        GenericChatSkill
    }

    /// The up-to-four most salient (longest, de-duplicated) words.
    fn salient_terms(input: &str) -> Vec<String> {
        let mut seen: HashSet<String> = HashSet::new();
        let mut words: Vec<String> = input
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .filter(|w| w.len() > 2)
            .map(|w| w.to_lowercase())
            .filter(|w| !COMMON.contains(&w.as_str()))
            .filter(|w| seen.insert(w.clone()))
            .collect();
        // Longest first, ties by dictionary order — deterministic.
        words.sort_by(|a, b| b.len().cmp(&a.len()).then(a.cmp(b)));
        words.truncate(4);
        words
    }
}

impl PromptSkill for GenericChatSkill {
    fn name(&self) -> &str {
        "generic-chat"
    }

    fn matches(&self, _prompt: &StructuredPrompt, _raw: &str) -> bool {
        true
    }

    fn complete(
        &self,
        prompt: &StructuredPrompt,
        raw: &str,
        ctx: &SkillContext,
    ) -> Option<String> {
        let input = {
            let i = prompt.input();
            if i.is_empty() {
                raw
            } else {
                i
            }
        };
        let terms = Self::salient_terms(input);
        if terms.is_empty() {
            return Some(format!(
                "[{}] I am ready to help with your data interaction tasks.",
                ctx.model
            ));
        }
        // Vary the opener with the seed at non-zero temperature, so repeated
        // sampling looks like sampling — but stay deterministic per seed.
        const OPENERS: &[&str] = &[
            "Here is what I can tell you about",
            "Let me address",
            "Regarding",
            "Focusing on",
        ];
        let idx = if ctx.temperature > 0.0 {
            (ctx.seed as usize) % OPENERS.len()
        } else {
            0
        };
        Some(format!(
            "[{}] {} {}: based on the available information, the system can assist \
             with analysis, queries and visualization for this topic.",
            ctx.model,
            OPENERS[idx],
            terms.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::Tokenizer;

    fn ctx() -> SkillContext {
        SkillContext {
            tokenizer: Tokenizer::new(),
            temperature: 0.0,
            seed: 0,
            model: "proxy-gpt".into(),
        }
    }

    #[test]
    fn always_matches() {
        let p = StructuredPrompt::parse("anything");
        assert!(GenericChatSkill::new().matches(&p, "anything"));
    }

    #[test]
    fn reply_mentions_salient_terms() {
        let raw = "tell me about database sharding strategies";
        let p = StructuredPrompt::parse(raw);
        let out = GenericChatSkill::new().complete(&p, raw, &ctx()).unwrap();
        assert!(out.contains("sharding"));
        assert!(out.contains("database"));
        assert!(out.contains("proxy-gpt"));
    }

    #[test]
    fn empty_input_gets_ready_message() {
        let p = StructuredPrompt::parse("");
        let out = GenericChatSkill::new().complete(&p, "", &ctx()).unwrap();
        assert!(out.contains("ready to help"));
    }

    #[test]
    fn deterministic_at_zero_temperature() {
        let raw = "analyze quarterly revenue";
        let p = StructuredPrompt::parse(raw);
        let a = GenericChatSkill::new().complete(&p, raw, &ctx()).unwrap();
        let b = GenericChatSkill::new().complete(&p, raw, &ctx()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn seed_varies_opener_at_temperature() {
        let raw = "analyze quarterly revenue";
        let p = StructuredPrompt::parse(raw);
        let mut c1 = ctx();
        c1.temperature = 1.0;
        c1.seed = 0;
        let mut c2 = ctx();
        c2.temperature = 1.0;
        c2.seed = 1;
        let a = GenericChatSkill::new().complete(&p, raw, &c1).unwrap();
        let b = GenericChatSkill::new().complete(&p, raw, &c2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn salient_terms_dedup_and_cap() {
        let terms =
            GenericChatSkill::salient_terms("alpha alpha beta gamma delta epsilon zeta");
        assert!(terms.len() <= 4);
        let set: HashSet<&String> = terms.iter().collect();
        assert_eq!(set.len(), terms.len());
    }
}
