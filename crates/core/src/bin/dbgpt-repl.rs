//! `dbgpt-repl` — the terminal front door to DB-GPT.
//!
//! An interactive session over the full system (area ① of the demo):
//!
//! ```text
//! cargo run -p dbgpt --bin dbgpt-repl -- --demo
//! ```
//!
//! Flags:
//! - `--demo`            seed the sales demonstration database
//! - `--model <name>`    chat model (default `sim-qwen`)
//! - `--fine-tuned`      use the DB-GPT-Hub fine-tuned Text-to-SQL model
//! - `--once <input>`    answer a single input and exit (scriptable)
//!
//! Inside the REPL: `:help`, `:schema`, `:models`, `:quit`.

use std::io::{BufRead, Write};

use dbgpt::DbGpt;

struct Args {
    demo: bool,
    model: String,
    fine_tuned: bool,
    once: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        demo: false,
        model: "sim-qwen".into(),
        fine_tuned: false,
        once: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => args.demo = true,
            "--fine-tuned" => args.fine_tuned = true,
            "--model" => {
                if let Some(m) = it.next() {
                    args.model = m;
                }
            }
            "--once" => args.once = it.next(),
            other => eprintln!("ignoring unknown flag: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut builder = DbGpt::builder().chat_model(&args.model);
    if args.demo {
        builder = builder.with_sales_demo();
    }
    if args.fine_tuned {
        builder = builder.fine_tuned_t2s();
    }
    let mut db = match builder.build() {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to start DB-GPT: {e}");
            std::process::exit(1);
        }
    };

    if let Some(input) = args.once {
        match db.chat(&input) {
            Ok(out) => println!("{}", out.text),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("DB-GPT (Rust reproduction) — model {} — type :help", args.model);
    let session = db.open_session();
    let stdin = std::io::stdin();
    loop {
        print!("dbgpt> ");
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match input {
            ":quit" | ":q" | ":exit" => break,
            ":help" => {
                println!(
                    ":schema    show the database schema\n\
                     :models    show the SMMF deployment\n\
                     :quit      exit\n\
                     anything else is routed by intent (SQL, questions, \n\
                     chart requests, analysis goals, forecasts — en/zh)"
                );
            }
            ":schema" => {
                let ddl = db.context().schema_ddl();
                if ddl.is_empty() {
                    println!("(no tables; try --demo or CREATE TABLE …)");
                } else {
                    println!("{ddl}");
                }
            }
            ":models" => {
                for (model, worker, health, served, failed) in
                    db.smmf().controller().snapshot()
                {
                    println!("{model} {worker} {health:?} served={served} failed={failed}");
                }
            }
            _ => match db.chat_in_session(&session, input) {
                Ok(out) => println!("[{:?}]\n{}", out.intent, out.text),
                Err(e) => println!("error: {e}"),
            },
        }
    }
    println!("bye");
}
