#![warn(missing_docs)]

//! # dbgpt — a Rust reproduction of DB-GPT (VLDB 2024 demo)
//!
//! DB-GPT is a "next generation data interaction system empowered by large
//! language models": natural-language interfaces over databases,
//! spreadsheets and knowledge bases, orchestrated by a multi-agent
//! framework, expressed through the AWEL workflow language, and served by
//! the privacy-preserving SMMF model-management framework.
//!
//! This crate is the **top of the four-layer architecture** (paper Fig. 1):
//!
//! ```text
//! ┌─────────────────────────────────────────────────────┐
//! │ Application layer   chat2db · chat2data · chat2excel│
//! │                     chat2viz · KBQA · gen. analysis │
//! ├─────────────────────────────────────────────────────┤
//! │ Server layer        sessions · routing · framing    │
//! ├─────────────────────────────────────────────────────┤
//! │ Module layer        SMMF · RAG · Multi-Agents       │
//! ├─────────────────────────────────────────────────────┤
//! │ Protocol layer      AWEL (operators · DAG · DSL)    │
//! └─────────────────────────────────────────────────────┘
//! ```
//!
//! [`DbGpt`] wires all of it behind one handle; the sub-crates remain
//! available for direct use and are re-exported as modules
//! ([`llm`], [`sqlengine`], [`rag`], [`smmf`], [`agents`], [`awel`],
//! [`text2sql`], [`vis`], [`server`], [`apps`], [`baselines`]).
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt::DbGpt;
//!
//! let mut db = DbGpt::builder().with_sales_demo().build().unwrap();
//! let out = db.chat("how many orders are there?").unwrap();
//! assert!(out.text.contains("The answer is 8."));
//! ```

pub mod architecture;
pub mod config;
pub mod facade;

pub use architecture::{architecture, LayerInfo};
pub use config::{DbGptBuilder, DbGptConfig};
pub use facade::{ChatOutcome, DbGpt};

pub use dbgpt_agents as agents;
pub use dbgpt_apps as apps;
pub use dbgpt_awel as awel;
pub use dbgpt_baselines as baselines;
pub use dbgpt_llm as llm;
pub use dbgpt_rag as rag;
pub use dbgpt_server as server;
pub use dbgpt_smmf as smmf;
pub use dbgpt_sqlengine as sqlengine;
pub use dbgpt_text2sql as text2sql;
pub use dbgpt_vis as vis;
