//! Configuration and the builder.

use std::path::PathBuf;

use dbgpt_smmf::{DeploymentMode, RoutingPolicy};

use crate::facade::DbGpt;

/// Static configuration of a [`DbGpt`] instance.
#[derive(Debug, Clone)]
pub struct DbGptConfig {
    /// Model served for chat/planning/summarisation.
    pub chat_model: String,
    /// Replicas of the chat model behind SMMF.
    pub replicas: usize,
    /// Privacy posture of the SMMF deployment.
    pub deployment_mode: DeploymentMode,
    /// SMMF routing policy.
    pub routing: RoutingPolicy,
    /// Use the fine-tuned Text-to-SQL model instead of the base one.
    pub fine_tuned_t2s: bool,
    /// Persist the agent communication archive at this path.
    pub archive_path: Option<PathBuf>,
    /// Seed the sales demo database at startup.
    pub sales_demo: bool,
}

impl Default for DbGptConfig {
    fn default() -> Self {
        DbGptConfig {
            chat_model: "sim-qwen".into(),
            replicas: 2,
            deployment_mode: DeploymentMode::Local,
            routing: RoutingPolicy::RoundRobin,
            fine_tuned_t2s: false,
            archive_path: None,
            sales_demo: false,
        }
    }
}

/// Builder for [`DbGpt`].
#[derive(Debug, Clone, Default)]
pub struct DbGptBuilder {
    config: DbGptConfig,
}

impl DbGptBuilder {
    /// Start from defaults.
    pub fn new() -> Self {
        DbGptBuilder::default()
    }

    /// Select the chat model (`sim-qwen`, `sim-glm`, `sim-vicuna`, or
    /// `proxy-gpt` — the last only deploys in [`DeploymentMode::Cloud`]).
    pub fn chat_model(mut self, name: impl Into<String>) -> Self {
        self.config.chat_model = name.into();
        self
    }

    /// Number of model replicas.
    pub fn replicas(mut self, n: usize) -> Self {
        self.config.replicas = n.max(1);
        self
    }

    /// Privacy posture.
    pub fn deployment_mode(mut self, mode: DeploymentMode) -> Self {
        self.config.deployment_mode = mode;
        self
    }

    /// Routing policy.
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.config.routing = policy;
        self
    }

    /// Use the DB-GPT-Hub fine-tuned Text-to-SQL model.
    pub fn fine_tuned_t2s(mut self) -> Self {
        self.config.fine_tuned_t2s = true;
        self
    }

    /// Persist the agent archive (JSONL) at `path`.
    pub fn archive_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.archive_path = Some(path.into());
        self
    }

    /// Preload the sales demo database (orders/users/products).
    pub fn with_sales_demo(mut self) -> Self {
        self.config.sales_demo = true;
        self
    }

    /// Build the system.
    pub fn build(self) -> Result<DbGpt, crate::facade::BuildError> {
        DbGpt::from_config(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_private_and_local() {
        let c = DbGptConfig::default();
        assert_eq!(c.deployment_mode, DeploymentMode::Local);
        assert!(c.deployment_mode.is_private());
        assert_eq!(c.chat_model, "sim-qwen");
        assert!(!c.fine_tuned_t2s);
    }

    #[test]
    fn builder_chain() {
        let b = DbGptBuilder::new()
            .chat_model("sim-glm")
            .replicas(3)
            .routing(RoutingPolicy::LeastLatency)
            .fine_tuned_t2s()
            .with_sales_demo();
        assert_eq!(b.config.chat_model, "sim-glm");
        assert_eq!(b.config.replicas, 3);
        assert!(b.config.fine_tuned_t2s);
        assert!(b.config.sales_demo);
    }

    #[test]
    fn replicas_floor_at_one() {
        assert_eq!(DbGptBuilder::new().replicas(0).config.replicas, 1);
    }
}
