//! The four-layer architecture map (Figure 1).
//!
//! Figure 1 of the paper is the system-design diagram. This module is its
//! machine-readable form: the layer inventory the `figure1` benchmark
//! binary prints, kept in one place so documentation, tests and the
//! benchmark agree about what the system contains.

use serde::Serialize;

/// One layer of the architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LayerInfo {
    /// Layer name as in Fig. 1.
    pub name: &'static str,
    /// Paper section describing it.
    pub section: &'static str,
    /// Components within the layer.
    pub components: Vec<&'static str>,
    /// The crate(s) implementing it in this repository.
    pub crates: Vec<&'static str>,
}

/// The four layers (top-down) plus the cross-cutting layers of §2.5.
pub fn architecture() -> Vec<LayerInfo> {
    vec![
        LayerInfo {
            name: "Application Layer",
            section: "§2.1",
            components: vec![
                "Text-to-SQL / SQL-to-Text",
                "Chat2DB",
                "Chat2Data",
                "Chat2Excel",
                "Chat2Visualization",
                "Generative Data Analysis",
                "Knowledge-Base QA",
            ],
            crates: vec!["dbgpt-apps"],
        },
        LayerInfo {
            name: "Server Layer",
            section: "§2.2",
            components: vec!["Request framing", "Session manager", "App router"],
            crates: vec!["dbgpt-server"],
        },
        LayerInfo {
            name: "Module Layer",
            section: "§2.3",
            components: vec![
                "SMMF (controller, workers, API server, privacy modes)",
                "RAG (vector + inverted + graph indexes, adaptive ICL)",
                "Multi-Agents (planner, specialists, history archive)",
            ],
            crates: vec!["dbgpt-smmf", "dbgpt-rag", "dbgpt-agents"],
        },
        LayerInfo {
            name: "Protocol Layer",
            section: "§2.4",
            components: vec!["AWEL operators", "DAG scheduler (batch/stream/async)", "AWEL DSL"],
            crates: vec!["dbgpt-awel"],
        },
        LayerInfo {
            name: "Visualization Layer",
            section: "§2.5",
            components: vec!["Chart specs", "SVG renderer", "ASCII renderer"],
            crates: vec!["dbgpt-vis"],
        },
        LayerInfo {
            name: "Text-to-SQL Fine-Tuning (DB-GPT-Hub)",
            section: "§2.5",
            components: vec!["Schema linking", "Grammar-guided generation", "Fine-tuner", "Benchmark"],
            crates: vec!["dbgpt-text2sql"],
        },
        LayerInfo {
            name: "Execution Environments",
            section: "§2.5",
            components: vec!["Local", "Simulated distributed (multi-worker)", "Simulated cloud"],
            crates: vec!["dbgpt-smmf", "dbgpt-llm"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_primary_layers_in_order() {
        let layers = architecture();
        let names: Vec<&str> = layers.iter().take(4).map(|l| l.name).collect();
        assert_eq!(
            names,
            vec![
                "Application Layer",
                "Server Layer",
                "Module Layer",
                "Protocol Layer"
            ]
        );
    }

    #[test]
    fn application_layer_lists_all_paper_functionalities() {
        let layers = architecture();
        let app = &layers[0];
        assert!(app.components.len() >= 6);
        assert!(app.components.iter().any(|c| c.contains("Chat2Excel")));
        assert!(app.components.iter().any(|c| c.contains("Generative")));
    }

    #[test]
    fn every_layer_names_its_crates() {
        for l in architecture() {
            assert!(!l.crates.is_empty(), "{} has no crates", l.name);
            assert!(l.section.starts_with('§'));
        }
    }
}
