//! The [`DbGpt`] façade: the whole system behind one handle.

use std::fmt;
use std::sync::Arc;

use serde_json::Value;

use dbgpt_agents::{HistoryArchive, LlmClient};
use dbgpt_apps::{
    detect_intent, AppContext, Chat2Data, Chat2Db, Chat2Excel, Chat2Viz, Forecaster,
    GenerativeAnalyzer, Intent, KnowledgeQa,
};
use dbgpt_server::Server;
use dbgpt_smmf::{ApiServer, SmmfError};
use dbgpt_text2sql::{dataset, FineTuner, Text2SqlModel};

use crate::config::{DbGptBuilder, DbGptConfig};

/// Errors constructing a [`DbGpt`] instance.
#[derive(Debug)]
pub enum BuildError {
    /// The SMMF deployment failed (unknown model, privacy violation…).
    Smmf(SmmfError),
    /// The agent archive could not be opened.
    Archive(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Smmf(e) => write!(f, "model deployment failed: {e}"),
            BuildError::Archive(m) => write!(f, "archive: {m}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The result of one routed chat turn.
#[derive(Debug, Clone)]
pub struct ChatOutcome {
    /// Which app handled the input.
    pub intent: Intent,
    /// Human-readable reply (answer / table / report).
    pub text: String,
    /// Machine-readable payload from the app.
    pub payload: Value,
}

/// The assembled DB-GPT system.
pub struct DbGpt {
    config: DbGptConfig,
    smmf: Arc<ApiServer>,
    ctx: AppContext,
    analyzer: GenerativeAnalyzer,
    server: Server,
}

impl DbGpt {
    /// Builder entry point.
    pub fn builder() -> DbGptBuilder {
        DbGptBuilder::new()
    }

    /// Assemble from a config.
    pub fn from_config(config: DbGptConfig) -> Result<DbGpt, BuildError> {
        // Module layer: SMMF deployment.
        let mut smmf = ApiServer::with_policy(config.deployment_mode, config.routing, 7);
        smmf.deploy_builtin(&config.chat_model, config.replicas)
            .map_err(BuildError::Smmf)?;
        let smmf = Arc::new(smmf);
        let llm = LlmClient::smmf(smmf.clone(), config.chat_model.clone());

        // Text-to-SQL model (optionally the fine-tuned hub output).
        let t2s = if config.fine_tuned_t2s {
            let bench = dataset::spider_like(99);
            Text2SqlModel::fine_tuned(
                "t2s-tuned",
                FineTuner::new().fit(&bench.databases, &bench.train),
            )
        } else {
            Text2SqlModel::base()
        };

        // Application context.
        let mut ctx = AppContext::local_default().with_llm(llm.clone()).with_t2s(t2s);
        if config.sales_demo {
            ctx = ctx.with_sales_demo_data();
        }

        // Multi-agent analyzer, with a durable archive if requested.
        let analyzer = match &config.archive_path {
            Some(path) => {
                let archive = HistoryArchive::at_path(path)
                    .map_err(|e| BuildError::Archive(e.to_string()))?;
                GenerativeAnalyzer::with_archive(ctx.clone(), Arc::new(archive))
            }
            None => GenerativeAnalyzer::new(ctx.clone()),
        };

        // Server layer with every app handler registered.
        let server = dbgpt_apps::handlers::build_server(&ctx);

        Ok(DbGpt {
            config,
            smmf,
            ctx,
            analyzer,
            server,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &DbGptConfig {
        &self.config
    }

    /// The SMMF deployment.
    pub fn smmf(&self) -> &Arc<ApiServer> {
        &self.smmf
    }

    /// The shared application context.
    pub fn context(&self) -> &AppContext {
        &self.ctx
    }

    /// The server layer (register extra handlers, open sessions).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Load SQL (DDL/DML) into the database.
    pub fn execute_sql(&self, sql: &str) -> Result<String, dbgpt_apps::AppError> {
        let result = self.ctx.engine.write().execute(sql)?;
        Ok(result.to_table())
    }

    /// Ingest a document into the knowledge base.
    pub fn ingest_document(&self, id: &str, text: &str) -> usize {
        self.ctx.kb.write().add_text(id, text)
    }

    /// Load a CSV sheet (chat2excel path).
    pub fn load_sheet(&self, table: &str, csv: &str) -> Result<usize, dbgpt_apps::AppError> {
        Chat2Excel::new(self.ctx.clone())
            .load_sheet(table, csv)
            .map(|info| info.rows)
    }

    /// One free-form turn: detect the intent (multilingual), route to the
    /// right app, return its reply.
    pub fn chat(&mut self, input: &str) -> Result<ChatOutcome, dbgpt_apps::AppError> {
        let (intent, canonical) = detect_intent(input);
        let (text, payload) = match intent {
            Intent::Chat2Db => {
                let r = Chat2Db::new(self.ctx.clone()).ask(&canonical)?;
                (
                    format!("{}\n{}", r.explanation, r.table),
                    serde_json::to_value(&r).expect("reply serializes"),
                )
            }
            Intent::Chat2Data => {
                match Chat2Data::new(self.ctx.clone()).ask(&canonical) {
                    Ok(r) => {
                        (r.answer.clone(), serde_json::to_value(&r).expect("reply serializes"))
                    }
                    // The question *looked* like a data question but the
                    // database cannot answer it (no matching table/column).
                    // Fall back to the knowledge base before giving up —
                    // "how many layers does DB-GPT have?" is knowledge, not
                    // data, despite the "how many".
                    Err(data_err) => {
                        let kb_has_content = self.ctx.kb.read().chunk_count() > 0;
                        if !kb_has_content {
                            return Err(data_err);
                        }
                        let r = KnowledgeQa::new(self.ctx.clone()).ask(&canonical)?;
                        return Ok(ChatOutcome {
                            intent: Intent::Kbqa,
                            text: r.answer.clone(),
                            payload: serde_json::to_value(&r).expect("reply serializes"),
                        });
                    }
                }
            }
            Intent::Chat2Viz => {
                let r = Chat2Viz::new(self.ctx.clone()).ask(&canonical)?;
                (
                    r.ascii.clone(),
                    serde_json::json!({"spec": r.spec, "sql": r.sql, "svg": r.svg}),
                )
            }
            Intent::Analysis => {
                let r = self.analyzer.analyze(&canonical)?;
                (
                    r.render_ascii(),
                    serde_json::to_value(&r).expect("report serializes"),
                )
            }
            Intent::Kbqa => {
                let r = KnowledgeQa::new(self.ctx.clone()).ask(&canonical)?;
                (r.answer.clone(), serde_json::to_value(&r).expect("reply serializes"))
            }
            Intent::Forecast => {
                let r = Forecaster::new(self.ctx.clone()).ask(&canonical)?;
                (
                    format!("{}\n{}", r.narrative, dbgpt_vis::ascii::render(&r.chart)),
                    serde_json::to_value(&r).expect("reply serializes"),
                )
            }
        };
        Ok(ChatOutcome {
            intent,
            text,
            payload,
        })
    }

    /// Open a server-layer session; turns sent with
    /// [`DbGpt::chat_in_session`] accumulate history there.
    pub fn open_session(&self) -> String {
        self.server.open_session("chat")
    }

    /// One turn within a session: routed like [`DbGpt::chat`], but through
    /// the server layer so the conversation history persists (demo
    /// area ⑦ — the user keeps talking in the same session).
    pub fn chat_in_session(
        &mut self,
        session: &str,
        input: &str,
    ) -> Result<ChatOutcome, dbgpt_apps::AppError> {
        let (intent, canonical) = detect_intent(input);
        let mut request = dbgpt_server::Request::new(0, intent.app_name(), canonical);
        request.session = session.to_string();
        let response = self.server.handle(&request);
        match response.status {
            dbgpt_server::Status::Ok => Ok(ChatOutcome {
                intent,
                text: response
                    .rendered
                    .unwrap_or_else(|| response.content.to_string()),
                payload: response.content,
            }),
            _ => Err(dbgpt_apps::AppError::BadInput(
                response.content.as_str().unwrap_or("request failed").to_string(),
            )),
        }
    }

    /// The multi-agent analyzer (inspect its archive).
    pub fn analyzer(&self) -> &GenerativeAnalyzer {
        &self.analyzer
    }
}

impl fmt::Debug for DbGpt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DbGpt")
            .field("chat_model", &self.config.chat_model)
            .field("mode", &self.config.deployment_mode)
            .field("apps", &self.server.apps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_apps::Intent;
    use dbgpt_smmf::DeploymentMode;

    fn system() -> DbGpt {
        DbGpt::builder().with_sales_demo().build().unwrap()
    }

    #[test]
    fn builds_with_defaults() {
        let db = system();
        assert_eq!(db.config().chat_model, "sim-qwen");
        assert_eq!(db.smmf().models(), vec!["sim-qwen"]);
        assert_eq!(
            db.server().apps(),
            vec!["analysis", "chat2data", "chat2db", "chat2viz", "forecast", "kbqa"]
        );
    }

    #[test]
    fn proxy_model_rejected_in_local_mode() {
        let e = DbGpt::builder().chat_model("proxy-gpt").build();
        assert!(matches!(e, Err(BuildError::Smmf(_))));
        // …but allowed in cloud mode.
        assert!(DbGpt::builder()
            .chat_model("proxy-gpt")
            .deployment_mode(DeploymentMode::Cloud)
            .build()
            .is_ok());
    }

    #[test]
    fn chat_routes_data_question() {
        let mut db = system();
        let out = db.chat("how many orders are there?").unwrap();
        assert_eq!(out.intent, Intent::Chat2Data);
        assert!(out.text.contains("The answer is 8."));
    }

    #[test]
    fn chat_routes_sql() {
        let mut db = system();
        let out = db.chat("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(out.intent, Intent::Chat2Db);
        assert!(out.text.contains('4'));
    }

    #[test]
    fn chat_routes_chart_request() {
        let mut db = system();
        let out = db
            .chat("draw a pie chart of the total amount per category of orders")
            .unwrap();
        assert_eq!(out.intent, Intent::Chat2Viz);
        assert!(out.payload["svg"].as_str().unwrap().starts_with("<svg"));
    }

    #[test]
    fn chat_routes_demo_analysis_goal() {
        let mut db = system();
        let out = db
            .chat("Build sales reports and analyze user orders from at least three distinct dimensions")
            .unwrap();
        assert_eq!(out.intent, Intent::Analysis);
        assert_eq!(out.payload["charts"].as_array().unwrap().len(), 3);
        assert!(out.text.contains("== Narrative =="));
    }

    #[test]
    fn chat_routes_knowledge_question() {
        let mut db = system();
        db.ingest_document("manual", "DB-GPT has four layers in its architecture.");
        let out = db.chat("tell me about the DB-GPT architecture").unwrap();
        assert_eq!(out.intent, Intent::Kbqa);
        assert!(out.text.contains("four layers") || !out.text.is_empty());
    }

    #[test]
    fn chinese_chat_works_end_to_end() {
        let mut db = system();
        let out = db.chat("构建销售报表，从三个维度分析用户订单").unwrap();
        assert_eq!(out.intent, Intent::Analysis);
        assert_eq!(out.payload["charts"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn sheet_loading_and_sql() {
        let db = system();
        let n = db.load_sheet("expenses", "team,cost\ncore,100\nml,250\n").unwrap();
        assert_eq!(n, 2);
        let table = db.execute_sql("SELECT SUM(cost) FROM expenses").unwrap();
        assert!(table.contains("350"));
    }

    #[test]
    fn chat_routes_forecast_request() {
        let mut db = system();
        let out = db.chat("forecast sales for the next 2 months").unwrap();
        assert_eq!(out.intent, Intent::Forecast);
        assert_eq!(out.payload["predictions"].as_array().unwrap().len(), 2);
        assert!(out.text.contains("trajectory"));
    }

    #[test]
    fn unanswerable_data_question_falls_back_to_kbqa() {
        let mut db = system();
        db.ingest_document("arch", "DB-GPT has four layers in its architecture.");
        let out = db.chat("how many layers does DB-GPT have?").unwrap();
        assert_eq!(out.intent, Intent::Kbqa);
        assert!(out.text.contains("four layers"), "{}", out.text);
        // Without knowledge content the data error surfaces.
        let mut empty = DbGpt::builder().with_sales_demo().build().unwrap();
        assert!(empty.chat("how many unicorns are there?").is_err());
    }

    #[test]
    fn session_chat_accumulates_history() {
        let mut db = system();
        let sid = db.open_session();
        let a = db.chat_in_session(&sid, "how many orders are there?").unwrap();
        assert!(a.text.contains("The answer is 8."));
        db.chat_in_session(&sid, "how many users are there?").unwrap();
        let session = db.server().sessions().get(&sid).unwrap();
        assert_eq!(session.user_turns(), 2);
        assert_eq!(session.history.len(), 4);
        // Errors surface as AppError.
        assert!(db.chat_in_session("ghost-session", "hi there folks").is_err());
    }

    #[test]
    fn fine_tuned_build_switches_t2s() {
        let db = DbGpt::builder().fine_tuned_t2s().with_sales_demo().build().unwrap();
        assert_eq!(db.context().t2s.name(), "t2s-tuned");
    }
}
