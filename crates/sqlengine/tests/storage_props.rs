//! Paged-storage property tests.
//!
//! 1. **Page codec round-trip**: random rows survive tuple encode/decode
//!    and slotted-page insert/read bit-for-bit (including float bit
//!    patterns and NULLs).
//! 2. **Differential storage equivalence**: the same randomized DDL/DML/
//!    query corpus as `columnar_props.rs` runs against three engines —
//!    row executor over in-memory storage (the reference), row executor
//!    over `StorageConfig::Paged`, and columnar executor over paged
//!    storage. Every statement must produce per-cell-identical results.
//!    The pool is sized far below the table footprint so the workload
//!    constantly evicts, and a `CREATE INDEX` on an INT column routes
//!    range predicates through the B+-tree on the paged arms.

mod common;

use common::{check, compare, dml, query, seed_stmts, Rng};
use dbgpt_sqlengine::storage::page::{decode_row, encode_row, Page, PageType};
use dbgpt_sqlengine::{Engine, ExecConfig, StorageConfig, Value};

fn random_value(rng: &mut Rng) -> Value {
    match rng.below(6) {
        0 => Value::Null,
        1 => Value::Int(rng.next() as i64),
        2 => Value::Float(f64::from_bits(rng.next())),
        3 => Value::Bool(rng.pct(50)),
        4 => Value::Text(String::new()),
        _ => {
            let len = rng.below(40) as usize;
            let s: String = (0..len)
                .map(|_| char::from_u32(0x61 + (rng.below(26) as u32)).unwrap())
                .collect();
            Value::Text(s)
        }
    }
}

/// NaN-safe bitwise equality: the codec must preserve exact bits, which
/// `PartialEq` on floats can't check (NaN != NaN).
fn bits_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

#[test]
fn page_codec_round_trips_random_rows() {
    let mut rng = Rng::new(0xC0DEC);
    for _ in 0..200 {
        let row: Vec<Value> = (0..1 + rng.below(8)).map(|_| random_value(&mut rng)).collect();
        let enc = encode_row(&row);
        let dec = decode_row(&enc).unwrap();
        assert_eq!(dec.len(), row.len());
        assert!(
            row.iter().zip(&dec).all(|(a, b)| bits_eq(a, b)),
            "tuple codec mangled {row:?} -> {dec:?}"
        );
    }
    // Pack rows into a page until full, then read them all back in order.
    let mut page = Page::new(4096, PageType::Heap);
    let mut stored: Vec<Vec<Value>> = Vec::new();
    loop {
        let row: Vec<Value> = (0..1 + rng.below(5)).map(|_| random_value(&mut rng)).collect();
        let enc = encode_row(&row);
        if !page.can_fit(enc.len()) {
            break;
        }
        page.insert(&enc).unwrap();
        stored.push(row);
    }
    assert!(stored.len() > 1, "page too small for the corpus");
    // Round-trip the raw bytes through the checksum (write path).
    page.fill_checksum();
    let reloaded = Page::from_bytes(page.bytes().to_vec().into_boxed_slice(), 0).unwrap();
    let back: Vec<Vec<Value>> = reloaded
        .tuples()
        .map(|t| decode_row(t).unwrap())
        .collect();
    assert_eq!(back.len(), stored.len());
    for (a, b) in stored.iter().zip(&back) {
        assert!(a.iter().zip(b).all(|(x, y)| bits_eq(x, y)));
    }
}

#[test]
fn paged_storage_agrees_with_in_memory() {
    // Tiny pool + small pages: the 1500-row table spans far more pages
    // than the pool holds, so scans and index probes evict constantly.
    let paged = StorageConfig::paged(16, 512);
    for seed in [7, 42, 1234] {
        let mut rng = Rng::new(seed);
        let mut stmts = seed_stmts(&mut rng, 1500, 300);
        // A B+-tree on an INT column: range predicates (`v > …`,
        // `v BETWEEN … AND …`) go through ordered index scans on the
        // paged arms while the reference full-scans.
        stmts.push("CREATE INDEX idx_v ON t1 (v)".to_string());

        let mut reference = Engine::new();
        let mut paged_row = Engine::with_storage(paged);
        let mut paged_col = Engine::with_exec_and_storage(ExecConfig::columnar(), paged);
        for s in &stmts {
            reference.execute(s).unwrap();
            paged_row.execute(s).unwrap();
            paged_col.execute(s).unwrap();
        }

        let mut next_id = 2_000_000;
        for step in 0..220 {
            let sql = if step % 9 == 8 {
                dml(&mut rng, &mut next_id)
            } else {
                query(&mut rng)
            };
            // Execute exactly once per engine, then compare pairwise
            // (DML must not hit the reference twice).
            let x = reference.execute(&sql);
            let y = paged_row.execute(&sql);
            let z = paged_col.execute(&sql);
            compare(&sql, &x, &y, &format!("seed {seed}, in-memory vs paged-row"));
            compare(
                &sql,
                &x,
                &z,
                &format!("seed {seed}, in-memory vs paged-columnar"),
            );
        }
        // Final full-table sweeps: storage must agree exactly at the end.
        for sql in [
            "SELECT id, grp, v, f, b FROM t1",
            "SELECT id, t1_id, w, tag FROM t2",
        ] {
            let x = reference.execute(sql);
            let y = paged_row.execute(sql);
            let z = paged_col.execute(sql);
            compare(sql, &x, &y, "final, paged-row");
            compare(sql, &x, &z, "final, paged-col");
        }

        // The whole workload ran with bounded memory: the pool never held
        // more frames than its capacity.
        for e in [&paged_row, &paged_col] {
            let pager = e.database().pager().expect("paged engine has a pager");
            let pool = pager.pool();
            assert!(
                pool.max_resident() <= pool.capacity(),
                "pool residency exceeded capacity: {} > {}",
                pool.max_resident(),
                pool.capacity()
            );
            assert!(pool.counters().evictions > 0, "workload never evicted");
        }
    }
}

#[test]
fn paged_btree_range_scan_matches_full_scan() {
    // Deterministic spot-check that indexed range queries return exactly
    // the rows a sequential scan finds, across inclusive/exclusive/mixed
    // bounds and cross-type literals.
    let mut with_idx = Engine::with_storage(StorageConfig::paged(8, 256));
    let mut without = Engine::with_storage(StorageConfig::paged(8, 256));
    for e in [&mut with_idx, &mut without] {
        e.execute("CREATE TABLE r (k INT, s TEXT)").unwrap();
        let vals: Vec<String> = (0..500)
            .map(|i| format!("({}, 's{}')", (i * 37) % 1000, i))
            .collect();
        e.execute(&format!("INSERT INTO r VALUES {}", vals.join(", ")))
            .unwrap();
    }
    with_idx.execute("CREATE INDEX idx_k ON r (k)").unwrap();
    for sql in [
        "SELECT k, s FROM r WHERE k > 250 ORDER BY k, s",
        "SELECT k, s FROM r WHERE k >= 250 AND k < 750 ORDER BY k, s",
        "SELECT k, s FROM r WHERE k BETWEEN 100 AND 200 ORDER BY k, s",
        "SELECT k, s FROM r WHERE k = 370 ORDER BY s",
        "SELECT k, s FROM r WHERE k > 249.5 AND k <= 750.5 ORDER BY k, s",
        "SELECT k, s FROM r WHERE k = 370.0",
        "SELECT k, s FROM r WHERE k = 370.5",
        "SELECT k, s FROM r WHERE 600 < k ORDER BY k, s",
    ] {
        check(sql, &mut with_idx, &mut without, "btree range vs full scan");
    }
}
