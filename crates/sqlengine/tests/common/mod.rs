//! Shared differential-test harness: a deterministic RNG, random SQL
//! generators over a fixed two-table schema, and an equivalence checker.
//!
//! Used by `columnar_props.rs` (row vs. columnar executor) and
//! `storage_props.rs` (in-memory vs. paged storage, both executors).

#![allow(dead_code)] // each test binary uses a subset

use dbgpt_sqlengine::Engine;

/// xorshift64* — deterministic, dependency-free.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    pub fn pct(&mut self, p: u64) -> bool {
        self.below(100) < p
    }
}

pub const GROUPS: &[&str] = &["g0", "g1", "g2", "g3", "g4"];
pub const TAGS: &[&str] = &["alpha", "beta", "gamma"];

pub fn int_lit(rng: &mut Rng) -> String {
    if rng.pct(10) {
        "NULL".into()
    } else {
        format!("{}", rng.below(200) as i64 - 100)
    }
}

pub fn float_lit(rng: &mut Rng) -> String {
    if rng.pct(10) {
        "NULL".into()
    } else {
        format!("{:?}", (rng.below(4000) as f64 - 2000.0) / 8.0)
    }
}

pub fn group_lit(rng: &mut Rng) -> String {
    if rng.pct(15) {
        "NULL".into()
    } else {
        format!("'{}'", GROUPS[rng.below(GROUPS.len() as u64) as usize])
    }
}

pub fn bool_lit(rng: &mut Rng) -> String {
    match rng.below(5) {
        0 => "NULL".into(),
        1 | 2 => "TRUE".into(),
        _ => "FALSE".into(),
    }
}

/// The seed statement stream: DDL for `t1`/`t2`, a secondary index on
/// `t1.grp`, and bulk inserts. Feed the same stream to every engine under
/// comparison.
pub fn seed_stmts(rng: &mut Rng, t1_rows: usize, t2_rows: usize) -> Vec<String> {
    let mut stmts = vec![
        "CREATE TABLE t1 (id INT, grp TEXT, v INT, f FLOAT, b BOOL)".to_string(),
        "CREATE TABLE t2 (id INT, t1_id INT, w FLOAT, tag TEXT)".to_string(),
        // Exercise index-narrowed scans against full scans.
        "CREATE INDEX idx_grp ON t1 (grp)".to_string(),
    ];
    let mut vals = Vec::with_capacity(t1_rows);
    for id in 0..t1_rows {
        vals.push(format!(
            "({id}, {}, {}, {}, {})",
            group_lit(rng),
            int_lit(rng),
            float_lit(rng),
            bool_lit(rng)
        ));
    }
    stmts.push(format!("INSERT INTO t1 VALUES {}", vals.join(", ")));
    let mut vals = Vec::with_capacity(t2_rows);
    for id in 0..t2_rows {
        let t1_id = if rng.pct(10) {
            "NULL".into()
        } else {
            format!("{}", rng.below((t1_rows as u64) + 40))
        };
        vals.push(format!(
            "({id}, {t1_id}, {}, '{}')",
            float_lit(rng),
            TAGS[rng.below(TAGS.len() as u64) as usize]
        ));
    }
    stmts.push(format!("INSERT INTO t2 VALUES {}", vals.join(", ")));
    stmts
}

/// One random predicate over t1's columns (optionally qualified).
pub fn predicate(rng: &mut Rng, q: &str) -> String {
    let atom = |rng: &mut Rng| -> String {
        match rng.below(9) {
            0 => format!("{q}v > {}", int_lit(rng)),
            1 => format!("{q}f <= {}", float_lit(rng)),
            2 => format!("{q}grp = {}", group_lit(rng)),
            3 => format!("{q}grp LIKE 'g%'"),
            4 => format!(
                "{q}v IN ({}, {}, {})",
                int_lit(rng),
                int_lit(rng),
                int_lit(rng)
            ),
            5 => format!("{q}v BETWEEN {} AND {}", int_lit(rng), int_lit(rng)),
            6 => format!("{q}b = TRUE"),
            7 => format!("{q}grp IS NULL"),
            _ => format!("{q}v + {q}id > {}", int_lit(rng)),
        }
    };
    match rng.below(4) {
        0 => atom(rng),
        1 => format!("{} AND {}", atom(rng), atom(rng)),
        2 => format!("{} OR {}", atom(rng), atom(rng)),
        _ => format!("NOT ({})", atom(rng)),
    }
}

pub fn query(rng: &mut Rng) -> String {
    match rng.below(6) {
        // Plain filter scans (sometimes unordered: scan order must match).
        0 => {
            let mut q = format!("SELECT id, grp, v, f, b FROM t1 WHERE {}", predicate(rng, ""));
            if rng.pct(60) {
                q.push_str(" ORDER BY id");
            }
            if rng.pct(30) {
                q.push_str(&format!(" LIMIT {}", rng.below(40)));
            }
            q
        }
        // Expression projections.
        1 => format!(
            "SELECT id, v * 2 + 1, UPPER(grp), COALESCE(v, -1) FROM t1 WHERE {}",
            predicate(rng, "")
        ),
        // Grouped aggregation, sometimes with HAVING.
        2 => {
            let mut q = format!(
                "SELECT grp, COUNT(*), COUNT(v), SUM(v), AVG(f), MIN(v), MAX(f), \
                 COUNT(DISTINCT b) FROM t1 WHERE {} GROUP BY grp",
                predicate(rng, "")
            );
            if rng.pct(40) {
                q.push_str(&format!(" HAVING COUNT(*) > {}", rng.below(6)));
            }
            q.push_str(" ORDER BY grp");
            q
        }
        // Global aggregates (empty-input shape included).
        3 => format!(
            "SELECT COUNT(*), SUM(v), MIN(f), MAX(v) FROM t1 WHERE {}",
            predicate(rng, "")
        ),
        // Joins: hash (equi) and nested-loop (inequality), inner and left.
        4 => {
            let kind = if rng.pct(50) { "JOIN" } else { "LEFT JOIN" };
            let mut on = "t1.id = t2.t1_id".to_string();
            if rng.pct(40) {
                on.push_str(&format!(" AND t2.w > {}", float_lit(rng)));
            }
            if rng.pct(15) {
                on = format!("t1.id < t2.t1_id AND t2.id < {}", rng.below(30));
            }
            format!(
                "SELECT t1.id, t1.grp, t2.tag, t2.w FROM t1 {kind} t2 ON {on} \
                 WHERE {} ORDER BY t1.id, t2.id",
                predicate(rng, "t1.")
            )
        }
        // DISTINCT / UNION shapes.
        _ => {
            if rng.pct(50) {
                format!(
                    "SELECT DISTINCT grp, b FROM t1 WHERE {} ORDER BY grp, b",
                    predicate(rng, "")
                )
            } else {
                let all = if rng.pct(50) { " ALL" } else { "" };
                format!(
                    "SELECT grp FROM t1 WHERE {} UNION{all} SELECT tag FROM t2 \
                     WHERE t2.w > {} ORDER BY 1",
                    predicate(rng, ""),
                    float_lit(rng)
                )
            }
        }
    }
}

pub fn dml(rng: &mut Rng, next_id: &mut i64) -> String {
    match rng.below(3) {
        0 => format!(
            "UPDATE t1 SET v = v + {}, f = f * 0.5 WHERE {}",
            rng.below(10),
            predicate(rng, "")
        ),
        1 => format!("DELETE FROM t1 WHERE v = {}", int_lit(rng)),
        _ => {
            let id = *next_id;
            *next_id += 1;
            let mut rows = Vec::new();
            for k in 0..(1 + rng.below(3)) {
                rows.push(format!(
                    "({}, {}, {}, {}, {})",
                    id * 1000 + k as i64,
                    group_lit(rng),
                    int_lit(rng),
                    float_lit(rng),
                    bool_lit(rng)
                ));
            }
            format!("INSERT INTO t1 VALUES {}", rows.join(", "))
        }
    }
}

/// Run one statement through two engines and demand identical outcomes.
pub fn check(sql: &str, a: &mut Engine, b: &mut Engine, ctx: &str) {
    let x = a.execute(sql);
    let y = b.execute(sql);
    compare(sql, &x, &y, ctx);
}

/// Demand identical outcomes from two already-executed results: same
/// column names, per-cell-identical rows in the same order, same
/// `rows_affected` — or an error on both paths (messages may differ).
/// Split from [`check`] so a statement can be executed exactly once per
/// engine when more than two engines are under comparison.
pub fn compare(
    sql: &str,
    x: &Result<dbgpt_sqlengine::QueryResult, dbgpt_sqlengine::SqlError>,
    y: &Result<dbgpt_sqlengine::QueryResult, dbgpt_sqlengine::SqlError>,
    ctx: &str,
) {
    match (x, y) {
        (Ok(x), Ok(y)) => {
            let xa: Vec<&str> = x.column_names();
            let ya: Vec<&str> = y.column_names();
            assert_eq!(xa, ya, "schema diverged ({ctx}) on: {sql}");
            assert_eq!(
                x.rows.len(),
                y.rows.len(),
                "row count diverged ({ctx}) on: {sql}"
            );
            for (ri, (rx, ry)) in x.rows.iter().zip(&y.rows).enumerate() {
                for ci in 0..rx.len() {
                    assert_eq!(
                        rx[ci], ry[ci],
                        "cell [{ri}][{ci}] diverged ({ctx}) on: {sql}"
                    );
                }
            }
            assert_eq!(
                x.rows_affected, y.rows_affected,
                "rows_affected diverged ({ctx}) on: {sql}"
            );
        }
        (Err(_), Err(_)) => {}
        (x, y) => panic!("ok/err diverged ({ctx}) on: {sql}\n a: {x:?}\n b: {y:?}"),
    }
}

