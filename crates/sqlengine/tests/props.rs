//! Property-based tests for the SQL engine.
//!
//! The headline property: for any generated query, the optimized plan and
//! the unoptimized plan return identical results — the optimizer can make
//! queries faster, never different. Queries are generated compositionally
//! (filters × aggregation × ordering × joins) over seeded random data.

use proptest::prelude::*;

use dbgpt_sqlengine::plan::Optimizer;
use dbgpt_sqlengine::{Engine, SqlError};

/// Deterministic test data: two tables with a joinable key.
fn seed(engine: &mut Engine, rows: &[(i64, i64, i64, &str)]) {
    engine
        .execute("CREATE TABLE o (id INT, uid INT, amt INT, cat TEXT)")
        .unwrap();
    engine
        .execute("CREATE TABLE u (id INT, name TEXT)")
        .unwrap();
    for (id, uid, amt, cat) in rows {
        engine
            .execute(&format!("INSERT INTO o VALUES ({id}, {uid}, {amt}, '{cat}')"))
            .unwrap();
    }
    for i in 0..4 {
        engine
            .execute(&format!("INSERT INTO u VALUES ({i}, 'user{i}')"))
            .unwrap();
    }
}

/// Result fingerprint: rows rendered + sorted (order-insensitive compare
/// unless the query carries ORDER BY, in which case order matters and we
/// keep it).
fn fingerprint(r: &dbgpt_sqlengine::QueryResult, ordered: bool) -> Vec<String> {
    let mut rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row.values()
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    if !ordered {
        rows.sort();
    }
    rows
}

/// Run one SQL string under both optimizer configurations.
fn both(
    rows: &[(i64, i64, i64, &str)],
    sql: &str,
    ordered: bool,
) -> Result<(Vec<String>, Vec<String>), SqlError> {
    let mut opt = Engine::with_optimizer(Optimizer::new());
    seed(&mut opt, rows);
    let mut raw = Engine::with_optimizer(Optimizer::disabled());
    seed(&mut raw, rows);
    Ok((
        fingerprint(&opt.execute(sql)?, ordered),
        fingerprint(&raw.execute(sql)?, ordered),
    ))
}

/// Strategy: a small random data set.
fn rows_strategy() -> impl Strategy<Value = Vec<(i64, i64, i64, &'static str)>> {
    let cats = prop_oneof![Just("red"), Just("blue"), Just("green")];
    proptest::collection::vec(
        (0i64..50, 0i64..6, -20i64..100, cats),
        0..25,
    )
}

/// Strategy: a comparison filter over the `o` table, with columns
/// qualified by `prefix` (empty for single-table queries, `"o."` in joins
/// where bare `id` would be ambiguous).
fn filter_strategy(prefix: &'static str) -> impl Strategy<Value = String> {
    let col = prop_oneof![Just("amt"), Just("uid"), Just("id")];
    let op = prop_oneof![Just(">"), Just("<"), Just(">="), Just("<="), Just("="), Just("<>")];
    let text_filter = prop_oneof![
        Just(format!("{prefix}cat = 'red'")),
        Just(format!("{prefix}cat <> 'blue'")),
        Just(format!("{prefix}cat LIKE 'g%'")),
        Just(format!("{prefix}cat IN ('red', 'green')")),
    ];
    prop_oneof![
        (col, op, -10i64..60).prop_map(move |(c, o, v)| format!("{prefix}{c} {o} {v}")),
        text_filter,
        (0i64..40, 10i64..80)
            .prop_map(move |(a, b)| format!("{prefix}amt BETWEEN {} AND {}", a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized == unoptimized for filtered scans.
    #[test]
    fn optimizer_preserves_filtered_scans(
        rows in rows_strategy(),
        f1 in filter_strategy(""),
        f2 in filter_strategy(""),
    ) {
        let sql = format!("SELECT id, amt FROM o WHERE {f1} AND {f2}");
        let (a, b) = both(&rows, &sql, false).unwrap();
        prop_assert_eq!(a, b, "{}", sql);
    }

    /// Optimized == unoptimized for grouped aggregates with HAVING.
    #[test]
    fn optimizer_preserves_aggregates(
        rows in rows_strategy(),
        f in filter_strategy(""),
        threshold in -50i64..200,
    ) {
        let sql = format!(
            "SELECT cat, COUNT(*), SUM(amt), MIN(amt), MAX(amt), AVG(amt) \
             FROM o WHERE {f} GROUP BY cat HAVING SUM(amt) > {threshold}"
        );
        let (a, b) = both(&rows, &sql, false).unwrap();
        prop_assert_eq!(a, b, "{}", sql);
    }

    /// Optimized == unoptimized for joins with mixed-side predicates.
    #[test]
    fn optimizer_preserves_joins(
        rows in rows_strategy(),
        f in filter_strategy("o."),
        left in proptest::bool::ANY,
    ) {
        let join = if left { "LEFT JOIN" } else { "JOIN" };
        let sql = format!(
            "SELECT o.id, u.name FROM o {join} u ON o.uid = u.id \
             WHERE {f} ORDER BY o.id"
        );
        let (a, b) = both(&rows, &sql, true).unwrap();
        prop_assert_eq!(a, b, "{}", sql);
    }

    /// Optimized == unoptimized for DISTINCT + ORDER + LIMIT pipelines.
    #[test]
    fn optimizer_preserves_distinct_order_limit(
        rows in rows_strategy(),
        limit in 0usize..10,
    ) {
        let sql = format!(
            "SELECT DISTINCT cat FROM o ORDER BY cat LIMIT {limit}"
        );
        let (a, b) = both(&rows, &sql, true).unwrap();
        prop_assert_eq!(a, b, "{}", sql);
    }

    /// A hash index never changes results, only speed.
    #[test]
    fn index_preserves_results(
        rows in rows_strategy(),
        f in filter_strategy(""),
    ) {
        let sql = format!("SELECT id FROM o WHERE cat = 'red' AND {f}");
        let mut plain = Engine::new();
        seed(&mut plain, &rows);
        let mut indexed = Engine::new();
        seed(&mut indexed, &rows);
        indexed.execute("CREATE INDEX i_cat ON o (cat)").unwrap();
        let a = fingerprint(&plain.execute(&sql).unwrap(), false);
        let b = fingerprint(&indexed.execute(&sql).unwrap(), false);
        prop_assert_eq!(a, b, "{}", sql);
    }

    /// DML sequences keep COUNT(*) consistent with a Rust model.
    #[test]
    fn dml_count_model(
        rows in rows_strategy(),
        cut in -20i64..100,
    ) {
        let mut e = Engine::new();
        seed(&mut e, &rows);
        let expected_delete = rows.iter().filter(|(_, _, amt, _)| *amt > cut).count();
        let r = e.execute(&format!("DELETE FROM o WHERE amt > {cut}")).unwrap();
        prop_assert_eq!(r.rows_affected, expected_delete);
        let r = e.execute("SELECT COUNT(*) FROM o").unwrap();
        prop_assert_eq!(
            r.rows[0][0].as_i64().unwrap() as usize,
            rows.len() - expected_delete
        );
    }
}
