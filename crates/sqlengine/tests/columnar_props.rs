//! Differential property test: the row and columnar executors must agree.
//!
//! Two engines are fed identical DDL/DML streams — one on the default row
//! executor, one on `ExecConfig::columnar()` — and hundreds of generated
//! queries (filters, joins, group-by, order-by, DISTINCT, UNION, NULLs)
//! are executed through both. Every query must produce an identical
//! `QueryResult` (same schema, same rows, same order), or an error on
//! both paths. DML is interleaved so the columnar cache is repeatedly
//! invalidated and rebuilt mid-stream.
//!
//! Randomness comes from a tiny deterministic xorshift generator (in
//! `tests/common/`), so a failure reproduces exactly from the seed in the
//! panic message.

mod common;

use common::{check, dml, query, seed_stmts, Rng};
use dbgpt_sqlengine::{Engine, ExecConfig};

#[test]
fn row_and_columnar_executors_agree() {
    for seed in [7, 42, 1234] {
        let mut rng = Rng::new(seed);
        // > CHUNK_ROWS rows in t1 so scans span multiple chunks.
        let stmts = seed_stmts(&mut rng, 1500, 300);
        let mut row = Engine::new();
        let mut col = Engine::with_exec(ExecConfig::columnar());
        for s in &stmts {
            row.execute(s).unwrap();
            col.execute(s).unwrap();
        }
        let ctx = format!("seed {seed}");
        let mut next_id = 1_000_000;
        for step in 0..220 {
            let sql = if step % 9 == 8 {
                dml(&mut rng, &mut next_id)
            } else {
                query(&mut rng)
            };
            check(&sql, &mut row, &mut col, &ctx);
        }
        // Final full-table sweep: storage must agree exactly at the end.
        check("SELECT id, grp, v, f, b FROM t1", &mut row, &mut col, &ctx);
        check("SELECT id, t1_id, w, tag FROM t2", &mut row, &mut col, &ctx);
    }
}

#[test]
fn default_exec_config_is_row() {
    assert_eq!(ExecConfig::default(), ExecConfig::row());
    assert_eq!(Engine::new().exec_config(), ExecConfig::row());
}
