//! Physical execution of logical plans.
//!
//! Two interchangeable executors live here:
//!
//! - [`executor`] — the original row-at-a-time interpreter (one
//!   [`crate::row::Row`] at a time through every operator).
//! - [`vectorized`] — the columnar executor: scans read
//!   [`crate::col::Chunk`]s from the catalog's column cache, filters
//!   produce selection vectors, and aggregation/join/sort run over
//!   [`crate::col::ColumnVec`]s.
//!
//! [`ExecConfig`] picks between them; the default is the row executor,
//! and the columnar path is required (and property-tested) to produce
//! identical results.

pub mod aggregate;
pub mod executor;
pub mod vectorized;

pub use aggregate::Accumulator;
pub use executor::execute_plan;
pub use vectorized::{execute_plan_columnar, ExecStats};

/// Which physical executor runs SELECT plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Row-at-a-time interpreter (the original executor).
    #[default]
    Row,
    /// Columnar chunk-at-a-time executor with vectorized kernels.
    Columnar,
}

/// Executor selection for an [`crate::engine::Engine`].
///
/// The default reproduces the row executor exactly, so existing callers
/// see no behaviour change; [`ExecConfig::columnar`] opts into the
/// vectorized path, which must return identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Selected executor.
    pub mode: ExecMode,
}

impl ExecConfig {
    /// Row-at-a-time execution (the default).
    pub fn row() -> ExecConfig {
        ExecConfig { mode: ExecMode::Row }
    }

    /// Columnar vectorized execution.
    pub fn columnar() -> ExecConfig {
        ExecConfig {
            mode: ExecMode::Columnar,
        }
    }
}
