//! Physical execution of logical plans.

pub mod aggregate;
pub mod executor;

pub use aggregate::Accumulator;
pub use executor::execute_plan;
