//! The columnar (vectorized) plan executor.
//!
//! The logical plans are the same ones [`super::executor`] interprets;
//! only the physical representation changes. Tables are scanned as
//! [`Chunk`]s from the catalog's [`ColumnTable`] mirror, predicates run
//! via [`Expr::eval_batch`] producing **selection vectors** (row ids that
//! survive a filter), and aggregation folds typed columns through
//! [`Accumulator::update_col`]. Joins and sorts re-batch through column
//! gathers.
//!
//! ## Equivalence contract
//!
//! For every plan, this executor must return the same `RowBatch` — same
//! rows, same order — as the row executor (property-tested in
//! `tests/columnar_props.rs`). Two deliberate asymmetries exist on
//! *error* paths only: when several rows would each raise an error, the
//! two executors may surface a different one of them (batch evaluation
//! is eager per operand where the row loop interleaves), and the row
//! executor's index-narrowed scans may skip a row whose filter would
//! error. Error *presence* on scans without index narrowing is
//! identical.

use std::collections::HashMap;

use crate::catalog::Database;
use crate::col::{Chunk, ColumnTable, ColumnVec, CHUNK_ROWS};
use crate::error::SqlError;
use crate::expr::Expr;
use crate::parser::JoinKind;
use crate::plan::logical::LogicalPlan;
use crate::row::{Row, RowBatch};
use crate::schema::SchemaRef;
use crate::value::{GroupKey, Value};

use super::aggregate::Accumulator;
use super::executor::extract_equi_keys;

/// Counters describing one plan execution, exported to the `sql.exec`
/// span by [`crate::engine::Engine::execute_traced`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Chunks read by table scans.
    pub chunks: u64,
    /// Rows read by table scans (pre-filter).
    pub rows_scanned: u64,
}

/// A schema plus column-major row chunks: the columnar counterpart of
/// [`RowBatch`] flowing between operators.
struct ColBatch {
    schema: SchemaRef,
    chunks: Vec<Chunk>,
}

impl ColBatch {
    fn rows(&self) -> usize {
        self.chunks.iter().map(|c| c.len).sum()
    }

    fn from_rows(schema: SchemaRef, rows: &[Row]) -> ColBatch {
        let width = schema.len();
        let chunks = if width == 0 {
            if rows.is_empty() {
                Vec::new()
            } else {
                vec![Chunk::zero_width(rows.len())]
            }
        } else {
            ColumnTable::from_rows(rows, width).into_chunks()
        };
        ColBatch { schema, chunks }
    }

    fn into_row_batch(self) -> RowBatch {
        let mut rows = Vec::with_capacity(self.rows());
        for chunk in &self.chunks {
            for i in 0..chunk.len {
                rows.push(chunk.row(i));
            }
        }
        RowBatch::new(self.schema, rows)
    }

    /// All chunks concatenated into one (for cross-chunk operators like
    /// sort). Zero-copy when there is a single chunk already.
    fn concat(&self) -> Chunk {
        if self.chunks.len() == 1 {
            return self.chunks[0].clone();
        }
        let total = self.rows();
        let width = self.schema.len();
        let mut columns = Vec::with_capacity(width);
        for c in 0..width {
            let parts: Vec<&ColumnVec> =
                self.chunks.iter().map(|ch| &ch.columns[c]).collect();
            columns.push(ColumnVec::concat(&parts));
        }
        Chunk::new(columns, total)
    }
}

/// Execute a logical plan with the columnar executor.
///
/// Scans read the catalog's columnar mirror when it is fresh (see
/// [`crate::catalog::Table::refresh_columnar`]) and fall back to a
/// one-shot conversion of row storage otherwise, so results never depend
/// on cache state.
pub fn execute_plan_columnar(
    plan: &LogicalPlan,
    db: &Database,
) -> Result<RowBatch, SqlError> {
    let mut stats = ExecStats::default();
    execute_plan_columnar_with_stats(plan, db, &mut stats)
}

/// [`execute_plan_columnar`] with scan counters reported into `stats`.
pub fn execute_plan_columnar_with_stats(
    plan: &LogicalPlan,
    db: &Database,
    stats: &mut ExecStats,
) -> Result<RowBatch, SqlError> {
    Ok(exec(plan, db, stats)?.into_row_batch())
}

fn exec(
    plan: &LogicalPlan,
    db: &Database,
    stats: &mut ExecStats,
) -> Result<ColBatch, SqlError> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            filter,
            ..
        } => {
            let t = db.table(table)?;
            // One scan chunk: project, filter, keep survivors. Shared by
            // the mirror path and the paged streaming path below.
            let mut chunks = Vec::new();
            let scan_chunk = |chunk: &Chunk,
                                  stats: &mut ExecStats,
                                  chunks: &mut Vec<Chunk>|
             -> Result<(), SqlError> {
                stats.chunks += 1;
                stats.rows_scanned += chunk.len as u64;
                // Match the row executor: project first, filter on the
                // projected row shape.
                let projected = match projection {
                    Some(idx) => chunk.project(idx),
                    None => chunk.clone(),
                };
                let kept = match filter {
                    Some(f) => {
                        let mask = f.eval_batch(&projected, schema, None)?;
                        let sel = truthy_selection(&mask);
                        match sel {
                            Some(sel) => projected.gather(&sel),
                            None => projected,
                        }
                    }
                    None => projected,
                };
                if !kept.is_empty() {
                    chunks.push(kept);
                }
                Ok(())
            };
            if t.is_paged() {
                // Paged tables have no columnar mirror; stream heap pages
                // through the buffer pool, re-batching rows into
                // CHUNK_ROWS-row chunks so chunk boundaries match the
                // in-memory mirror's.
                let pager = t.pager().expect("paged table");
                let heap = t.heap().expect("paged table");
                let width = t.schema.len();
                let mut buf: Vec<Row> = Vec::with_capacity(CHUNK_ROWS);
                for i in 0..heap.page_count() {
                    for vals in heap.read_page(&mut pager.pool(), i)? {
                        buf.push(Row::new(vals));
                        if buf.len() == CHUNK_ROWS {
                            let ct = ColumnTable::from_rows(&buf, width);
                            for chunk in ct.chunks() {
                                scan_chunk(chunk, stats, &mut chunks)?;
                            }
                            buf.clear();
                        }
                    }
                }
                if !buf.is_empty() {
                    let ct = ColumnTable::from_rows(&buf, width);
                    for chunk in ct.chunks() {
                        scan_chunk(chunk, stats, &mut chunks)?;
                    }
                }
                return Ok(ColBatch {
                    schema: schema.clone(),
                    chunks,
                });
            }
            let fallback;
            let ct: &ColumnTable = match t.columnar() {
                Some(ct) => ct,
                None => {
                    fallback = ColumnTable::from_rows(&t.rows, t.schema.len());
                    &fallback
                }
            };
            for chunk in ct.chunks() {
                scan_chunk(chunk, stats, &mut chunks)?;
            }
            Ok(ColBatch {
                schema: schema.clone(),
                chunks,
            })
        }

        LogicalPlan::Values { schema, rows } => Ok(ColBatch {
            schema: schema.clone(),
            chunks: if *rows == 0 {
                Vec::new()
            } else {
                vec![Chunk::zero_width(*rows)]
            },
        }),

        LogicalPlan::Filter { input, predicate } => {
            let batch = exec(input, db, stats)?;
            let mut chunks = Vec::with_capacity(batch.chunks.len());
            for chunk in &batch.chunks {
                let mask = predicate.eval_batch(chunk, &batch.schema, None)?;
                let kept = match truthy_selection(&mask) {
                    Some(sel) => chunk.gather(&sel),
                    None => chunk.clone(),
                };
                if !kept.is_empty() {
                    chunks.push(kept);
                }
            }
            Ok(ColBatch {
                schema: batch.schema,
                chunks,
            })
        }

        LogicalPlan::Project { input, exprs } => {
            let batch = exec(input, db, stats)?;
            let out_schema = plan.schema();
            let mut chunks = Vec::with_capacity(batch.chunks.len());
            for chunk in &batch.chunks {
                let mut columns = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    columns.push(e.eval_batch(chunk, &batch.schema, None)?);
                }
                chunks.push(Chunk::new(columns, chunk.len));
            }
            Ok(ColBatch {
                schema: out_schema,
                chunks,
            })
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => exec_join(left, right, *kind, on, db, stats),

        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let batch = exec(input, db, stats)?;
            let out_schema = plan.schema();
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            let mut groups: HashMap<Vec<GroupKey>, (Row, Vec<Accumulator>)> =
                HashMap::new();
            for chunk in &batch.chunks {
                let mut key_cols = Vec::with_capacity(group_exprs.len());
                for (e, _) in group_exprs {
                    key_cols.push(e.eval_batch(chunk, &batch.schema, None)?);
                }
                // `None` marks `COUNT(*)` whose argument is never evaluated.
                let mut agg_cols: Vec<Option<ColumnVec>> =
                    Vec::with_capacity(aggregates.len());
                for (_, arg, _) in aggregates {
                    agg_cols.push(match arg {
                        Expr::Wildcard => None,
                        e => Some(e.eval_batch(chunk, &batch.schema, None)?),
                    });
                }
                for i in 0..chunk.len {
                    let key: Vec<GroupKey> =
                        key_cols.iter().map(|c| c.group_key_at(i)).collect();
                    let entry = groups.entry(key.clone()).or_insert_with(|| {
                        order.push(key.clone());
                        (
                            Row::new(key_cols.iter().map(|c| c.value_at(i)).collect()),
                            aggregates
                                .iter()
                                .map(|(f, _, _)| Accumulator::new(*f))
                                .collect(),
                        )
                    });
                    for (col, acc) in agg_cols.iter().zip(entry.1.iter_mut()) {
                        match col {
                            Some(c) => acc.update_col(c, i)?,
                            None => acc.update(&Value::Int(1))?,
                        }
                    }
                }
            }
            if groups.is_empty() && group_exprs.is_empty() {
                let accs: Vec<Accumulator> = aggregates
                    .iter()
                    .map(|(f, _, _)| Accumulator::new(*f))
                    .collect();
                let vals: Vec<Value> = accs.iter().map(Accumulator::finish).collect();
                return Ok(ColBatch::from_rows(out_schema, &[Row::new(vals)]));
            }
            let mut rows = Vec::with_capacity(order.len());
            for key in order {
                let (key_row, accs) = groups.remove(&key).expect("group vanished");
                let mut vals = key_row.into_values();
                vals.extend(accs.iter().map(Accumulator::finish));
                rows.push(Row::new(vals));
            }
            Ok(ColBatch::from_rows(out_schema, &rows))
        }

        LogicalPlan::Sort { input, keys } => {
            let batch = exec(input, db, stats)?;
            let chunk = batch.concat();
            let mut idx: Vec<u32> = (0..chunk.len as u32).collect();
            idx.sort_by(|&a, &b| {
                for (col, desc) in keys {
                    let ord = chunk.columns[*col]
                        .value_at(a as usize)
                        .total_cmp(&chunk.columns[*col].value_at(b as usize));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let sorted = chunk.gather(&idx);
            Ok(ColBatch {
                schema: batch.schema,
                chunks: if sorted.is_empty() { Vec::new() } else { vec![sorted] },
            })
        }

        LogicalPlan::Strip { input, keep } => {
            let batch = exec(input, db, stats)?;
            let out_schema = plan.schema();
            let cols: Vec<usize> = (0..*keep).collect();
            let chunks = batch.chunks.iter().map(|c| c.project(&cols)).collect();
            Ok(ColBatch {
                schema: out_schema,
                chunks,
            })
        }

        LogicalPlan::Distinct { input } => {
            let batch = exec(input, db, stats)?;
            let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
            let chunks = dedupe_chunks(&batch.chunks, &mut seen);
            Ok(ColBatch {
                schema: batch.schema,
                chunks,
            })
        }

        LogicalPlan::Limit { input, n } => {
            let batch = exec(input, db, stats)?;
            let mut chunks = Vec::new();
            let mut remaining = *n;
            for chunk in &batch.chunks {
                if remaining == 0 {
                    break;
                }
                if chunk.len <= remaining {
                    remaining -= chunk.len;
                    chunks.push(chunk.clone());
                } else {
                    let idx: Vec<u32> = (0..remaining as u32).collect();
                    chunks.push(chunk.gather(&idx));
                    remaining = 0;
                }
            }
            Ok(ColBatch {
                schema: batch.schema,
                chunks,
            })
        }

        LogicalPlan::Union { inputs, dedupe } => {
            let schema = plan.schema();
            let mut chunks = Vec::new();
            for input in inputs {
                let batch = exec(input, db, stats)?;
                if batch.schema.len() != schema.len() {
                    return Err(SqlError::Execution(format!(
                        "UNION arm arity mismatch: {} vs {}",
                        schema.len(),
                        batch.schema.len()
                    )));
                }
                chunks.extend(batch.chunks);
            }
            if *dedupe {
                let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
                chunks = dedupe_chunks(&chunks, &mut seen);
            }
            Ok(ColBatch { schema, chunks })
        }
    }
}

/// Selection vector of rows where `mask` is `TRUE` (SQL truthiness: NULL
/// and non-boolean values do not qualify). Returns `None` when every row
/// qualifies, so callers can skip the gather.
fn truthy_selection(mask: &ColumnVec) -> Option<Vec<u32>> {
    let n = mask.len();
    let mut sel = Vec::with_capacity(n);
    match mask {
        ColumnVec::Bool { data, nulls } => {
            if !nulls.any_null() && data.iter().all(|&b| b) {
                return None;
            }
            for (i, &b) in data.iter().enumerate() {
                if b && !nulls.is_null(i) {
                    sel.push(i as u32);
                }
            }
        }
        other => {
            for i in 0..n {
                if other.value_at(i).is_truthy() {
                    sel.push(i as u32);
                }
            }
            if sel.len() == n {
                return None;
            }
        }
    }
    Some(sel)
}

/// Keep only first occurrences (by whole-row [`GroupKey`]) across chunks.
fn dedupe_chunks(
    chunks: &[Chunk],
    seen: &mut HashMap<Vec<GroupKey>, ()>,
) -> Vec<Chunk> {
    let mut out = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let mut sel = Vec::with_capacity(chunk.len);
        for i in 0..chunk.len {
            let key: Vec<GroupKey> =
                chunk.columns.iter().map(|c| c.group_key_at(i)).collect();
            if seen.insert(key, ()).is_none() {
                sel.push(i as u32);
            }
        }
        let kept = if sel.len() == chunk.len {
            chunk.clone()
        } else {
            chunk.gather(&sel)
        };
        if !kept.is_empty() {
            out.push(kept);
        }
    }
    out
}

fn exec_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    on: &Expr,
    db: &Database,
    stats: &mut ExecStats,
) -> Result<ColBatch, SqlError> {
    let lbatch = exec(left, db, stats)?;
    let rbatch = exec(right, db, stats)?;
    let out_schema = SchemaRef::new(lbatch.schema.join(&rbatch.schema));
    let keys = extract_equi_keys(on, &lbatch.schema, &rbatch.schema);

    // The probe/pad logic below materialises joined rows; join output is
    // usually far smaller than its inputs, so this is where the row
    // format re-enters.
    let mut rows = Vec::new();
    let rwidth = rbatch.schema.len();

    if !keys.left_exprs.is_empty() {
        // Hash join: build on the right side, keyed by vectorized key
        // columns. NULL in any key never matches (SQL equality).
        let mut rrows: Vec<Row> = Vec::with_capacity(rbatch.rows());
        let mut table: HashMap<Vec<GroupKey>, Vec<u32>> = HashMap::new();
        for chunk in &rbatch.chunks {
            let mut key_cols = Vec::with_capacity(keys.right_exprs.len());
            for e in &keys.right_exprs {
                key_cols.push(e.eval_batch(chunk, &rbatch.schema, None)?);
            }
            for i in 0..chunk.len {
                let global = rrows.len() as u32;
                rrows.push(chunk.row(i));
                if key_cols.iter().any(|c| c.is_null(i)) {
                    continue;
                }
                let key: Vec<GroupKey> =
                    key_cols.iter().map(|c| c.group_key_at(i)).collect();
                table.entry(key).or_default().push(global);
            }
        }
        for chunk in &lbatch.chunks {
            let mut key_cols = Vec::with_capacity(keys.left_exprs.len());
            for e in &keys.left_exprs {
                key_cols.push(e.eval_batch(chunk, &lbatch.schema, None)?);
            }
            for i in 0..chunk.len {
                let null_key = key_cols.iter().any(|c| c.is_null(i));
                let mut matched = false;
                if !null_key {
                    let key: Vec<GroupKey> =
                        key_cols.iter().map(|c| c.group_key_at(i)).collect();
                    if let Some(candidates) = table.get(&key) {
                        let lrow = chunk.row(i);
                        for &ri in candidates {
                            let joined = lrow.join(&rrows[ri as usize]);
                            let ok = match &keys.residual {
                                Some(p) => p.eval(&joined, &out_schema)?.is_truthy(),
                                None => true,
                            };
                            if ok {
                                rows.push(joined);
                                matched = true;
                            }
                        }
                    }
                }
                if !matched && kind == JoinKind::Left {
                    let pad = Row::new(vec![Value::Null; rwidth]);
                    rows.push(chunk.row(i).join(&pad));
                }
            }
        }
    } else {
        // Nested-loop join, row-major like the row executor.
        let rrows: Vec<Row> = rbatch
            .chunks
            .iter()
            .flat_map(|c| (0..c.len).map(move |i| c.row(i)))
            .collect();
        for chunk in &lbatch.chunks {
            for i in 0..chunk.len {
                let lrow = chunk.row(i);
                let mut matched = false;
                for rrow in &rrows {
                    let joined = lrow.join(rrow);
                    if on.eval(&joined, &out_schema)?.is_truthy() {
                        rows.push(joined);
                        matched = true;
                    }
                }
                if !matched && kind == JoinKind::Left {
                    let pad = Row::new(vec![Value::Null; rwidth]);
                    rows.push(lrow.join(&pad));
                }
            }
        }
    }
    Ok(ColBatch::from_rows(out_schema, &rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::exec::execute_plan;
    use crate::parser::{parse, Statement};
    use crate::plan::logical::Planner;
    use crate::plan::optimizer::Optimizer;

    fn seeded() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE orders (id INT, user_id INT, amount FLOAT, category TEXT)")
            .unwrap();
        e.execute("CREATE TABLE users (id INT, name TEXT)").unwrap();
        e.execute(
            "INSERT INTO orders VALUES \
             (1, 1, 10.0, 'books'), (2, 1, 20.0, 'tech'), \
             (3, 2, 30.0, 'books'), (4, 3, 40.0, 'tech'), \
             (5, NULL, 5.5, NULL)",
        )
        .unwrap();
        e.execute("INSERT INTO users VALUES (1, 'alice'), (2, 'bob')")
            .unwrap();
        e
    }

    fn both(e: &Engine, sql: &str) -> (RowBatch, RowBatch, ExecStats) {
        let stmt = match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let db = e.database();
        let plan = Planner::new(db).plan_select(&stmt).unwrap();
        let plan = Optimizer::new().optimize(plan).unwrap();
        let row = execute_plan(&plan, db).unwrap();
        let mut stats = ExecStats::default();
        let col = execute_plan_columnar_with_stats(&plan, db, &mut stats).unwrap();
        (row, col, stats)
    }

    #[test]
    fn matches_row_executor_on_core_queries() {
        let e = seeded();
        for sql in [
            "SELECT * FROM orders",
            "SELECT id FROM orders WHERE amount > 15",
            "SELECT id, amount * 2 FROM orders WHERE category = 'books'",
            "SELECT category, COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) \
             FROM orders GROUP BY category ORDER BY category",
            "SELECT COUNT(*), SUM(amount) FROM orders WHERE id > 100",
            "SELECT o.id, u.name FROM orders o JOIN users u ON o.user_id = u.id ORDER BY o.id",
            "SELECT o.id, u.name FROM orders o LEFT JOIN users u ON o.user_id = u.id ORDER BY o.id",
            "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id AND o.amount > 15",
            "SELECT o.id FROM orders o JOIN users u ON o.user_id < u.id",
            "SELECT DISTINCT category FROM orders ORDER BY category",
            "SELECT id FROM orders ORDER BY amount DESC LIMIT 2",
            "SELECT category FROM orders GROUP BY category HAVING SUM(amount) > 50",
            "SELECT id FROM orders WHERE category IS NULL",
            "SELECT id FROM orders WHERE category LIKE 'b%'",
            "SELECT id FROM orders WHERE id IN (1, 3, NULL)",
            "SELECT id FROM orders WHERE amount BETWEEN 10 AND 30",
            "SELECT id FROM orders UNION SELECT id FROM users ORDER BY 1",
            "SELECT id FROM orders UNION ALL SELECT id FROM users",
            "SELECT 2 * 21 AS answer",
            "SELECT UPPER(category) FROM orders WHERE id = 1",
        ] {
            let (row, col, _) = both(&e, sql);
            assert_eq!(row.schema.columns(), col.schema.columns(), "schema: {sql}");
            assert_eq!(row.rows, col.rows, "rows: {sql}");
        }
    }

    #[test]
    fn scan_stats_count_chunks_and_rows() {
        let e = seeded();
        let (_, _, stats) = both(&e, "SELECT COUNT(*) FROM orders");
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.rows_scanned, 5);
        let (_, _, stats) =
            both(&e, "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id");
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.rows_scanned, 7);
    }

    #[test]
    fn errors_match_row_executor_presence() {
        let e = seeded();
        // Comparing text to int errors on both paths.
        let stmt = match parse("SELECT id FROM orders WHERE category > 1").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let db = e.database();
        let plan = Planner::new(db).plan_select(&stmt).unwrap();
        assert!(execute_plan(&plan, db).is_err());
        assert!(execute_plan_columnar(&plan, db).is_err());
    }
}
