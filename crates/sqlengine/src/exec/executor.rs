//! The recursive plan executor.
//!
//! Each node pulls the full output of its children (materialised execution;
//! fine for an in-memory engine). Joins pick a physical strategy at run
//! time: equi-join conjuncts in the `ON` clause trigger a **hash join**,
//! anything else falls back to a nested-loop join.

use std::collections::HashMap;

use crate::catalog::{Database, Table};
use crate::error::SqlError;
use crate::expr::{BinOp, Expr};
use crate::parser::JoinKind;
use crate::plan::logical::LogicalPlan;
use crate::row::{Row, RowBatch};
use crate::schema::SchemaRef;
use crate::value::{DataType, GroupKey, Value};

use super::aggregate::Accumulator;

/// Execute a logical plan to completion.
pub fn execute_plan(plan: &LogicalPlan, db: &Database) -> Result<RowBatch, SqlError> {
    match plan {
        LogicalPlan::Scan {
            table,
            schema,
            projection,
            filter,
            ..
        } => {
            let t = db.table(table)?;
            let mut rows = Vec::new();
            let mut emit = |row: &Row| -> Result<(), SqlError> {
                let projected = match projection {
                    Some(idx) => Row::new(idx.iter().map(|&i| row[i].clone()).collect()),
                    None => row.clone(),
                };
                if let Some(f) = filter {
                    if !f.eval(&projected, schema)?.is_truthy() {
                        return Ok(());
                    }
                }
                rows.push(projected);
                Ok(())
            };
            if t.is_paged() {
                let pager = t.pager().expect("paged table");
                let heap = t.heap().expect("paged table");
                // Index path: equality or range conjuncts on a B+-tree
                // column narrow the scan to ascending row ordinals.
                let candidates = match filter {
                    Some(f) => paged_index_candidates(t, schema, projection, f)?,
                    None => None,
                };
                match candidates {
                    Some(ords) => {
                        let fetched = heap.fetch_many(&mut pager.pool(), &ords)?;
                        for vals in fetched {
                            emit(&Row::new(vals))?;
                        }
                    }
                    None => {
                        // Stream page by page: resident memory stays
                        // bounded by the pool, not the table.
                        for i in 0..heap.page_count() {
                            for vals in heap.read_page(&mut pager.pool(), i)? {
                                emit(&Row::new(vals))?;
                            }
                        }
                    }
                }
                return Ok(RowBatch::new(schema.clone(), rows));
            }
            // Index path: an equality conjunct on an indexed column narrows
            // the scan to the index's posting list.
            let candidates = filter
                .as_ref()
                .and_then(|f| index_candidates(t, schema, projection, f));
            match candidates {
                Some(ids) => {
                    for id in ids {
                        emit(&t.rows[id])?;
                    }
                }
                None => {
                    for row in &t.rows {
                        emit(row)?;
                    }
                }
            }
            Ok(RowBatch::new(schema.clone(), rows))
        }

        LogicalPlan::Union { inputs, dedupe } => {
            let schema = plan.schema();
            let mut rows = Vec::new();
            for input in inputs {
                let batch = execute_plan(input, db)?;
                if batch.schema.len() != schema.len() {
                    return Err(SqlError::Execution(format!(
                        "UNION arm arity mismatch: {} vs {}",
                        schema.len(),
                        batch.schema.len()
                    )));
                }
                rows.extend(batch.rows);
            }
            if *dedupe {
                let mut seen: std::collections::HashSet<Vec<GroupKey>> =
                    std::collections::HashSet::new();
                rows.retain(|r| {
                    let key: Vec<GroupKey> =
                        r.values().iter().map(Value::group_key).collect();
                    seen.insert(key)
                });
            }
            Ok(RowBatch::new(schema, rows))
        }

        LogicalPlan::Values { schema, rows } => Ok(RowBatch::new(
            schema.clone(),
            (0..*rows).map(|_| Row::default()).collect(),
        )),

        LogicalPlan::Filter { input, predicate } => {
            let batch = execute_plan(input, db)?;
            let mut rows = Vec::with_capacity(batch.rows.len());
            for row in batch.rows {
                if predicate.eval(&row, &batch.schema)?.is_truthy() {
                    rows.push(row);
                }
            }
            Ok(RowBatch::new(batch.schema, rows))
        }

        LogicalPlan::Project { input, exprs } => {
            let batch = execute_plan(input, db)?;
            let out_schema = plan.schema();
            let mut rows = Vec::with_capacity(batch.rows.len());
            for row in &batch.rows {
                let mut vals = Vec::with_capacity(exprs.len());
                for (e, _) in exprs {
                    vals.push(e.eval(row, &batch.schema)?);
                }
                rows.push(Row::new(vals));
            }
            Ok(RowBatch::new(out_schema, rows))
        }

        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => execute_join(left, right, *kind, on, db),

        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let batch = execute_plan(input, db)?;
            let out_schema = plan.schema();
            // Group rows by key; keep first-seen order for determinism.
            let mut order: Vec<Vec<GroupKey>> = Vec::new();
            let mut groups: HashMap<Vec<GroupKey>, (Row, Vec<Accumulator>)> = HashMap::new();
            for row in &batch.rows {
                let mut key = Vec::with_capacity(group_exprs.len());
                let mut key_vals = Vec::with_capacity(group_exprs.len());
                for (e, _) in group_exprs {
                    let v = e.eval(row, &batch.schema)?;
                    key.push(v.group_key());
                    key_vals.push(v);
                }
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key.clone());
                    (
                        Row::new(key_vals),
                        aggregates
                            .iter()
                            .map(|(f, _, _)| Accumulator::new(*f))
                            .collect(),
                    )
                });
                for ((_, arg, _), acc) in aggregates.iter().zip(entry.1.iter_mut()) {
                    let v = match arg {
                        Expr::Wildcard => Value::Int(1), // ignored by COUNT(*)
                        e => e.eval(row, &batch.schema)?,
                    };
                    acc.update(&v)?;
                }
            }
            // Global aggregate over empty input still emits one row.
            if groups.is_empty() && group_exprs.is_empty() {
                let accs: Vec<Accumulator> = aggregates
                    .iter()
                    .map(|(f, _, _)| Accumulator::new(*f))
                    .collect();
                let vals: Vec<Value> = accs.iter().map(Accumulator::finish).collect();
                return Ok(RowBatch::new(out_schema, vec![Row::new(vals)]));
            }
            let mut rows = Vec::with_capacity(order.len());
            for key in order {
                let (key_row, accs) = groups.remove(&key).expect("group vanished");
                let mut vals = key_row.into_values();
                vals.extend(accs.iter().map(Accumulator::finish));
                rows.push(Row::new(vals));
            }
            Ok(RowBatch::new(out_schema, rows))
        }

        LogicalPlan::Sort { input, keys } => {
            let mut batch = execute_plan(input, db)?;
            batch.rows.sort_by(|a, b| {
                for (idx, desc) in keys {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(batch)
        }

        LogicalPlan::Strip { input, keep } => {
            let batch = execute_plan(input, db)?;
            let out_schema = plan.schema();
            let rows = batch
                .rows
                .into_iter()
                .map(|r| {
                    let mut vals = r.into_values();
                    vals.truncate(*keep);
                    Row::new(vals)
                })
                .collect();
            Ok(RowBatch::new(out_schema, rows))
        }

        LogicalPlan::Distinct { input } => {
            let batch = execute_plan(input, db)?;
            let mut seen: HashMap<Vec<GroupKey>, ()> = HashMap::new();
            let mut rows = Vec::new();
            for row in batch.rows {
                let key: Vec<GroupKey> = row.values().iter().map(Value::group_key).collect();
                if seen.insert(key, ()).is_none() {
                    rows.push(row);
                }
            }
            Ok(RowBatch::new(batch.schema, rows))
        }

        LogicalPlan::Limit { input, n } => {
            let mut batch = execute_plan(input, db)?;
            batch.rows.truncate(*n);
            Ok(batch)
        }
    }
}

/// If `filter` contains an equality conjunct `col = literal` whose column
/// carries a fresh hash index, return the matching row positions.
fn index_candidates(
    t: &Table,
    schema: &SchemaRef,
    projection: &Option<Vec<usize>>,
    filter: &Expr,
) -> Option<Vec<usize>> {
    let mut conjuncts = Vec::new();
    fn split(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                split(left, out);
                split(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    split(filter, &mut conjuncts);
    for c in &conjuncts {
        let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        let (col, value) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column { table, name }, Expr::Literal(v)) => ((table, name), v),
            (Expr::Literal(v), Expr::Column { table, name }) => ((table, name), v),
            _ => continue,
        };
        let Ok(scan_pos) = schema.resolve(col.0.as_deref(), col.1) else {
            continue;
        };
        let base_pos = match projection {
            Some(p) => p[scan_pos],
            None => scan_pos,
        };
        if let Some(idx) = t.index_if_fresh(base_pos) {
            return Some(idx.lookup(value).to_vec());
        }
    }
    None
}

/// What a single conjunct contributes to a paged index probe.
enum PagedProbe {
    /// Conjunct can't use the tree — try the next one.
    Skip,
    /// Conjunct can never be truthy — the scan yields nothing.
    Empty,
    /// Probe the tree with these bounds.
    Range(std::ops::Bound<Value>, std::ops::Bound<Value>),
}

/// Convert a comparison against `lit` on a column of type `ty` into B+-tree
/// bounds. `op` is normalised so the column is on the left. Cross-type
/// Int/Float comparisons are rewritten into same-type bounds so the probe
/// never under-selects; anything not provably safe falls back to a full
/// scan (`Skip`). The filter re-checks every candidate, so over-selection
/// is always fine.
fn paged_bounds(op: BinOp, lit: &Value, ty: DataType) -> PagedProbe {
    use std::ops::Bound::{Excluded, Included, Unbounded};
    let same = matches!(
        (lit, ty),
        (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Text(_), DataType::Text)
            | (Value::Bool(_), DataType::Bool)
    );
    if same {
        if let Value::Float(f) = lit {
            if f.is_nan() {
                return PagedProbe::Skip;
            }
        }
        let v = lit.clone();
        return match op {
            BinOp::Eq => PagedProbe::Range(Included(v.clone()), Included(v)),
            BinOp::Gt => PagedProbe::Range(Excluded(v), Unbounded),
            BinOp::Ge => PagedProbe::Range(Included(v), Unbounded),
            BinOp::Lt => PagedProbe::Range(Unbounded, Excluded(v)),
            BinOp::Le => PagedProbe::Range(Unbounded, Included(v)),
            _ => PagedProbe::Skip,
        };
    }
    match (lit, ty) {
        // Int literal against a Float column: exact as f64 for |i| < 2^53,
        // and the engine's comparison semantics already go through the same
        // widening, so bounds stay aligned with the filter.
        (Value::Int(i), DataType::Float) => paged_bounds(op, &Value::Float(*i as f64), ty),
        (Value::Float(f), DataType::Int) => {
            if !f.is_finite() || *f < -(2f64.powi(63)) || *f >= 2f64.powi(63) {
                return PagedProbe::Skip;
            }
            let whole = f.fract() == 0.0;
            match op {
                BinOp::Eq if whole => {
                    let v = Value::Int(*f as i64);
                    PagedProbe::Range(Included(v.clone()), Included(v))
                }
                BinOp::Eq => PagedProbe::Empty,
                BinOp::Gt | BinOp::Ge => {
                    let lo = if whole {
                        let v = Value::Int(*f as i64);
                        if op == BinOp::Gt {
                            Excluded(v)
                        } else {
                            Included(v)
                        }
                    } else {
                        // fract != 0 implies |f| < 2^52, so ceil/floor stay
                        // comfortably inside i64.
                        Included(Value::Int(f.ceil() as i64))
                    };
                    PagedProbe::Range(lo, Unbounded)
                }
                BinOp::Lt | BinOp::Le => {
                    let hi = if whole {
                        let v = Value::Int(*f as i64);
                        if op == BinOp::Lt {
                            Excluded(v)
                        } else {
                            Included(v)
                        }
                    } else {
                        Included(Value::Int(f.floor() as i64))
                    };
                    PagedProbe::Range(Unbounded, hi)
                }
                _ => PagedProbe::Skip,
            }
        }
        _ => PagedProbe::Skip,
    }
}

/// If `filter` contains an equality or range conjunct on a column carrying a
/// fresh B+-tree, return matching row ordinals (ascending). `Ok(None)` means
/// fall back to a full heap scan.
fn paged_index_candidates(
    t: &Table,
    schema: &SchemaRef,
    projection: &Option<Vec<usize>>,
    filter: &Expr,
) -> Result<Option<Vec<usize>>, SqlError> {
    let (Some(heap), Some(pager)) = (t.heap(), t.pager()) else {
        return Ok(None);
    };
    let mut conjuncts = Vec::new();
    fn split(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                split(left, out);
                split(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    split(filter, &mut conjuncts);
    // Resolve a column expression to its base-table position.
    let base_pos = |table: &Option<String>, name: &String| -> Option<usize> {
        let scan_pos = schema.resolve(table.as_deref(), name).ok()?;
        Some(match projection {
            Some(p) => p[scan_pos],
            None => scan_pos,
        })
    };
    for c in &conjuncts {
        let probe = match c {
            Expr::Binary { left, op, right }
                if matches!(
                    op,
                    BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                ) =>
            {
                // Normalise `lit OP col` to `col FLIP(OP) lit`.
                let (pos, norm_op, lit) = match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { table, name }, Expr::Literal(v)) => {
                        match base_pos(table, name) {
                            Some(p) => (p, *op, v),
                            None => continue,
                        }
                    }
                    (Expr::Literal(v), Expr::Column { table, name }) => {
                        let flipped = match op {
                            BinOp::Eq => BinOp::Eq,
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            _ => unreachable!(),
                        };
                        match base_pos(table, name) {
                            Some(p) => (p, flipped, v),
                            None => continue,
                        }
                    }
                    _ => continue,
                };
                if lit.is_null() {
                    continue;
                }
                let Some(tree) = t.btree_if_fresh(pos) else {
                    continue;
                };
                let ty = t.schema.columns()[pos].data_type;
                (tree, paged_bounds(norm_op, lit, ty))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated: false,
            } => {
                let (Expr::Column { table, name }, Expr::Literal(lo), Expr::Literal(hi)) =
                    (expr.as_ref(), low.as_ref(), high.as_ref())
                else {
                    continue;
                };
                let Some(pos) = base_pos(table, name) else {
                    continue;
                };
                if lo.is_null() || hi.is_null() {
                    continue;
                }
                let Some(tree) = t.btree_if_fresh(pos) else {
                    continue;
                };
                let ty = t.schema.columns()[pos].data_type;
                let probe = match (
                    paged_bounds(BinOp::Ge, lo, ty),
                    paged_bounds(BinOp::Le, hi, ty),
                ) {
                    (PagedProbe::Empty, _) | (_, PagedProbe::Empty) => PagedProbe::Empty,
                    (PagedProbe::Range(l, _), PagedProbe::Range(_, h)) => PagedProbe::Range(l, h),
                    _ => PagedProbe::Skip,
                };
                (tree, probe)
            }
            _ => continue,
        };
        let (tree, probe) = probe;
        match probe {
            PagedProbe::Skip => continue,
            PagedProbe::Empty => return Ok(Some(Vec::new())),
            PagedProbe::Range(lo, hi) => {
                fn as_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
                    match b {
                        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
                        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
                        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
                    }
                }
                let mut ords = tree.range(&mut pager.pool(), as_ref(&lo), as_ref(&hi))?;
                // Defensive: a stale-but-unmarked tree could carry ordinals
                // past the current heap; a full scan would never see them.
                ords.retain(|&o| o < heap.len());
                return Ok(Some(ords));
            }
        }
    }
    Ok(None)
}

/// Equi-join key pairs extracted from an ON conjunction, plus the residual
/// predicate that must still be evaluated per candidate pair. Shared with
/// the vectorized executor so both pick the same physical join.
pub(super) struct JoinKeys {
    pub(super) left_exprs: Vec<Expr>,
    pub(super) right_exprs: Vec<Expr>,
    pub(super) residual: Option<Expr>,
}

/// Pull `l.x = r.y` style conjuncts out of `on`.
pub(super) fn extract_equi_keys(on: &Expr, lschema: &SchemaRef, rschema: &SchemaRef) -> JoinKeys {
    fn bound_by(e: &Expr, schema: &SchemaRef) -> bool {
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        !cols.is_empty()
            && cols
                .iter()
                .all(|(t, n)| schema.resolve(t.as_deref(), n).is_ok())
    }
    let mut conjuncts = Vec::new();
    fn split(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                split(left, out);
                split(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    split(on, &mut conjuncts);

    let mut keys = JoinKeys {
        left_exprs: Vec::new(),
        right_exprs: Vec::new(),
        residual: None,
    };
    let mut residuals = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = &c
        {
            if bound_by(left, lschema) && bound_by(right, rschema) {
                keys.left_exprs.push((**left).clone());
                keys.right_exprs.push((**right).clone());
                continue;
            }
            if bound_by(right, lschema) && bound_by(left, rschema) {
                keys.left_exprs.push((**right).clone());
                keys.right_exprs.push((**left).clone());
                continue;
            }
        }
        residuals.push(c);
    }
    keys.residual = residuals.into_iter().reduce(|a, b| Expr::binary(a, BinOp::And, b));
    keys
}

fn execute_join(
    left: &LogicalPlan,
    right: &LogicalPlan,
    kind: JoinKind,
    on: &Expr,
    db: &Database,
) -> Result<RowBatch, SqlError> {
    let lbatch = execute_plan(left, db)?;
    let rbatch = execute_plan(right, db)?;
    let out_schema = SchemaRef::new(lbatch.schema.join(&rbatch.schema));
    let keys = extract_equi_keys(on, &lbatch.schema, &rbatch.schema);

    let mut rows = Vec::new();
    if !keys.left_exprs.is_empty() {
        // Hash join: build on the right side.
        let mut table: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
        for (i, rrow) in rbatch.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(keys.right_exprs.len());
            let mut null_key = false;
            for e in &keys.right_exprs {
                let v = e.eval(rrow, &rbatch.schema)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                key.push(v.group_key());
            }
            if !null_key {
                table.entry(key).or_default().push(i);
            }
        }
        for lrow in &lbatch.rows {
            let mut key = Vec::with_capacity(keys.left_exprs.len());
            let mut null_key = false;
            for e in &keys.left_exprs {
                let v = e.eval(lrow, &lbatch.schema)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                key.push(v.group_key());
            }
            let mut matched = false;
            if !null_key {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        let joined = lrow.join(&rbatch.rows[ri]);
                        let ok = match &keys.residual {
                            Some(p) => p.eval(&joined, &out_schema)?.is_truthy(),
                            None => true,
                        };
                        if ok {
                            rows.push(joined);
                            matched = true;
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let pad = Row::new(vec![Value::Null; rbatch.schema.len()]);
                rows.push(lrow.join(&pad));
            }
        }
    } else {
        // Nested-loop join.
        for lrow in &lbatch.rows {
            let mut matched = false;
            for rrow in &rbatch.rows {
                let joined = lrow.join(rrow);
                if on.eval(&joined, &out_schema)?.is_truthy() {
                    rows.push(joined);
                    matched = true;
                }
            }
            if !matched && kind == JoinKind::Left {
                let pad = Row::new(vec![Value::Null; rbatch.schema.len()]);
                rows.push(lrow.join(&pad));
            }
        }
    }
    Ok(RowBatch::new(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::parser::{parse, Statement};
    use crate::plan::logical::Planner;
    use crate::plan::optimizer::Optimizer;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("user_id", DataType::Int),
                Column::new("amount", DataType::Float),
                Column::new("category", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        db.create_table(
            "users",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        {
            let t = db.table_mut("orders").unwrap();
            for (id, uid, amt, cat) in [
                (1, 1, 10.0, "books"),
                (2, 1, 20.0, "tech"),
                (3, 2, 30.0, "books"),
                (4, 3, 40.0, "tech"),
            ] {
                t.insert_row(vec![
                    Value::Int(id),
                    Value::Int(uid),
                    Value::Float(amt),
                    Value::Text(cat.into()),
                ])
                .unwrap();
            }
        }
        {
            let t = db.table_mut("users").unwrap();
            for (id, name) in [(1, "alice"), (2, "bob")] {
                t.insert_row(vec![Value::Int(id), Value::Text(name.into())])
                    .unwrap();
            }
        }
        db
    }

    fn run(sql: &str) -> RowBatch {
        let db = db();
        let stmt = match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = Planner::new(&db).plan_select(&stmt).unwrap();
        let plan = Optimizer::new().optimize(plan).unwrap();
        execute_plan(&plan, &db).unwrap()
    }

    fn cell(b: &RowBatch, r: usize, c: usize) -> String {
        b.rows[r][c].to_string()
    }

    #[test]
    fn scan_filter_project() {
        let b = run("SELECT id FROM orders WHERE amount > 15");
        assert_eq!(b.len(), 3);
        assert_eq!(cell(&b, 0, 0), "2");
    }

    #[test]
    fn inner_hash_join() {
        let b = run(
            "SELECT o.id, u.name FROM orders o JOIN users u ON o.user_id = u.id ORDER BY o.id",
        );
        assert_eq!(b.len(), 3); // order 4 has no user
        assert_eq!(cell(&b, 0, 1), "alice");
        assert_eq!(cell(&b, 2, 1), "bob");
    }

    #[test]
    fn left_join_pads_nulls() {
        let b = run(
            "SELECT o.id, u.name FROM orders o LEFT JOIN users u ON o.user_id = u.id ORDER BY o.id",
        );
        assert_eq!(b.len(), 4);
        assert_eq!(cell(&b, 3, 1), "NULL");
    }

    #[test]
    fn nested_loop_join_on_inequality() {
        let b = run("SELECT o.id FROM orders o JOIN users u ON o.user_id < u.id");
        // user_id 1 < 2 (orders 1,2). user_id 2,3: no.
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn join_with_residual_condition() {
        let b = run(
            "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id AND o.amount > 15",
        );
        assert_eq!(b.len(), 2); // orders 2 and 3
    }

    #[test]
    fn group_by_with_aggregates() {
        let b = run(
            "SELECT category, COUNT(*), SUM(amount) FROM orders GROUP BY category ORDER BY category",
        );
        assert_eq!(b.len(), 2);
        assert_eq!(cell(&b, 0, 0), "books");
        assert_eq!(cell(&b, 0, 1), "2");
        assert_eq!(cell(&b, 0, 2), "40.0");
        assert_eq!(cell(&b, 1, 2), "60.0");
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let b = run("SELECT COUNT(*), SUM(amount), MIN(amount) FROM orders WHERE id > 100");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), "0");
        assert_eq!(cell(&b, 0, 1), "NULL");
        assert_eq!(cell(&b, 0, 2), "NULL");
    }

    #[test]
    fn having_filters_groups() {
        let b = run(
            "SELECT category FROM orders GROUP BY category HAVING SUM(amount) > 50",
        );
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), "tech");
    }

    #[test]
    fn order_by_desc_and_limit() {
        let b = run("SELECT id FROM orders ORDER BY amount DESC LIMIT 2");
        assert_eq!(b.len(), 2);
        assert_eq!(cell(&b, 0, 0), "4");
        assert_eq!(cell(&b, 1, 0), "3");
    }

    #[test]
    fn order_by_hidden_key_is_stripped() {
        let b = run("SELECT category FROM orders ORDER BY amount DESC");
        assert_eq!(b.schema.len(), 1);
        assert_eq!(cell(&b, 0, 0), "tech");
    }

    #[test]
    fn distinct_dedups() {
        let b = run("SELECT DISTINCT category FROM orders ORDER BY category");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn select_expression_without_from() {
        let b = run("SELECT 2 * 21 AS answer");
        assert_eq!(b.len(), 1);
        assert_eq!(cell(&b, 0, 0), "42");
        assert_eq!(b.schema.columns()[0].name, "answer");
    }

    #[test]
    fn aggregate_expression_in_projection() {
        let b = run("SELECT SUM(amount) / COUNT(*) FROM orders");
        assert_eq!(cell(&b, 0, 0), "25.0");
    }

    #[test]
    fn scalar_function_in_query() {
        let b = run("SELECT UPPER(category) FROM orders WHERE id = 1");
        assert_eq!(cell(&b, 0, 0), "BOOKS");
    }

    #[test]
    fn join_null_keys_never_match() {
        let mut db = db();
        db.table_mut("orders")
            .unwrap()
            .insert_row(vec![
                Value::Int(5),
                Value::Null,
                Value::Float(1.0),
                Value::Text("misc".into()),
            ])
            .unwrap();
        let stmt = match parse(
            "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id",
        )
        .unwrap()
        {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = Planner::new(&db).plan_select(&stmt).unwrap();
        let b = execute_plan(&plan, &db).unwrap();
        assert_eq!(b.len(), 3); // NULL user_id does not join
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let db = db();
        let sqls = [
            "SELECT id FROM orders WHERE amount > 10 + 5",
            "SELECT o.id, u.name FROM orders o JOIN users u ON o.user_id = u.id WHERE u.name = 'alice' ORDER BY o.id",
            "SELECT category, SUM(amount) FROM orders GROUP BY category ORDER BY category",
            "SELECT DISTINCT category FROM orders ORDER BY category",
        ];
        for sql in sqls {
            let stmt = match parse(sql).unwrap() {
                Statement::Select(s) => s,
                other => panic!("{other:?}"),
            };
            let plan = Planner::new(&db).plan_select(&stmt).unwrap();
            let raw = execute_plan(&plan, &db).unwrap();
            let opt = Optimizer::new().optimize(plan).unwrap();
            let optimized = execute_plan(&opt, &db).unwrap();
            assert_eq!(raw.rows, optimized.rows, "plans disagree for {sql}");
        }
    }
}
