//! Aggregate accumulators.

use std::collections::HashSet;

use crate::col::ColumnVec;
use crate::error::SqlError;
use crate::plan::logical::AggFunc;
use crate::value::{GroupKey, Value};

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// `COUNT(*)`.
    CountStar(i64),
    /// `COUNT(expr)` — non-NULL count.
    Count(i64),
    /// `COUNT(DISTINCT expr)` — distinct non-NULL values.
    CountDistinct(HashSet<GroupKey>),
    /// `SUM(expr)` — NULL until the first non-NULL input; integer sums stay
    /// integers, any float input promotes.
    Sum(SumState),
    /// `AVG(expr)`.
    Avg {
        /// Running sum.
        sum: f64,
        /// Non-NULL input count.
        n: i64,
    },
    /// `MIN(expr)`.
    Min(Option<Value>),
    /// `MAX(expr)`.
    Max(Option<Value>),
}

/// Sum state: empty (→ NULL), integer, or float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SumState {
    /// No non-NULL input yet.
    Empty,
    /// All-integer sum.
    Int(i64),
    /// Float-promoted sum.
    Float(f64),
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::CountStar => Accumulator::CountStar(0),
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::CountDistinct => Accumulator::CountDistinct(HashSet::new()),
            AggFunc::Sum => Accumulator::Sum(SumState::Empty),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
        }
    }

    /// Fold one input value. For `COUNT(*)` the value is ignored.
    pub fn update(&mut self, value: &Value) -> Result<(), SqlError> {
        match self {
            Accumulator::CountStar(n) => *n += 1,
            Accumulator::Count(n) => {
                if !value.is_null() {
                    *n += 1;
                }
            }
            Accumulator::CountDistinct(seen) => {
                if !value.is_null() {
                    seen.insert(value.group_key());
                }
            }
            Accumulator::Sum(state) => match value {
                Value::Null => {}
                Value::Int(i) => {
                    *state = match *state {
                        SumState::Empty => SumState::Int(*i),
                        SumState::Int(s) => SumState::Int(s.wrapping_add(*i)),
                        SumState::Float(s) => SumState::Float(s + *i as f64),
                    }
                }
                Value::Float(f) => {
                    *state = match *state {
                        SumState::Empty => SumState::Float(*f),
                        SumState::Int(s) => SumState::Float(s as f64 + *f),
                        SumState::Float(s) => SumState::Float(s + *f),
                    }
                }
                other => {
                    return Err(SqlError::Execution(format!(
                        "SUM over non-numeric value {other:?}"
                    )))
                }
            },
            Accumulator::Avg { sum, n } => match value.as_f64() {
                Some(f) => {
                    *sum += f;
                    *n += 1;
                }
                None if value.is_null() => {}
                None => {
                    return Err(SqlError::Execution(format!(
                        "AVG over non-numeric value {value:?}"
                    )))
                }
            },
            Accumulator::Min(best) => {
                if !value.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            value.sql_cmp(b) == Some(std::cmp::Ordering::Less)
                        }
                    };
                    if replace {
                        *best = Some(value.clone());
                    }
                }
            }
            Accumulator::Max(best) => {
                if !value.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            value.sql_cmp(b) == Some(std::cmp::Ordering::Greater)
                        }
                    };
                    if replace {
                        *best = Some(value.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold position `i` of a column. Typed fast paths avoid materialising
    /// a [`Value`] for the hot Int/Float cases; everything else defers to
    /// [`Accumulator::update`].
    pub fn update_col(&mut self, col: &ColumnVec, i: usize) -> Result<(), SqlError> {
        match (&mut *self, col) {
            (Accumulator::CountStar(n), _) => {
                *n += 1;
                Ok(())
            }
            (Accumulator::Count(n), c) => {
                if !c.is_null(i) {
                    *n += 1;
                }
                Ok(())
            }
            (Accumulator::Sum(state), ColumnVec::Int { data, nulls }) => {
                if !nulls.is_null(i) {
                    let v = data[i];
                    *state = match *state {
                        SumState::Empty => SumState::Int(v),
                        SumState::Int(s) => SumState::Int(s.wrapping_add(v)),
                        SumState::Float(s) => SumState::Float(s + v as f64),
                    };
                }
                Ok(())
            }
            (Accumulator::Sum(state), ColumnVec::Float { data, nulls }) => {
                if !nulls.is_null(i) {
                    let v = data[i];
                    *state = match *state {
                        SumState::Empty => SumState::Float(v),
                        SumState::Int(s) => SumState::Float(s as f64 + v),
                        SumState::Float(s) => SumState::Float(s + v),
                    };
                }
                Ok(())
            }
            (Accumulator::Avg { sum, n }, ColumnVec::Int { data, nulls }) => {
                if !nulls.is_null(i) {
                    *sum += data[i] as f64;
                    *n += 1;
                }
                Ok(())
            }
            (Accumulator::Avg { sum, n }, ColumnVec::Float { data, nulls }) => {
                if !nulls.is_null(i) {
                    *sum += data[i];
                    *n += 1;
                }
                Ok(())
            }
            (Accumulator::Min(best), ColumnVec::Int { data, nulls }) => {
                if !nulls.is_null(i) {
                    let v = data[i];
                    match best {
                        Some(Value::Int(b)) if v >= *b => {}
                        _ => return self.update(&Value::Int(v)),
                    }
                }
                Ok(())
            }
            (Accumulator::Max(best), ColumnVec::Int { data, nulls }) => {
                if !nulls.is_null(i) {
                    let v = data[i];
                    match best {
                        Some(Value::Int(b)) if v <= *b => {}
                        _ => return self.update(&Value::Int(v)),
                    }
                }
                Ok(())
            }
            _ => self.update(&col.value_at(i)),
        }
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        match self {
            Accumulator::CountStar(n) | Accumulator::Count(n) => Value::Int(*n),
            Accumulator::CountDistinct(seen) => Value::Int(seen.len() as i64),
            Accumulator::Sum(SumState::Empty) => Value::Null,
            Accumulator::Sum(SumState::Int(s)) => Value::Int(*s),
            Accumulator::Sum(SumState::Float(s)) => Value::Float(*s),
            Accumulator::Avg { n: 0, .. } => Value::Null,
            Accumulator::Avg { sum, n } => Value::Float(sum / *n as f64),
            Accumulator::Min(v) | Accumulator::Max(v) => {
                v.clone().unwrap_or(Value::Null)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = Accumulator::new(func);
        for v in vals {
            acc.update(v).unwrap();
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_everything() {
        assert_eq!(
            run(AggFunc::CountStar, &[Value::Null, Value::Int(1)]),
            Value::Int(2)
        );
    }

    #[test]
    fn count_skips_nulls() {
        assert_eq!(
            run(AggFunc::Count, &[Value::Null, Value::Int(1), Value::Null]),
            Value::Int(1)
        );
    }

    #[test]
    fn sum_integer_stays_integer() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Int(2)]),
            Value::Int(3)
        );
    }

    #[test]
    fn sum_promotes_on_float() {
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(1), Value::Float(0.5)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn sum_of_empty_or_all_null_is_null() {
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[Value::Null]), Value::Null);
    }

    #[test]
    fn sum_rejects_text() {
        let mut acc = Accumulator::new(AggFunc::Sum);
        assert!(acc.update(&Value::Text("x".into())).is_err());
    }

    #[test]
    fn avg_mean_and_empty() {
        assert_eq!(
            run(AggFunc::Avg, &[Value::Int(1), Value::Int(2), Value::Null]),
            Value::Float(1.5)
        );
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
    }

    #[test]
    fn min_max_with_nulls() {
        let vals = [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)];
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::Min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn update_col_matches_update() {
        let vals = vec![
            Value::Int(3),
            Value::Null,
            Value::Int(-1),
            Value::Int(7),
            Value::Int(7),
        ];
        let col = ColumnVec::from_values(vals.clone());
        for func in [
            AggFunc::CountStar,
            AggFunc::Count,
            AggFunc::CountDistinct,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ] {
            let mut row_acc = Accumulator::new(func);
            let mut col_acc = Accumulator::new(func);
            for (i, v) in vals.iter().enumerate() {
                row_acc.update(v).unwrap();
                col_acc.update_col(&col, i).unwrap();
            }
            assert_eq!(row_acc.finish(), col_acc.finish(), "{func:?}");
        }
    }

    #[test]
    fn min_max_over_text() {
        let vals = [Value::Text("pear".into()), Value::Text("apple".into())];
        assert_eq!(run(AggFunc::Min, &vals), Value::Text("apple".into()));
        assert_eq!(run(AggFunc::Max, &vals), Value::Text("pear".into()));
    }
}
