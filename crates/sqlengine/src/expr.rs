//! Expression AST and evaluation.

use std::fmt;

use crate::error::SqlError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators, loosest first when displayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A (possibly qualified) column reference.
    Column {
        /// Table qualifier, lowercase.
        table: Option<String>,
        /// Column name, lowercase.
        name: String,
    },
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op expr`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call — scalar (`UPPER`, `ABS`, …) or aggregate
    /// (`COUNT`, `SUM`, …). Aggregates are split out by the planner.
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern literal/expression.
        pattern: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `*` — only valid in `COUNT(*)` and as a projection.
    Wildcard,
}

/// Aggregate function names the engine recognises.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["COUNT", "COUNT_DISTINCT", "SUM", "AVG", "MIN", "MAX"];

impl Expr {
    /// Convenience constructors.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_lowercase(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_lowercase()),
            name: name.to_lowercase(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary helper.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Does this subtree contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                AGGREGATE_FUNCTIONS.contains(&name.as_str())
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            _ => false,
        }
    }

    /// Every column referenced by this subtree, as `(table, name)` pairs.
    pub fn referenced_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { table, name } => out.push((table.clone(), name.clone())),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Literal(_) | Expr::Wildcard => {}
        }
    }

    /// Evaluate against a row. Aggregate calls are an error here — the
    /// planner must have rewritten them into column references first.
    pub fn eval(&self, row: &Row, schema: &Schema) -> Result<Value, SqlError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, name } => {
                let idx = schema.resolve(table.as_deref(), name)?;
                Ok(row[idx].clone())
            }
            Expr::Binary { left, op, right } => {
                eval_binary(left.eval(row, schema)?, *op, || right.eval(row, schema))
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(row, schema)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(SqlError::Execution(format!(
                            "cannot negate {other:?}"
                        ))),
                    },
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::Null => Ok(Value::Null),
                        other => Err(SqlError::Execution(format!("cannot NOT {other:?}"))),
                    },
                }
            }
            Expr::Function { name, args } => {
                if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                    return Err(SqlError::Plan(format!(
                        "aggregate {name} not allowed in this context"
                    )));
                }
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row, schema))
                    .collect::<Result<_, _>>()?;
                eval_scalar_function(name, &vals)
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row, schema)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                let p = pattern.eval(row, schema)?;
                match (&v, &p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(pat)) => {
                        Ok(Value::Bool(like_match(s, pat) != *negated))
                    }
                    _ => Err(SqlError::Execution("LIKE requires text operands".into())),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, schema)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.group_eq(&iv) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                let lo = low.eval(row, schema)?;
                let hi = high.eval(row, schema)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside = a != std::cmp::Ordering::Less
                            && b != std::cmp::Ordering::Greater;
                        Ok(Value::Bool(inside != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            Expr::Wildcard => Err(SqlError::Plan("`*` is not a value expression".into())),
        }
    }
}

/// Evaluate a binary operation with SQL NULL semantics and short-circuiting
/// AND/OR. `right` is lazy so `false AND err()` does not error.
fn eval_binary(
    left: Value,
    op: BinOp,
    right: impl FnOnce() -> Result<Value, SqlError>,
) -> Result<Value, SqlError> {
    use std::cmp::Ordering;
    match op {
        BinOp::And => match left {
            Value::Bool(false) => Ok(Value::Bool(false)),
            Value::Bool(true) => match right()? {
                Value::Bool(b) => Ok(Value::Bool(b)),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("AND with {other:?}"))),
            },
            Value::Null => match right()? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) | Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("AND with {other:?}"))),
            },
            other => Err(SqlError::Execution(format!("AND with {other:?}"))),
        },
        BinOp::Or => match left {
            Value::Bool(true) => Ok(Value::Bool(true)),
            Value::Bool(false) => match right()? {
                Value::Bool(b) => Ok(Value::Bool(b)),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("OR with {other:?}"))),
            },
            Value::Null => match right()? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) | Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("OR with {other:?}"))),
            },
            other => Err(SqlError::Execution(format!("OR with {other:?}"))),
        },
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let right = right()?;
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            let ord = left.sql_cmp(&right).ok_or_else(|| {
                SqlError::Execution(format!(
                    "cannot compare {:?} with {:?}",
                    left.data_type(),
                    right.data_type()
                ))
            })?;
            let b = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Neq => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let right = right()?;
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation via `+` (convenient for Text-to-SQL output).
            if let (Value::Text(a), Value::Text(b), BinOp::Add) = (&left, &right, op) {
                return Ok(Value::Text(format!("{a}{b}")));
            }
            match (left.as_i64(), right.as_i64()) {
                (Some(a), Some(b)) => match op {
                    BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                    BinOp::Div => {
                        if b == 0 {
                            Err(SqlError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Int(a / b))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            Err(SqlError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let a = left.as_f64().ok_or_else(|| {
                        SqlError::Execution(format!("arithmetic on {left:?}"))
                    })?;
                    let b = right.as_f64().ok_or_else(|| {
                        SqlError::Execution(format!("arithmetic on {right:?}"))
                    })?;
                    match op {
                        BinOp::Add => Ok(Value::Float(a + b)),
                        BinOp::Sub => Ok(Value::Float(a - b)),
                        BinOp::Mul => Ok(Value::Float(a * b)),
                        BinOp::Div => {
                            if b == 0.0 {
                                Err(SqlError::Execution("division by zero".into()))
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        BinOp::Mod => {
                            if b == 0.0 {
                                Err(SqlError::Execution("division by zero".into()))
                            } else {
                                Ok(Value::Float(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

/// Evaluate a scalar function.
pub fn eval_scalar_function(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    let arity_err = |want: &str| {
        Err(SqlError::Execution(format!(
            "{name} expects {want} argument(s), got {}",
            args.len()
        )))
    };
    match name {
        "ABS" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("ABS requires a number".into())),
            _ => arity_err("1"),
        },
        "UPPER" => match args {
            [Value::Text(s)] => Ok(Value::Text(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("UPPER requires text".into())),
            _ => arity_err("1"),
        },
        "LOWER" => match args {
            [Value::Text(s)] => Ok(Value::Text(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("LOWER requires text".into())),
            _ => arity_err("1"),
        },
        "LENGTH" => match args {
            [Value::Text(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("LENGTH requires text".into())),
            _ => arity_err("1"),
        },
        "ROUND" => match args {
            [v] => match v.as_f64() {
                Some(f) => Ok(Value::Float(f.round())),
                None if v.is_null() => Ok(Value::Null),
                None => Err(SqlError::Execution("ROUND requires a number".into())),
            },
            [v, Value::Int(d)] => match v.as_f64() {
                Some(f) => {
                    let m = 10f64.powi(*d as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                None if v.is_null() => Ok(Value::Null),
                None => Err(SqlError::Execution("ROUND requires a number".into())),
            },
            _ => arity_err("1 or 2"),
        },
        "COALESCE" => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "SUBSTR" | "SUBSTRING" => match args {
            [Value::Text(s), Value::Int(start)] => {
                let start = (*start - 1).max(0) as usize;
                Ok(Value::Text(s.chars().skip(start).collect()))
            }
            [Value::Text(s), Value::Int(start), Value::Int(len)] => {
                let start = (*start - 1).max(0) as usize;
                let len = (*len).max(0) as usize;
                Ok(Value::Text(s.chars().skip(start).take(len).collect()))
            }
            [Value::Null, ..] => Ok(Value::Null),
            _ => arity_err("2 or 3"),
        },
        other => Err(SqlError::Execution(format!("unknown function {other}"))),
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char),
/// case-sensitive, backtracking on `%`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try every split point.
                (0..=s.len()).any(|i| rec(&s[i..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => f.write_str(name),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.as_str())
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
        ])
        .unwrap()
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(7),
            Value::Text("alice".into()),
            Value::Float(3.5),
        ])
    }

    fn eval(e: &Expr) -> Value {
        e.eval(&row(), &schema()).unwrap()
    }

    #[test]
    fn column_lookup() {
        assert_eq!(eval(&Expr::col("id")), Value::Int(7));
        assert_eq!(eval(&Expr::col("NAME")), Value::Text("alice".into()));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = Expr::binary(Expr::col("id"), BinOp::Add, Expr::lit(3i64));
        assert_eq!(eval(&e), Value::Int(10));
        let e = Expr::binary(Expr::col("score"), BinOp::Mul, Expr::lit(2i64));
        assert_eq!(eval(&e), Value::Float(7.0));
        let e = Expr::binary(Expr::lit(7i64), BinOp::Div, Expr::lit(2i64));
        assert_eq!(eval(&e), Value::Int(3));
        let e = Expr::binary(Expr::lit(7i64), BinOp::Mod, Expr::lit(4i64));
        assert_eq!(eval(&e), Value::Int(3));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::binary(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        assert!(e.eval(&row(), &schema()).is_err());
        let e = Expr::binary(Expr::lit(1.0), BinOp::Div, Expr::lit(0.0));
        assert!(e.eval(&row(), &schema()).is_err());
    }

    #[test]
    fn comparison_and_null_semantics() {
        let e = Expr::binary(Expr::col("id"), BinOp::Gt, Expr::lit(5i64));
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::binary(Expr::lit(Value::Null), BinOp::Eq, Expr::lit(1i64));
        assert_eq!(eval(&e), Value::Null);
    }

    #[test]
    fn and_or_short_circuit_and_three_valued() {
        // false AND <error> = false (short circuit).
        let err = Expr::binary(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        let e = Expr::binary(
            Expr::lit(false),
            BinOp::And,
            Expr::binary(err.clone(), BinOp::Eq, Expr::lit(1i64)),
        );
        assert_eq!(eval(&e), Value::Bool(false));
        // true OR <error> = true.
        let e = Expr::binary(
            Expr::lit(true),
            BinOp::Or,
            Expr::binary(err, BinOp::Eq, Expr::lit(1i64)),
        );
        assert_eq!(eval(&e), Value::Bool(true));
        // NULL AND false = false; NULL AND true = NULL.
        let null = Expr::lit(Value::Null);
        let null_bool = Expr::binary(null.clone(), BinOp::Eq, Expr::lit(1i64));
        let e = Expr::binary(null_bool.clone(), BinOp::And, Expr::lit(false));
        assert_eq!(eval(&e), Value::Bool(false));
        let e = Expr::binary(null_bool.clone(), BinOp::And, Expr::lit(true));
        assert_eq!(eval(&e), Value::Null);
        // NULL OR true = true.
        let e = Expr::binary(null_bool, BinOp::Or, Expr::lit(true));
        assert_eq!(eval(&e), Value::Bool(true));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("alice", "a%"));
        assert!(like_match("alice", "%ice"));
        assert!(like_match("alice", "a_ice"));
        assert!(like_match("alice", "%li%"));
        assert!(!like_match("alice", "b%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn like_expr_and_negation() {
        let e = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::lit("al%")),
            negated: false,
        };
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::lit("al%")),
            negated: true,
        };
        assert_eq!(eval(&e), Value::Bool(false));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let mk = |list: Vec<Expr>, negated| Expr::InList {
            expr: Box::new(Expr::col("id")),
            list,
            negated,
        };
        assert_eq!(
            eval(&mk(vec![Expr::lit(7i64), Expr::lit(9i64)], false)),
            Value::Bool(true)
        );
        assert_eq!(eval(&mk(vec![Expr::lit(9i64)], false)), Value::Bool(false));
        // Not found but NULL present → NULL.
        assert_eq!(
            eval(&mk(vec![Expr::lit(9i64), Expr::lit(Value::Null)], false)),
            Value::Null
        );
        assert_eq!(eval(&mk(vec![Expr::lit(9i64)], true)), Value::Bool(true));
    }

    #[test]
    fn between_inclusive() {
        let mk = |lo: i64, hi: i64, negated| Expr::Between {
            expr: Box::new(Expr::col("id")),
            low: Box::new(Expr::lit(lo)),
            high: Box::new(Expr::lit(hi)),
            negated,
        };
        assert_eq!(eval(&mk(7, 10, false)), Value::Bool(true));
        assert_eq!(eval(&mk(1, 7, false)), Value::Bool(true));
        assert_eq!(eval(&mk(8, 10, false)), Value::Bool(false));
        assert_eq!(eval(&mk(8, 10, true)), Value::Bool(true));
    }

    #[test]
    fn is_null_checks() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("id")),
            negated: true,
        };
        assert_eq!(eval(&e), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_scalar_function("UPPER", &[Value::Text("ab".into())]).unwrap(),
            Value::Text("AB".into())
        );
        assert_eq!(
            eval_scalar_function("LENGTH", &[Value::Text("héllo".into())]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_scalar_function("ABS", &[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_scalar_function("ROUND", &[Value::Float(2.567), Value::Int(1)]).unwrap(),
            Value::Float(2.6)
        );
        assert_eq!(
            eval_scalar_function("COALESCE", &[Value::Null, Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar_function("SUBSTR", &[Value::Text("hello".into()), Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::Text("ell".into())
        );
        assert!(eval_scalar_function("NOPE", &[]).is_err());
        assert!(eval_scalar_function("UPPER", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn string_concat_with_plus() {
        let e = Expr::binary(Expr::lit("ab"), BinOp::Add, Expr::lit("cd"));
        assert_eq!(eval(&e), Value::Text("abcd".into()));
    }

    #[test]
    fn unary_ops() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(Expr::col("id")),
        };
        assert_eq!(eval(&e), Value::Int(-7));
        let e = Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::lit(true)),
        };
        assert_eq!(eval(&e), Value::Bool(false));
    }

    #[test]
    fn contains_aggregate_detection() {
        let agg = Expr::Function {
            name: "SUM".into(),
            args: vec![Expr::col("id")],
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::binary(Expr::lit(1i64), BinOp::Add, agg);
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("id").contains_aggregate());
        let scalar = Expr::Function {
            name: "UPPER".into(),
            args: vec![Expr::col("name")],
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn referenced_columns_walks_tree() {
        let e = Expr::binary(
            Expr::qcol("t", "a"),
            BinOp::Add,
            Expr::Function {
                name: "ABS".into(),
                args: vec![Expr::col("b")],
            },
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(
            cols,
            vec![
                (Some("t".to_string()), "a".to_string()),
                (None, "b".to_string())
            ]
        );
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::binary(Expr::col("a"), BinOp::And, Expr::lit(true));
        assert_eq!(e.to_string(), "(a AND true)");
        let e = Expr::lit("o'brien");
        assert_eq!(e.to_string(), "'o''brien'");
    }

    #[test]
    fn eval_aggregate_directly_errors() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![Expr::Wildcard],
        };
        assert!(agg.eval(&row(), &schema()).is_err());
    }
}
