//! Expression AST and evaluation.
//!
//! Expressions evaluate two ways: row-at-a-time via [`Expr::eval`] (the
//! original interpreter) and chunk-at-a-time via [`Expr::eval_batch`] (the
//! vectorized path, which resolves column references once per chunk and
//! runs typed kernels over [`crate::col::ColumnVec`]s). Both produce
//! identical results for identical inputs; the batch path preserves the
//! row path's lazy-evaluation set (AND/OR right operands and IN-list items
//! are only evaluated for rows where the row interpreter would evaluate
//! them), so even side effects like division-by-zero errors agree.

use std::fmt;
use std::sync::Arc;

use crate::col::{Chunk, ColumnVec, NullMask};
use crate::error::SqlError;
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators, loosest first when displayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `OR`
    Or,
    /// `AND`
    And,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A (possibly qualified) column reference.
    Column {
        /// Table qualifier, lowercase.
        table: Option<String>,
        /// Column name, lowercase.
        name: String,
    },
    /// `left op right`.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `op expr`.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Function call — scalar (`UPPER`, `ABS`, …) or aggregate
    /// (`COUNT`, `SUM`, …). Aggregates are split out by the planner.
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern literal/expression.
        pattern: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT form?
        negated: bool,
    },
    /// `*` — only valid in `COUNT(*)` and as a projection.
    Wildcard,
}

/// Aggregate function names the engine recognises.
pub const AGGREGATE_FUNCTIONS: &[&str] = &["COUNT", "COUNT_DISTINCT", "SUM", "AVG", "MIN", "MAX"];

impl Expr {
    /// Convenience constructors.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_lowercase(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_lowercase()),
            name: name.to_lowercase(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary helper.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    /// Does this subtree contain an aggregate function call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args } => {
                AGGREGATE_FUNCTIONS.contains(&name.as_str())
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            _ => false,
        }
    }

    /// Every column referenced by this subtree, as `(table, name)` pairs.
    pub fn referenced_columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { table, name } => out.push((table.clone(), name.clone())),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.referenced_columns(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.referenced_columns(out);
                pattern.referenced_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            Expr::Literal(_) | Expr::Wildcard => {}
        }
    }

    /// Evaluate against a row. Aggregate calls are an error here — the
    /// planner must have rewritten them into column references first.
    pub fn eval(&self, row: &Row, schema: &Schema) -> Result<Value, SqlError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, name } => {
                let idx = schema.resolve(table.as_deref(), name)?;
                Ok(row[idx].clone())
            }
            Expr::Binary { left, op, right } => {
                eval_binary(left.eval(row, schema)?, *op, || right.eval(row, schema))
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(row, schema)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(SqlError::Execution(format!(
                            "cannot negate {other:?}"
                        ))),
                    },
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        Value::Null => Ok(Value::Null),
                        other => Err(SqlError::Execution(format!("cannot NOT {other:?}"))),
                    },
                }
            }
            Expr::Function { name, args } => {
                if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                    return Err(SqlError::Plan(format!(
                        "aggregate {name} not allowed in this context"
                    )));
                }
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(row, schema))
                    .collect::<Result<_, _>>()?;
                eval_scalar_function(name, &vals)
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row, schema)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                let p = pattern.eval(row, schema)?;
                match (&v, &p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Text(s), Value::Text(pat)) => {
                        Ok(Value::Bool(like_match(s, pat) != *negated))
                    }
                    _ => Err(SqlError::Execution("LIKE requires text operands".into())),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row, schema)?;
                    if iv.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.group_eq(&iv) {
                        return Ok(Value::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row, schema)?;
                let lo = low.eval(row, schema)?;
                let hi = high.eval(row, schema)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => {
                        let inside = a != std::cmp::Ordering::Less
                            && b != std::cmp::Ordering::Greater;
                        Ok(Value::Bool(inside != *negated))
                    }
                    _ => Ok(Value::Null),
                }
            }
            Expr::Wildcard => Err(SqlError::Plan("`*` is not a value expression".into())),
        }
    }
}

/// Evaluate a binary operation with SQL NULL semantics and short-circuiting
/// AND/OR. `right` is lazy so `false AND err()` does not error.
fn eval_binary(
    left: Value,
    op: BinOp,
    right: impl FnOnce() -> Result<Value, SqlError>,
) -> Result<Value, SqlError> {
    use std::cmp::Ordering;
    match op {
        BinOp::And => match left {
            Value::Bool(false) => Ok(Value::Bool(false)),
            Value::Bool(true) => match right()? {
                Value::Bool(b) => Ok(Value::Bool(b)),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("AND with {other:?}"))),
            },
            Value::Null => match right()? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                Value::Bool(true) | Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("AND with {other:?}"))),
            },
            other => Err(SqlError::Execution(format!("AND with {other:?}"))),
        },
        BinOp::Or => match left {
            Value::Bool(true) => Ok(Value::Bool(true)),
            Value::Bool(false) => match right()? {
                Value::Bool(b) => Ok(Value::Bool(b)),
                Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("OR with {other:?}"))),
            },
            Value::Null => match right()? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                Value::Bool(false) | Value::Null => Ok(Value::Null),
                other => Err(SqlError::Execution(format!("OR with {other:?}"))),
            },
            other => Err(SqlError::Execution(format!("OR with {other:?}"))),
        },
        BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let right = right()?;
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            let ord = left.sql_cmp(&right).ok_or_else(|| {
                SqlError::Execution(format!(
                    "cannot compare {:?} with {:?}",
                    left.data_type(),
                    right.data_type()
                ))
            })?;
            let b = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Neq => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let right = right()?;
            if left.is_null() || right.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation via `+` (convenient for Text-to-SQL output).
            if let (Value::Text(a), Value::Text(b), BinOp::Add) = (&left, &right, op) {
                return Ok(Value::Text(format!("{a}{b}")));
            }
            match (left.as_i64(), right.as_i64()) {
                (Some(a), Some(b)) => match op {
                    BinOp::Add => Ok(Value::Int(a.wrapping_add(b))),
                    BinOp::Sub => Ok(Value::Int(a.wrapping_sub(b))),
                    BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                    BinOp::Div => {
                        if b == 0 {
                            Err(SqlError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Int(a / b))
                        }
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            Err(SqlError::Execution("division by zero".into()))
                        } else {
                            Ok(Value::Int(a % b))
                        }
                    }
                    _ => unreachable!(),
                },
                _ => {
                    let a = left.as_f64().ok_or_else(|| {
                        SqlError::Execution(format!("arithmetic on {left:?}"))
                    })?;
                    let b = right.as_f64().ok_or_else(|| {
                        SqlError::Execution(format!("arithmetic on {right:?}"))
                    })?;
                    match op {
                        BinOp::Add => Ok(Value::Float(a + b)),
                        BinOp::Sub => Ok(Value::Float(a - b)),
                        BinOp::Mul => Ok(Value::Float(a * b)),
                        BinOp::Div => {
                            if b == 0.0 {
                                Err(SqlError::Execution("division by zero".into()))
                            } else {
                                Ok(Value::Float(a / b))
                            }
                        }
                        BinOp::Mod => {
                            if b == 0.0 {
                                Err(SqlError::Execution("division by zero".into()))
                            } else {
                                Ok(Value::Float(a % b))
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

/// Evaluate a scalar function.
pub fn eval_scalar_function(name: &str, args: &[Value]) -> Result<Value, SqlError> {
    let arity_err = |want: &str| {
        Err(SqlError::Execution(format!(
            "{name} expects {want} argument(s), got {}",
            args.len()
        )))
    };
    match name {
        "ABS" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("ABS requires a number".into())),
            _ => arity_err("1"),
        },
        "UPPER" => match args {
            [Value::Text(s)] => Ok(Value::Text(s.to_uppercase())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("UPPER requires text".into())),
            _ => arity_err("1"),
        },
        "LOWER" => match args {
            [Value::Text(s)] => Ok(Value::Text(s.to_lowercase())),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("LOWER requires text".into())),
            _ => arity_err("1"),
        },
        "LENGTH" => match args {
            [Value::Text(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [Value::Null] => Ok(Value::Null),
            [_] => Err(SqlError::Execution("LENGTH requires text".into())),
            _ => arity_err("1"),
        },
        "ROUND" => match args {
            [v] => match v.as_f64() {
                Some(f) => Ok(Value::Float(f.round())),
                None if v.is_null() => Ok(Value::Null),
                None => Err(SqlError::Execution("ROUND requires a number".into())),
            },
            [v, Value::Int(d)] => match v.as_f64() {
                Some(f) => {
                    let m = 10f64.powi(*d as i32);
                    Ok(Value::Float((f * m).round() / m))
                }
                None if v.is_null() => Ok(Value::Null),
                None => Err(SqlError::Execution("ROUND requires a number".into())),
            },
            _ => arity_err("1 or 2"),
        },
        "COALESCE" => {
            for v in args {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "SUBSTR" | "SUBSTRING" => match args {
            [Value::Text(s), Value::Int(start)] => {
                let start = (*start - 1).max(0) as usize;
                Ok(Value::Text(s.chars().skip(start).collect()))
            }
            [Value::Text(s), Value::Int(start), Value::Int(len)] => {
                let start = (*start - 1).max(0) as usize;
                let len = (*len).max(0) as usize;
                Ok(Value::Text(s.chars().skip(start).take(len).collect()))
            }
            [Value::Null, ..] => Ok(Value::Null),
            _ => arity_err("2 or 3"),
        },
        other => Err(SqlError::Execution(format!("unknown function {other}"))),
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (any single char),
/// case-sensitive.
///
/// Iterative two-pointer matcher with single-`%` backtracking: on a
/// mismatch we re-anchor at the most recent `%`, consuming one more text
/// character. Only the last `%` ever needs revisiting, so the worst case
/// is O(n·m) — unlike the naive recursive matcher, which is exponential
/// on patterns like `%a%a%a%…` — and no per-call allocation is needed.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let mut t = s.chars();
    let mut p = pattern.chars();
    // Resume state for the last `%`: (pattern after the `%`, text position
    // the `%` started absorbing from).
    let mut star: Option<(std::str::Chars, std::str::Chars)> = None;
    loop {
        let mut p_next = p.clone();
        match p_next.next() {
            Some('%') => {
                star = Some((p_next.clone(), t.clone()));
                p = p_next;
                continue;
            }
            Some(pc) => {
                let mut t_next = t.clone();
                if let Some(tc) = t_next.next() {
                    if pc == '_' || pc == tc {
                        p = p_next;
                        t = t_next;
                        continue;
                    }
                }
            }
            None => {
                if t.clone().next().is_none() {
                    return true;
                }
            }
        }
        // Mismatch: let the last `%` absorb one more character and retry.
        match &mut star {
            Some((sp, st)) => {
                if st.next().is_none() {
                    return false;
                }
                t = st.clone();
                p = sp.clone();
            }
            None => return false,
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized (chunk-at-a-time) evaluation.
// ---------------------------------------------------------------------------

/// A batch evaluation result: a full column, or an unexpanded scalar
/// (literals stay scalar so column⊗scalar kernels can specialise).
enum BVal {
    Col(ColumnVec),
    Scalar(Value),
}

impl BVal {
    fn into_column(self, n: usize) -> ColumnVec {
        match self {
            BVal::Col(c) => c,
            BVal::Scalar(v) => ColumnVec::from_values(vec![v; n]),
        }
    }

    fn value_at(&self, i: usize) -> Value {
        match self {
            BVal::Col(c) => c.value_at(i),
            BVal::Scalar(v) => v.clone(),
        }
    }

    fn is_null_at(&self, i: usize) -> bool {
        match self {
            BVal::Col(c) => c.is_null(i),
            BVal::Scalar(v) => v.is_null(),
        }
    }
}

/// Three-valued-logic class of one position of a boolean operand.
#[derive(Clone, Copy, PartialEq)]
enum Tri {
    False,
    True,
    Null,
    /// Non-boolean, non-NULL value (a type error for AND/OR).
    Other,
}

fn tri_at(v: &BVal, i: usize) -> Tri {
    match v {
        BVal::Col(ColumnVec::Bool { data, nulls }) => {
            if nulls.is_null(i) {
                Tri::Null
            } else if data[i] {
                Tri::True
            } else {
                Tri::False
            }
        }
        other => match other.value_at(i) {
            Value::Bool(true) => Tri::True,
            Value::Bool(false) => Tri::False,
            Value::Null => Tri::Null,
            _ => Tri::Other,
        },
    }
}

/// Map `op` over a comparison outcome.
#[inline]
fn cmp_result(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Neq => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!("cmp_result on non-comparison"),
    }
}

/// Mirror a comparison operator so `scalar op col` becomes `col op' scalar`.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn bool_col(data: Vec<bool>, nulls: NullMask) -> BVal {
    BVal::Col(ColumnVec::Bool {
        data: Arc::new(data),
        nulls,
    })
}

fn float_cmp_err() -> SqlError {
    // Same message the row path produces for an uncomparable float pair
    // (NaN reaches here only via overflow arithmetic).
    SqlError::Execution(format!(
        "cannot compare {:?} with {:?}",
        Some(crate::value::DataType::Float),
        Some(crate::value::DataType::Float)
    ))
}

impl Expr {
    /// Evaluate this expression over a chunk.
    ///
    /// `sel` optionally restricts evaluation to the given chunk row ids;
    /// the result is dense over `sel` (output position `k` corresponds to
    /// chunk row `sel[k]`). Without `sel`, the result aligns with the
    /// chunk. Semantics match [`Expr::eval`] applied row-by-row.
    pub fn eval_batch(
        &self,
        chunk: &Chunk,
        schema: &Schema,
        sel: Option<&[u32]>,
    ) -> Result<ColumnVec, SqlError> {
        let n = sel.map(|s| s.len()).unwrap_or(chunk.len);
        Ok(eval_bval(self, chunk, schema, sel)?.into_column(n))
    }
}

fn eval_bval(
    e: &Expr,
    chunk: &Chunk,
    schema: &Schema,
    sel: Option<&[u32]>,
) -> Result<BVal, SqlError> {
    let n = sel.map(|s| s.len()).unwrap_or(chunk.len);
    match e {
        Expr::Literal(v) => Ok(BVal::Scalar(v.clone())),
        Expr::Column { table, name } => {
            let idx = schema.resolve(table.as_deref(), name)?;
            let col = &chunk.columns[idx];
            Ok(BVal::Col(match sel {
                Some(s) => col.gather(s),
                None => col.clone(),
            }))
        }
        Expr::Binary { left, op, right } => match op {
            BinOp::And | BinOp::Or => {
                eval_logical_batch(left, *op, right, chunk, schema, sel, n)
            }
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let l = eval_bval(left, chunk, schema, sel)?;
                let r = eval_bval(right, chunk, schema, sel)?;
                eval_cmp_batch(&l, *op, &r, n)
            }
            _ => {
                let l = eval_bval(left, chunk, schema, sel)?;
                let r = eval_bval(right, chunk, schema, sel)?;
                generic_binary_batch(&l, *op, &r, n)
            }
        },
        Expr::Unary { op, expr } => {
            let v = eval_bval(expr, chunk, schema, sel)?;
            eval_unary_batch(*op, v, n)
        }
        Expr::Function { name, args } => {
            if AGGREGATE_FUNCTIONS.contains(&name.as_str()) {
                return Err(SqlError::Plan(format!(
                    "aggregate {name} not allowed in this context"
                )));
            }
            let arg_cols: Vec<BVal> = args
                .iter()
                .map(|a| eval_bval(a, chunk, schema, sel))
                .collect::<Result<_, _>>()?;
            let mut out = Vec::with_capacity(n);
            let mut scratch = Vec::with_capacity(arg_cols.len());
            for i in 0..n {
                scratch.clear();
                scratch.extend(arg_cols.iter().map(|c| c.value_at(i)));
                out.push(eval_scalar_function(name, &scratch)?);
            }
            Ok(BVal::Col(ColumnVec::from_values(out)))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_bval(expr, chunk, schema, sel)?;
            let data: Vec<bool> = (0..n).map(|i| v.is_null_at(i) != *negated).collect();
            Ok(bool_col(data, NullMask::new_valid(n)))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_bval(expr, chunk, schema, sel)?;
            let p = eval_bval(pattern, chunk, schema, sel)?;
            let mut data = vec![false; n];
            let mut nulls = NullMask::new_valid(n);
            // Fast path: text column against one scalar pattern.
            if let (BVal::Col(ColumnVec::Text { data: td, nulls: tn }), BVal::Scalar(pv)) =
                (&v, &p)
            {
                match pv {
                    Value::Null => {
                        for i in 0..n {
                            nulls.set_null(i);
                        }
                        return Ok(bool_col(data, nulls));
                    }
                    Value::Text(pat) => {
                        for (i, s) in td.iter().enumerate() {
                            if tn.is_null(i) {
                                nulls.set_null(i);
                            } else {
                                data[i] = like_match(s, pat) != *negated;
                            }
                        }
                        return Ok(bool_col(data, nulls));
                    }
                    _ => {}
                }
            }
            for (i, d) in data.iter_mut().enumerate() {
                match (v.value_at(i), p.value_at(i)) {
                    (Value::Null, _) | (_, Value::Null) => nulls.set_null(i),
                    (Value::Text(s), Value::Text(pat)) => {
                        *d = like_match(&s, &pat) != *negated;
                    }
                    _ => {
                        return Err(SqlError::Execution(
                            "LIKE requires text operands".into(),
                        ))
                    }
                }
            }
            Ok(bool_col(data, nulls))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => eval_in_list_batch(expr, list, *negated, chunk, schema, sel, n),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_bval(expr, chunk, schema, sel)?;
            let lo = eval_bval(low, chunk, schema, sel)?;
            let hi = eval_bval(high, chunk, schema, sel)?;
            let mut data = vec![false; n];
            let mut nulls = NullMask::new_valid(n);
            for (i, d) in data.iter_mut().enumerate() {
                let vv = v.value_at(i);
                match (vv.sql_cmp(&lo.value_at(i)), vv.sql_cmp(&hi.value_at(i))) {
                    (Some(a), Some(b)) => {
                        let inside = a != std::cmp::Ordering::Less
                            && b != std::cmp::Ordering::Greater;
                        *d = inside != *negated;
                    }
                    _ => nulls.set_null(i),
                }
            }
            Ok(bool_col(data, nulls))
        }
        Expr::Wildcard => Err(SqlError::Plan("`*` is not a value expression".into())),
    }
}

/// AND/OR with short-circuit laziness: the right operand is evaluated only
/// over rows where the row interpreter would evaluate it.
#[allow(clippy::too_many_arguments)]
fn eval_logical_batch(
    left: &Expr,
    op: BinOp,
    right: &Expr,
    chunk: &Chunk,
    schema: &Schema,
    sel: Option<&[u32]>,
    n: usize,
) -> Result<BVal, SqlError> {
    let l = eval_bval(left, chunk, schema, sel)?;
    let mut data = vec![false; n];
    let mut nulls = NullMask::new_valid(n);
    let mut need: Vec<u32> = Vec::new(); // chunk coordinates
    let mut need_pos: Vec<u32> = Vec::new(); // dense coordinates
    let mut bad: Option<SqlError> = None;
    for k in 0..n {
        let class = tri_at(&l, k);
        match (op, class) {
            (BinOp::And, Tri::False) => {}
            (BinOp::Or, Tri::True) => data[k] = true,
            (_, Tri::Other) => {
                // The row interpreter stops here; later rows are never
                // evaluated, so stop collecting `need` positions.
                bad = Some(SqlError::Execution(format!(
                    "{} with {:?}",
                    op.as_str(),
                    l.value_at(k)
                )));
                break;
            }
            _ => {
                need.push(match sel {
                    Some(s) => s[k],
                    None => k as u32,
                });
                need_pos.push(k as u32);
            }
        }
    }
    if !need.is_empty() {
        let r = eval_bval(right, chunk, schema, Some(&need))?;
        for (j, &k) in need_pos.iter().enumerate() {
            let k = k as usize;
            let lv = tri_at(&l, k);
            let rv = tri_at(&r, j);
            if rv == Tri::Other {
                return Err(SqlError::Execution(format!(
                    "{} with {:?}",
                    op.as_str(),
                    r.value_at(j)
                )));
            }
            match op {
                BinOp::And => match (lv, rv) {
                    (Tri::True, Tri::True) => data[k] = true,
                    (Tri::True, Tri::False) | (Tri::Null, Tri::False) => {}
                    _ => nulls.set_null(k),
                },
                BinOp::Or => match (lv, rv) {
                    (Tri::False, Tri::False) => {}
                    (Tri::False, Tri::True) | (Tri::Null, Tri::True) => data[k] = true,
                    _ => nulls.set_null(k),
                },
                _ => unreachable!(),
            }
        }
    }
    if let Some(e) = bad {
        return Err(e);
    }
    Ok(bool_col(data, nulls))
}

/// `expr IN (…)` with the row path's lazy item evaluation: each list item
/// is evaluated only for rows still unresolved after the previous items.
fn eval_in_list_batch(
    expr: &Expr,
    list: &[Expr],
    negated: bool,
    chunk: &Chunk,
    schema: &Schema,
    sel: Option<&[u32]>,
    n: usize,
) -> Result<BVal, SqlError> {
    let v = eval_bval(expr, chunk, schema, sel)?;
    let mut data = vec![false; n];
    let mut nulls = NullMask::new_valid(n);
    let mut saw_null = vec![false; n];
    let mut matched = vec![false; n];
    // (dense position, chunk coordinate) pairs still unresolved.
    let mut pending: Vec<(u32, u32)> = Vec::with_capacity(n);
    for k in 0..n {
        if v.is_null_at(k) {
            nulls.set_null(k);
        } else {
            pending.push((
                k as u32,
                match sel {
                    Some(s) => s[k],
                    None => k as u32,
                },
            ));
        }
    }
    for item in list {
        if pending.is_empty() {
            break;
        }
        let isel: Vec<u32> = pending.iter().map(|&(_, c)| c).collect();
        let icol = eval_bval(item, chunk, schema, Some(&isel))?;
        let mut next = Vec::with_capacity(pending.len());
        for (j, &(k, c)) in pending.iter().enumerate() {
            let iv = icol.value_at(j);
            if iv.is_null() {
                saw_null[k as usize] = true;
                next.push((k, c));
            } else if v.value_at(k as usize).group_eq(&iv) {
                matched[k as usize] = true;
            } else {
                next.push((k, c));
            }
        }
        pending = next;
    }
    for k in 0..n {
        if v.is_null_at(k) {
            continue; // already NULL
        }
        if matched[k] {
            data[k] = !negated;
        } else if saw_null[k] {
            nulls.set_null(k);
        } else {
            data[k] = negated;
        }
    }
    Ok(bool_col(data, nulls))
}

fn eval_unary_batch(op: UnOp, v: BVal, n: usize) -> Result<BVal, SqlError> {
    match (op, &v) {
        (UnOp::Neg, BVal::Col(ColumnVec::Int { data, nulls })) => {
            Ok(BVal::Col(ColumnVec::Int {
                data: Arc::new(data.iter().map(|&i| i.wrapping_neg()).collect()),
                nulls: nulls.clone(),
            }))
        }
        (UnOp::Neg, BVal::Col(ColumnVec::Float { data, nulls })) => {
            Ok(BVal::Col(ColumnVec::Float {
                data: Arc::new(data.iter().map(|&f| -f).collect()),
                nulls: nulls.clone(),
            }))
        }
        (UnOp::Not, BVal::Col(ColumnVec::Bool { data, nulls })) => {
            Ok(BVal::Col(ColumnVec::Bool {
                data: Arc::new(data.iter().map(|&b| !b).collect()),
                nulls: nulls.clone(),
            }))
        }
        _ => {
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let val = v.value_at(i);
                out.push(match op {
                    UnOp::Neg => match val {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Null => Value::Null,
                        other => {
                            return Err(SqlError::Execution(format!(
                                "cannot negate {other:?}"
                            )))
                        }
                    },
                    UnOp::Not => match val {
                        Value::Bool(b) => Value::Bool(!b),
                        Value::Null => Value::Null,
                        other => {
                            return Err(SqlError::Execution(format!("cannot NOT {other:?}")))
                        }
                    },
                });
            }
            Ok(BVal::Col(ColumnVec::from_values(out)))
        }
    }
}

/// Comparison kernels with typed fast paths; the generic tail defers to
/// [`eval_binary`] per row, so semantics cannot drift.
fn eval_cmp_batch(l: &BVal, op: BinOp, r: &BVal, n: usize) -> Result<BVal, SqlError> {
    use ColumnVec as C;
    // Normalise `scalar op col` to `col op' scalar`.
    if matches!((l, r), (BVal::Scalar(_), BVal::Col(_))) {
        return eval_cmp_batch(r, flip_cmp(op), l, n);
    }
    // NULL scalar operand: the whole result is NULL.
    if let BVal::Scalar(Value::Null) = r {
        let mut nulls = NullMask::new_valid(n);
        for i in 0..n {
            nulls.set_null(i);
        }
        return Ok(bool_col(vec![false; n], nulls));
    }
    match (l, r) {
        (BVal::Col(C::Int { data, nulls }), BVal::Scalar(Value::Int(b))) => {
            let mut out = vec![false; n];
            for (i, a) in data.iter().enumerate() {
                out[i] = cmp_result(op, a.cmp(b));
            }
            Ok(bool_col(out, nulls.clone()))
        }
        (BVal::Col(C::Int { data, nulls }), BVal::Scalar(Value::Float(b))) => {
            let mut out = vec![false; n];
            for (i, &a) in data.iter().enumerate() {
                match (a as f64).partial_cmp(b) {
                    Some(ord) => out[i] = cmp_result(op, ord),
                    None => {
                        if !nulls.is_null(i) {
                            return Err(float_cmp_err());
                        }
                    }
                }
            }
            Ok(bool_col(out, nulls.clone()))
        }
        (BVal::Col(C::Float { data, nulls }), BVal::Scalar(sv))
            if sv.as_f64().is_some() =>
        {
            let b = sv.as_f64().expect("checked numeric");
            let mut out = vec![false; n];
            for (i, a) in data.iter().enumerate() {
                match a.partial_cmp(&b) {
                    Some(ord) => out[i] = cmp_result(op, ord),
                    None => {
                        if !nulls.is_null(i) {
                            return Err(float_cmp_err());
                        }
                    }
                }
            }
            Ok(bool_col(out, nulls.clone()))
        }
        (BVal::Col(C::Text { data, nulls }), BVal::Scalar(Value::Text(b))) => {
            let mut out = vec![false; n];
            for (i, a) in data.iter().enumerate() {
                out[i] = cmp_result(op, a.as_str().cmp(b.as_str()));
            }
            Ok(bool_col(out, nulls.clone()))
        }
        (
            BVal::Col(C::Int { data: la, nulls: ln }),
            BVal::Col(C::Int { data: ra, nulls: rn }),
        ) => {
            let mut out = vec![false; n];
            let mut nulls = NullMask::new_valid(n);
            for i in 0..n {
                if ln.is_null(i) || rn.is_null(i) {
                    nulls.set_null(i);
                } else {
                    out[i] = cmp_result(op, la[i].cmp(&ra[i]));
                }
            }
            Ok(bool_col(out, nulls))
        }
        (
            BVal::Col(C::Float { data: la, nulls: ln }),
            BVal::Col(C::Float { data: ra, nulls: rn }),
        ) => {
            let mut out = vec![false; n];
            let mut nulls = NullMask::new_valid(n);
            for i in 0..n {
                if ln.is_null(i) || rn.is_null(i) {
                    nulls.set_null(i);
                } else {
                    match la[i].partial_cmp(&ra[i]) {
                        Some(ord) => out[i] = cmp_result(op, ord),
                        None => return Err(float_cmp_err()),
                    }
                }
            }
            Ok(bool_col(out, nulls))
        }
        _ => generic_binary_batch(l, op, r, n),
    }
}

/// Row-by-row fallback for binary operators: defers to [`eval_binary`] so
/// NULL/error semantics are exactly the row interpreter's.
fn generic_binary_batch(l: &BVal, op: BinOp, r: &BVal, n: usize) -> Result<BVal, SqlError> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let rv = r.value_at(i);
        out.push(eval_binary(l.value_at(i), op, || Ok(rv))?);
    }
    Ok(BVal::Col(ColumnVec::from_values(out)))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{t}.{name}"),
                None => f.write_str(name),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.as_str())
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("score", DataType::Float),
        ])
        .unwrap()
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(7),
            Value::Text("alice".into()),
            Value::Float(3.5),
        ])
    }

    fn eval(e: &Expr) -> Value {
        e.eval(&row(), &schema()).unwrap()
    }

    #[test]
    fn column_lookup() {
        assert_eq!(eval(&Expr::col("id")), Value::Int(7));
        assert_eq!(eval(&Expr::col("NAME")), Value::Text("alice".into()));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = Expr::binary(Expr::col("id"), BinOp::Add, Expr::lit(3i64));
        assert_eq!(eval(&e), Value::Int(10));
        let e = Expr::binary(Expr::col("score"), BinOp::Mul, Expr::lit(2i64));
        assert_eq!(eval(&e), Value::Float(7.0));
        let e = Expr::binary(Expr::lit(7i64), BinOp::Div, Expr::lit(2i64));
        assert_eq!(eval(&e), Value::Int(3));
        let e = Expr::binary(Expr::lit(7i64), BinOp::Mod, Expr::lit(4i64));
        assert_eq!(eval(&e), Value::Int(3));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::binary(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        assert!(e.eval(&row(), &schema()).is_err());
        let e = Expr::binary(Expr::lit(1.0), BinOp::Div, Expr::lit(0.0));
        assert!(e.eval(&row(), &schema()).is_err());
    }

    #[test]
    fn comparison_and_null_semantics() {
        let e = Expr::binary(Expr::col("id"), BinOp::Gt, Expr::lit(5i64));
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::binary(Expr::lit(Value::Null), BinOp::Eq, Expr::lit(1i64));
        assert_eq!(eval(&e), Value::Null);
    }

    #[test]
    fn and_or_short_circuit_and_three_valued() {
        // false AND <error> = false (short circuit).
        let err = Expr::binary(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        let e = Expr::binary(
            Expr::lit(false),
            BinOp::And,
            Expr::binary(err.clone(), BinOp::Eq, Expr::lit(1i64)),
        );
        assert_eq!(eval(&e), Value::Bool(false));
        // true OR <error> = true.
        let e = Expr::binary(
            Expr::lit(true),
            BinOp::Or,
            Expr::binary(err, BinOp::Eq, Expr::lit(1i64)),
        );
        assert_eq!(eval(&e), Value::Bool(true));
        // NULL AND false = false; NULL AND true = NULL.
        let null = Expr::lit(Value::Null);
        let null_bool = Expr::binary(null.clone(), BinOp::Eq, Expr::lit(1i64));
        let e = Expr::binary(null_bool.clone(), BinOp::And, Expr::lit(false));
        assert_eq!(eval(&e), Value::Bool(false));
        let e = Expr::binary(null_bool.clone(), BinOp::And, Expr::lit(true));
        assert_eq!(eval(&e), Value::Null);
        // NULL OR true = true.
        let e = Expr::binary(null_bool, BinOp::Or, Expr::lit(true));
        assert_eq!(eval(&e), Value::Bool(true));
    }

    #[test]
    fn like_matching() {
        assert!(like_match("alice", "a%"));
        assert!(like_match("alice", "%ice"));
        assert!(like_match("alice", "a_ice"));
        assert!(like_match("alice", "%li%"));
        assert!(!like_match("alice", "b%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn like_wildcard_combinations() {
        assert!(like_match("alice", "%"));
        assert!(like_match("alice", "%%%"));
        assert!(like_match("alice", "_____"));
        assert!(!like_match("alice", "______"));
        assert!(like_match("alice", "%_"));
        assert!(like_match("alice", "_%e"));
        assert!(!like_match("alice", "%x%"));
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        // Unicode text is matched per character, not per byte.
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "%é%"));
    }

    #[test]
    fn like_adversarial_patterns_stay_fast() {
        // Exponential blow-up cases for the old recursive matcher: a long
        // run of `a`s against stacked `%a` segments with a final mismatch.
        // The iterative matcher must answer (quickly) rather than hang.
        let text: String = "a".repeat(2000);
        let miss = format!("{}b", "%a".repeat(25));
        assert!(!like_match(&text, &miss));
        let hit = "%a".repeat(25);
        assert!(like_match(&text, &hit));
        // Many stars with single-char anchors.
        let pattern = format!("a%{}%a", "_%".repeat(20));
        assert!(like_match(&text, &pattern));
        // Backtracking must re-anchor correctly mid-pattern.
        assert!(like_match("abcabcabc", "%abc%abc"));
        assert!(!like_match("abcabcab", "%abc%abcx"));
        assert!(like_match("mississippi", "%iss%ipp%"));
        assert!(!like_match("mississippi", "%iss%ippx%"));
    }

    #[test]
    fn like_expr_and_negation() {
        let e = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::lit("al%")),
            negated: false,
        };
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: Box::new(Expr::lit("al%")),
            negated: true,
        };
        assert_eq!(eval(&e), Value::Bool(false));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let mk = |list: Vec<Expr>, negated| Expr::InList {
            expr: Box::new(Expr::col("id")),
            list,
            negated,
        };
        assert_eq!(
            eval(&mk(vec![Expr::lit(7i64), Expr::lit(9i64)], false)),
            Value::Bool(true)
        );
        assert_eq!(eval(&mk(vec![Expr::lit(9i64)], false)), Value::Bool(false));
        // Not found but NULL present → NULL.
        assert_eq!(
            eval(&mk(vec![Expr::lit(9i64), Expr::lit(Value::Null)], false)),
            Value::Null
        );
        assert_eq!(eval(&mk(vec![Expr::lit(9i64)], true)), Value::Bool(true));
    }

    #[test]
    fn between_inclusive() {
        let mk = |lo: i64, hi: i64, negated| Expr::Between {
            expr: Box::new(Expr::col("id")),
            low: Box::new(Expr::lit(lo)),
            high: Box::new(Expr::lit(hi)),
            negated,
        };
        assert_eq!(eval(&mk(7, 10, false)), Value::Bool(true));
        assert_eq!(eval(&mk(1, 7, false)), Value::Bool(true));
        assert_eq!(eval(&mk(8, 10, false)), Value::Bool(false));
        assert_eq!(eval(&mk(8, 10, true)), Value::Bool(true));
    }

    #[test]
    fn is_null_checks() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(Value::Null)),
            negated: false,
        };
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("id")),
            negated: true,
        };
        assert_eq!(eval(&e), Value::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_scalar_function("UPPER", &[Value::Text("ab".into())]).unwrap(),
            Value::Text("AB".into())
        );
        assert_eq!(
            eval_scalar_function("LENGTH", &[Value::Text("héllo".into())]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_scalar_function("ABS", &[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_scalar_function("ROUND", &[Value::Float(2.567), Value::Int(1)]).unwrap(),
            Value::Float(2.6)
        );
        assert_eq!(
            eval_scalar_function("COALESCE", &[Value::Null, Value::Int(3)]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar_function("SUBSTR", &[Value::Text("hello".into()), Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::Text("ell".into())
        );
        assert!(eval_scalar_function("NOPE", &[]).is_err());
        assert!(eval_scalar_function("UPPER", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn string_concat_with_plus() {
        let e = Expr::binary(Expr::lit("ab"), BinOp::Add, Expr::lit("cd"));
        assert_eq!(eval(&e), Value::Text("abcd".into()));
    }

    #[test]
    fn unary_ops() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(Expr::col("id")),
        };
        assert_eq!(eval(&e), Value::Int(-7));
        let e = Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::lit(true)),
        };
        assert_eq!(eval(&e), Value::Bool(false));
    }

    #[test]
    fn contains_aggregate_detection() {
        let agg = Expr::Function {
            name: "SUM".into(),
            args: vec![Expr::col("id")],
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::binary(Expr::lit(1i64), BinOp::Add, agg);
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("id").contains_aggregate());
        let scalar = Expr::Function {
            name: "UPPER".into(),
            args: vec![Expr::col("name")],
        };
        assert!(!scalar.contains_aggregate());
    }

    #[test]
    fn referenced_columns_walks_tree() {
        let e = Expr::binary(
            Expr::qcol("t", "a"),
            BinOp::Add,
            Expr::Function {
                name: "ABS".into(),
                args: vec![Expr::col("b")],
            },
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(
            cols,
            vec![
                (Some("t".to_string()), "a".to_string()),
                (None, "b".to_string())
            ]
        );
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::binary(Expr::col("a"), BinOp::And, Expr::lit(true));
        assert_eq!(e.to_string(), "(a AND true)");
        let e = Expr::lit("o'brien");
        assert_eq!(e.to_string(), "'o''brien'");
    }

    #[test]
    fn eval_aggregate_directly_errors() {
        let agg = Expr::Function {
            name: "COUNT".into(),
            args: vec![Expr::Wildcard],
        };
        assert!(agg.eval(&row(), &schema()).is_err());
    }
}
