//! Rows and row batches — the row-major data representation.
//!
//! [`Row`] is the engine's interchange format: DML, the row executor, and
//! [`crate::engine::QueryResult`] all traffic in rows. The vectorized
//! executor uses the column-major counterpart in [`crate::col`]
//! ([`crate::col::Chunk`]/[`crate::col::ColumnTable`]) internally and
//! converts back to rows at the result boundary.

use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::schema::SchemaRef;
use crate::value::Value;

/// One tuple of values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access (used by UPDATE).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Is the row empty?
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `idx`, if in range.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Concatenate two rows (join output).
    pub fn join(&self, right: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + right.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Row { values }
    }

    /// Consume into the inner vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row { values }
    }
}

/// A batch of rows sharing one schema — the unit that flows between
/// physical operators.
#[derive(Debug, Clone)]
pub struct RowBatch {
    /// Schema all rows conform to.
    pub schema: SchemaRef,
    /// The rows.
    pub rows: Vec<Row>,
}

impl RowBatch {
    /// Build a batch.
    pub fn new(schema: SchemaRef, rows: Vec<Row>) -> Self {
        RowBatch { schema, rows }
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        RowBatch {
            schema,
            rows: Vec::new(),
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;
    use std::sync::Arc;

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![Value::Int(1), Value::Text("x".into())]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r.get(1), Some(&Value::Text("x".into())));
        assert_eq!(r.get(2), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn row_join_concatenates() {
        let a = Row::new(vec![Value::Int(1)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(3)]);
        let j = a.join(&b);
        assert_eq!(j.values(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn row_mutation() {
        let mut r = Row::new(vec![Value::Int(1)]);
        r.values_mut()[0] = Value::Int(9);
        assert_eq!(r[0], Value::Int(9));
    }

    #[test]
    fn batch_construction() {
        let schema = Arc::new(
            Schema::new(vec![Column::new("id", DataType::Int)]).unwrap(),
        );
        let b = RowBatch::new(schema.clone(), vec![Row::new(vec![Value::Int(1)])]);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
        assert!(RowBatch::empty(schema).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let r = Row::new(vec![Value::Int(1), Value::Null, Value::Bool(true)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: Row = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
