//! Error type for the SQL engine.

use std::fmt;

/// Errors across the lex → parse → plan → execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexing failed (bad character, unterminated string, …).
    Lex(String),
    /// Parsing failed (unexpected token, malformed clause, …).
    Parse(String),
    /// Planning failed (unknown table/column, ambiguity, …).
    Plan(String),
    /// Execution failed (type mismatch, division by zero, …).
    Execution(String),
    /// A referenced table does not exist.
    TableNotFound(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist.
    ColumnNotFound(String),
    /// A value did not match the column's declared type.
    TypeMismatch {
        /// What the schema expects.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// CSV import/export failure.
    Csv(String),
    /// Paged-storage failure (I/O, checksum mismatch, pool exhaustion, …).
    Storage(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::Plan(m) => write!(f, "plan error: {m}"),
            SqlError::Execution(m) => write!(f, "execution error: {m}"),
            SqlError::TableNotFound(t) => write!(f, "table not found: {t}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            SqlError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            SqlError::Csv(m) => write!(f, "csv error: {m}"),
            SqlError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SqlError::TableNotFound("users".into())
            .to_string()
            .contains("users"));
        assert!(SqlError::TypeMismatch {
            expected: "INT".into(),
            found: "TEXT".into()
        }
        .to_string()
        .contains("INT"));
        assert!(SqlError::Lex("x".into()).to_string().starts_with("lex"));
        assert!(SqlError::Parse("x".into()).to_string().starts_with("parse"));
        assert!(SqlError::Plan("x".into()).to_string().starts_with("plan"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SqlError::Csv("bad".into()));
        assert!(e.to_string().contains("bad"));
    }
}
