//! SQL lexer.

use crate::error::SqlError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (kept verbatim; the parser matches keywords
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A single punctuation/operator token.
    Sym(Sym),
}

/// Operator / punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Lex `sql` into tokens. Comments (`-- …` to end of line) are skipped.
pub fn lex(sql: &str) -> Result<Vec<Tok>, SqlError> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Tok::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Tok::Sym(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Tok::Sym(Sym::Comma));
                i += 1;
            }
            ';' => {
                out.push(Tok::Sym(Sym::Semi));
                i += 1;
            }
            '*' => {
                out.push(Tok::Sym(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Tok::Sym(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Tok::Sym(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Tok::Sym(Sym::Slash));
                i += 1;
            }
            '%' => {
                out.push(Tok::Sym(Sym::Percent));
                i += 1;
            }
            '=' => {
                out.push(Tok::Sym(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym(Sym::Neq));
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        out.push(Tok::Sym(Sym::Le));
                        i += 2;
                    }
                    Some(b'>') => {
                        out.push(Tok::Sym(Sym::Neq));
                        i += 2;
                    }
                    _ => {
                        out.push(Tok::Sym(Sym::Lt));
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Sym(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Sym(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy a full UTF-8 char.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| SqlError::Lex("invalid utf-8".into()))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Tok::Str(s));
            }
            '"' | '`' => {
                // Quoted identifier.
                let quote = bytes[i];
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(SqlError::Lex("unterminated quoted identifier".into()));
                }
                let ident = std::str::from_utf8(&bytes[start..i])
                    .map_err(|_| SqlError::Lex("invalid utf-8".into()))?;
                out.push(Tok::Ident(ident.to_string()));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && bytes
                                .get(i + 1)
                                .map(|b| (*b as char).is_ascii_digit())
                                .unwrap_or(false)
                            && !is_float))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Tok::Float(text.parse().map_err(|_| {
                        SqlError::Lex(format!("bad float literal `{text}`"))
                    })?));
                } else {
                    out.push(Tok::Int(text.parse().map_err(|_| {
                        SqlError::Lex(format!("bad int literal `{text}`"))
                    })?));
                }
            }
            '.' => {
                out.push(Tok::Sym(Sym::Dot));
                i += 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i];
                    let ch_len = utf8_len(b);
                    if ch_len == 1 {
                        let c = b as char;
                        if c.is_ascii_alphanumeric() || c == '_' {
                            i += 1;
                            continue;
                        }
                        break;
                    }
                    // Multibyte (e.g. CJK) characters are valid identifier
                    // chars — some test fixtures use Chinese table names.
                    i += ch_len;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            c if !c.is_ascii() => {
                // A leading multibyte char also starts an identifier.
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i];
                    let ch_len = utf8_len(b);
                    if ch_len == 1 {
                        let ch = b as char;
                        if ch.is_ascii_alphanumeric() || ch == '_' {
                            i += 1;
                            continue;
                        }
                        break;
                    }
                    i += ch_len;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

/// Byte length of the UTF-8 char starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_basic_select() {
        let toks = lex("SELECT id, name FROM users WHERE id >= 10;").unwrap();
        assert_eq!(toks[0], Tok::Ident("SELECT".into()));
        assert!(toks.contains(&Tok::Sym(Sym::Comma)));
        assert!(toks.contains(&Tok::Sym(Sym::Ge)));
        assert!(toks.contains(&Tok::Int(10)));
        assert_eq!(*toks.last().unwrap(), Tok::Sym(Sym::Semi));
    }

    #[test]
    fn lex_string_with_escape() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(matches!(lex("'oops"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn lex_floats_and_ints() {
        let toks = lex("1 2.5 3.0 42").unwrap();
        assert_eq!(
            toks,
            vec![Tok::Int(1), Tok::Float(2.5), Tok::Float(3.0), Tok::Int(42)]
        );
    }

    #[test]
    fn lex_neq_variants() {
        assert_eq!(lex("a != b").unwrap()[1], Tok::Sym(Sym::Neq));
        assert_eq!(lex("a <> b").unwrap()[1], Tok::Sym(Sym::Neq));
    }

    #[test]
    fn lex_comments_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n, 2").unwrap();
        assert!(toks.contains(&Tok::Int(2)));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Ident(s) if s.contains("comment"))));
    }

    #[test]
    fn lex_qualified_column() {
        let toks = lex("t.id").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::Ident("t".into()),
                Tok::Sym(Sym::Dot),
                Tok::Ident("id".into())
            ]
        );
    }

    #[test]
    fn lex_quoted_identifiers() {
        assert_eq!(lex("\"Order Total\"").unwrap(), vec![Tok::Ident("Order Total".into())]);
        assert_eq!(lex("`weird`").unwrap(), vec![Tok::Ident("weird".into())]);
    }

    #[test]
    fn lex_cjk_identifier() {
        let toks = lex("SELECT * FROM 订单").unwrap();
        assert_eq!(*toks.last().unwrap(), Tok::Ident("订单".into()));
    }

    #[test]
    fn lex_cjk_string_literal() {
        assert_eq!(lex("'电子产品'").unwrap(), vec![Tok::Str("电子产品".into())]);
    }

    #[test]
    fn lex_arithmetic() {
        let toks = lex("1+2*3-4/5%6").unwrap();
        let syms: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Tok::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            vec![Sym::Plus, Sym::Star, Sym::Minus, Sym::Slash, Sym::Percent]
        );
    }

    #[test]
    fn lex_rejects_garbage() {
        assert!(lex("SELECT @").is_err());
    }

    #[test]
    fn lex_empty_is_empty() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t ").unwrap().is_empty());
    }
}
