//! Columnar storage: typed column vectors, null bitmaps, and row chunks.
//!
//! This is the storage half of the vectorized execution path (see
//! [`crate::exec::vectorized`]). Data is held column-major in fixed-size
//! chunks of [`CHUNK_ROWS`] rows: each chunk carries one [`ColumnVec`] per
//! schema column, and each column vector pairs a typed value buffer with a
//! [`NullMask`] bitmap. Value buffers live behind an `Arc`, so projecting
//! or re-batching columns is a pointer copy, not a data copy.
//!
//! The row-oriented representation ([`crate::row::Row`]) remains the
//! interchange format at the engine boundary; [`ColumnTable::from_rows`]
//! and [`Chunk::row`] convert between the two.

use std::sync::Arc;

use crate::row::Row;
use crate::value::{DataType, GroupKey, Value};

/// Rows per chunk. Small enough that a chunk's working set stays cache
/// resident during kernel loops, large enough to amortise dispatch.
pub const CHUNK_ROWS: usize = 1024;

/// A null bitmap: bit set ⇒ the value at that position is SQL NULL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
    nulls: usize,
}

impl NullMask {
    /// An all-valid mask over `len` positions.
    pub fn new_valid(len: usize) -> NullMask {
        NullMask {
            bits: vec![0; len.div_ceil(64)],
            len,
            nulls: 0,
        }
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the mask empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL positions.
    pub fn null_count(&self) -> usize {
        self.nulls
    }

    /// Does the mask contain any NULL at all? Kernels use this to pick
    /// the no-null fast loop.
    pub fn any_null(&self) -> bool {
        self.nulls > 0
    }

    /// Is position `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Mark position `i` NULL.
    pub fn set_null(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let word = &mut self.bits[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.nulls += 1;
        }
    }

    /// Append one position with the given nullness.
    pub fn push(&mut self, null: bool) {
        if self.len.is_multiple_of(64) {
            self.bits.push(0);
        }
        let i = self.len;
        self.len += 1;
        if null {
            self.bits[i / 64] |= 1u64 << (i % 64);
            self.nulls += 1;
        }
    }

    /// Mask containing `idx`-selected positions, in order.
    pub fn gather(&self, idx: &[u32]) -> NullMask {
        let mut out = NullMask::new_valid(idx.len());
        if self.any_null() {
            for (o, &i) in idx.iter().enumerate() {
                if self.is_null(i as usize) {
                    out.set_null(o);
                }
            }
        }
        out
    }
}

/// A typed vector of values with a null bitmap. `Any` is the escape hatch
/// for heterogeneous computed columns (e.g. `COALESCE` across types).
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// 64-bit integers.
    Int {
        /// Value buffer (positions under a set null bit hold 0).
        data: Arc<Vec<i64>>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// 64-bit floats.
    Float {
        /// Value buffer.
        data: Arc<Vec<f64>>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// Booleans.
    Bool {
        /// Value buffer.
        data: Arc<Vec<bool>>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// UTF-8 strings.
    Text {
        /// Value buffer.
        data: Arc<Vec<String>>,
        /// Null bitmap.
        nulls: NullMask,
    },
    /// Untyped fallback holding full [`Value`]s.
    Any(Vec<Value>),
}

impl ColumnVec {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { data, .. } => data.len(),
            ColumnVec::Float { data, .. } => data.len(),
            ColumnVec::Bool { data, .. } => data.len(),
            ColumnVec::Text { data, .. } => data.len(),
            ColumnVec::Any(v) => v.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The vector's uniform type, `None` for `Any`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            ColumnVec::Int { .. } => Some(DataType::Int),
            ColumnVec::Float { .. } => Some(DataType::Float),
            ColumnVec::Bool { .. } => Some(DataType::Bool),
            ColumnVec::Text { .. } => Some(DataType::Text),
            ColumnVec::Any(_) => None,
        }
    }

    /// Is position `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVec::Int { nulls, .. }
            | ColumnVec::Float { nulls, .. }
            | ColumnVec::Bool { nulls, .. }
            | ColumnVec::Text { nulls, .. } => nulls.is_null(i),
            ColumnVec::Any(v) => v[i].is_null(),
        }
    }

    /// The [`Value`] at position `i` (clones text).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Float(data[i])
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Bool(data[i])
                }
            }
            ColumnVec::Text { data, nulls } => {
                if nulls.is_null(i) {
                    Value::Null
                } else {
                    Value::Text(data[i].clone())
                }
            }
            ColumnVec::Any(v) => v[i].clone(),
        }
    }

    /// The [`GroupKey`] at position `i` (hashable; NULLs group together).
    pub fn group_key_at(&self, i: usize) -> GroupKey {
        match self {
            ColumnVec::Int { data, nulls } => {
                if nulls.is_null(i) {
                    GroupKey::Null
                } else {
                    GroupKey::Int(data[i])
                }
            }
            ColumnVec::Float { data, nulls } => {
                if nulls.is_null(i) {
                    GroupKey::Null
                } else {
                    GroupKey::Float(data[i].to_bits())
                }
            }
            ColumnVec::Bool { data, nulls } => {
                if nulls.is_null(i) {
                    GroupKey::Null
                } else {
                    GroupKey::Bool(data[i])
                }
            }
            ColumnVec::Text { data, nulls } => {
                if nulls.is_null(i) {
                    GroupKey::Null
                } else {
                    GroupKey::Text(data[i].clone())
                }
            }
            ColumnVec::Any(v) => v[i].group_key(),
        }
    }

    /// Build a typed vector from owned values, sniffing the narrowest
    /// uniform representation (falling back to `Any` on mixed types).
    pub fn from_values(values: Vec<Value>) -> ColumnVec {
        let ty = values
            .iter()
            .find_map(Value::data_type);
        let uniform = match ty {
            Some(t) => values
                .iter()
                .all(|v| v.is_null() || v.data_type() == Some(t)),
            None => false,
        };
        if !uniform {
            return ColumnVec::Any(values);
        }
        match ty.expect("uniform implies a type") {
            DataType::Int => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullMask::new_valid(0);
                for v in &values {
                    match v {
                        Value::Int(i) => {
                            data.push(*i);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(0);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Int {
                    data: Arc::new(data),
                    nulls,
                }
            }
            DataType::Float => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullMask::new_valid(0);
                for v in &values {
                    match v {
                        Value::Float(f) => {
                            data.push(*f);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(0.0);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Float {
                    data: Arc::new(data),
                    nulls,
                }
            }
            DataType::Bool => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullMask::new_valid(0);
                for v in &values {
                    match v {
                        Value::Bool(b) => {
                            data.push(*b);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(false);
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Bool {
                    data: Arc::new(data),
                    nulls,
                }
            }
            DataType::Text => {
                let mut data = Vec::with_capacity(values.len());
                let mut nulls = NullMask::new_valid(0);
                for v in values {
                    match v {
                        Value::Text(s) => {
                            data.push(s);
                            nulls.push(false);
                        }
                        _ => {
                            data.push(String::new());
                            nulls.push(true);
                        }
                    }
                }
                ColumnVec::Text {
                    data: Arc::new(data),
                    nulls,
                }
            }
        }
    }

    /// Append one value, widening to `Any` if the type does not fit.
    pub fn push_value(&mut self, v: &Value) {
        match (&mut *self, v) {
            (ColumnVec::Int { data, nulls }, Value::Int(i)) => {
                Arc::make_mut(data).push(*i);
                nulls.push(false);
            }
            (ColumnVec::Int { data, nulls }, Value::Null) => {
                Arc::make_mut(data).push(0);
                nulls.push(true);
            }
            (ColumnVec::Float { data, nulls }, Value::Float(f)) => {
                Arc::make_mut(data).push(*f);
                nulls.push(false);
            }
            (ColumnVec::Float { data, nulls }, Value::Null) => {
                Arc::make_mut(data).push(0.0);
                nulls.push(true);
            }
            (ColumnVec::Bool { data, nulls }, Value::Bool(b)) => {
                Arc::make_mut(data).push(*b);
                nulls.push(false);
            }
            (ColumnVec::Bool { data, nulls }, Value::Null) => {
                Arc::make_mut(data).push(false);
                nulls.push(true);
            }
            (ColumnVec::Text { data, nulls }, Value::Text(s)) => {
                Arc::make_mut(data).push(s.clone());
                nulls.push(false);
            }
            (ColumnVec::Text { data, nulls }, Value::Null) => {
                Arc::make_mut(data).push(String::new());
                nulls.push(true);
            }
            (ColumnVec::Any(vals), v) => vals.push(v.clone()),
            (typed, v) => {
                // Type clash: degrade to Any.
                let mut vals: Vec<Value> =
                    (0..typed.len()).map(|i| typed.value_at(i)).collect();
                vals.push(v.clone());
                *typed = ColumnVec::Any(vals);
            }
        }
    }

    /// New vector containing `idx`-selected positions, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Int { data, nulls } => ColumnVec::Int {
                data: Arc::new(idx.iter().map(|&i| data[i as usize]).collect()),
                nulls: nulls.gather(idx),
            },
            ColumnVec::Float { data, nulls } => ColumnVec::Float {
                data: Arc::new(idx.iter().map(|&i| data[i as usize]).collect()),
                nulls: nulls.gather(idx),
            },
            ColumnVec::Bool { data, nulls } => ColumnVec::Bool {
                data: Arc::new(idx.iter().map(|&i| data[i as usize]).collect()),
                nulls: nulls.gather(idx),
            },
            ColumnVec::Text { data, nulls } => ColumnVec::Text {
                data: Arc::new(idx.iter().map(|&i| data[i as usize].clone()).collect()),
                nulls: nulls.gather(idx),
            },
            ColumnVec::Any(v) => {
                ColumnVec::Any(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Concatenate vectors (used when re-batching joins/sorts).
    pub fn concat(parts: &[&ColumnVec]) -> ColumnVec {
        let mut values = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            for i in 0..p.len() {
                values.push(p.value_at(i));
            }
        }
        ColumnVec::from_values(values)
    }

    /// An empty vector for the given declared type.
    pub fn empty(ty: DataType) -> ColumnVec {
        match ty {
            DataType::Int => ColumnVec::Int {
                data: Arc::new(Vec::new()),
                nulls: NullMask::new_valid(0),
            },
            DataType::Float => ColumnVec::Float {
                data: Arc::new(Vec::new()),
                nulls: NullMask::new_valid(0),
            },
            DataType::Bool => ColumnVec::Bool {
                data: Arc::new(Vec::new()),
                nulls: NullMask::new_valid(0),
            },
            DataType::Text => ColumnVec::Text {
                data: Arc::new(Vec::new()),
                nulls: NullMask::new_valid(0),
            },
        }
    }
}

/// A batch of up to [`CHUNK_ROWS`] rows stored column-major.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// One vector per schema column, all of length `len`.
    pub columns: Vec<ColumnVec>,
    /// Row count (kept explicitly so zero-column chunks still have
    /// cardinality, e.g. `SELECT 1`-style VALUES plans).
    pub len: usize,
}

impl Chunk {
    /// A chunk with no columns and `len` rows.
    pub fn zero_width(len: usize) -> Chunk {
        Chunk {
            columns: Vec::new(),
            len,
        }
    }

    /// Build from columns (all must share a length unless empty).
    pub fn new(columns: Vec<ColumnVec>, len: usize) -> Chunk {
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Chunk { columns, len }
    }

    /// Is the chunk empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i` materialised as a [`Row`].
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value_at(i)).collect())
    }

    /// Chunk keeping only `cols`-selected columns (pointer copies).
    pub fn project(&self, cols: &[usize]) -> Chunk {
        Chunk {
            columns: cols.iter().map(|&c| self.columns[c].clone()).collect(),
            len: self.len,
        }
    }

    /// Chunk keeping only `idx`-selected rows, in order.
    pub fn gather(&self, idx: &[u32]) -> Chunk {
        Chunk {
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            len: idx.len(),
        }
    }
}

/// Column-chunked storage for a catalog table: the cached columnar mirror
/// of `Table::rows`, rebuilt lazily after mutation (like hash indexes).
#[derive(Debug, Clone, Default)]
pub struct ColumnTable {
    chunks: Vec<Chunk>,
    rows: usize,
}

impl ColumnTable {
    /// Build from row storage.
    pub fn from_rows(rows: &[Row], width: usize) -> ColumnTable {
        let mut t = ColumnTable::default();
        for chunk_rows in rows.chunks(CHUNK_ROWS.max(1)) {
            let mut columns = Vec::with_capacity(width);
            for c in 0..width {
                columns.push(ColumnVec::from_values(
                    chunk_rows.iter().map(|r| r[c].clone()).collect(),
                ));
            }
            t.chunks.push(Chunk::new(columns, chunk_rows.len()));
            t.rows += chunk_rows.len();
        }
        t
    }

    /// The chunks, in row order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Consume the table, yielding its chunks.
    pub fn into_chunks(self) -> Vec<Chunk> {
        self.chunks
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row, opening a new chunk when the tail chunk is full.
    pub fn append_row(&mut self, row: &Row) {
        let need_new = match self.chunks.last() {
            Some(c) => c.len >= CHUNK_ROWS,
            None => true,
        };
        if need_new {
            self.chunks.push(Chunk::new(
                row.values()
                    .iter()
                    .map(|v| match v.data_type() {
                        Some(t) => ColumnVec::empty(t),
                        None => ColumnVec::Any(Vec::new()),
                    })
                    .collect(),
                0,
            ));
        }
        let tail = self.chunks.last_mut().expect("tail chunk exists");
        for (col, v) in tail.columns.iter_mut().zip(row.values()) {
            col.push_value(v);
        }
        tail.len += 1;
        self.rows += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_mask_bits() {
        let mut m = NullMask::new_valid(100);
        assert!(!m.any_null());
        m.set_null(0);
        m.set_null(64);
        m.set_null(64); // idempotent
        assert!(m.is_null(0));
        assert!(m.is_null(64));
        assert!(!m.is_null(1));
        assert_eq!(m.null_count(), 2);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn null_mask_push_crosses_words() {
        let mut m = NullMask::new_valid(0);
        for i in 0..130 {
            m.push(i % 3 == 0);
        }
        assert_eq!(m.len(), 130);
        assert!(m.is_null(0));
        assert!(!m.is_null(1));
        assert!(m.is_null(129));
        assert_eq!(m.null_count(), 44);
    }

    #[test]
    fn from_values_sniffs_types() {
        let c = ColumnVec::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.data_type(), Some(DataType::Int));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(c.is_null(1));
        assert_eq!(c.value_at(2), Value::Int(3));

        let c = ColumnVec::from_values(vec![Value::Text("a".into()), Value::Null]);
        assert_eq!(c.data_type(), Some(DataType::Text));

        let c = ColumnVec::from_values(vec![Value::Int(1), Value::Text("a".into())]);
        assert_eq!(c.data_type(), None); // mixed → Any
        assert_eq!(c.value_at(1), Value::Text("a".into()));

        let c = ColumnVec::from_values(vec![Value::Null, Value::Null]);
        assert_eq!(c.data_type(), None);
        assert!(c.is_null(0));
    }

    #[test]
    fn push_value_widens_on_type_clash() {
        let mut c = ColumnVec::from_values(vec![Value::Int(1)]);
        c.push_value(&Value::Null);
        c.push_value(&Value::Int(2));
        assert_eq!(c.data_type(), Some(DataType::Int));
        c.push_value(&Value::Text("x".into()));
        assert_eq!(c.data_type(), None);
        assert_eq!(c.len(), 4);
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(c.is_null(1));
        assert_eq!(c.value_at(3), Value::Text("x".into()));
    }

    #[test]
    fn gather_preserves_values_and_nulls() {
        let c = ColumnVec::from_values(vec![
            Value::Int(10),
            Value::Null,
            Value::Int(30),
            Value::Int(40),
        ]);
        let g = c.gather(&[3, 1, 0]);
        assert_eq!(g.value_at(0), Value::Int(40));
        assert!(g.is_null(1));
        assert_eq!(g.value_at(2), Value::Int(10));
    }

    #[test]
    fn group_keys_match_value_group_keys() {
        let vals = vec![
            Value::Float(1.5),
            Value::Null,
            Value::Float(0.0),
        ];
        let c = ColumnVec::from_values(vals.clone());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(c.group_key_at(i), v.group_key());
        }
    }

    #[test]
    fn column_table_chunks_and_appends() {
        let rows: Vec<Row> = (0..(CHUNK_ROWS + 10))
            .map(|i| Row::new(vec![Value::Int(i as i64), Value::Text(format!("r{i}"))]))
            .collect();
        let mut t = ColumnTable::from_rows(&rows, 2);
        assert_eq!(t.rows(), CHUNK_ROWS + 10);
        assert_eq!(t.chunks().len(), 2);
        assert_eq!(t.chunks()[0].len, CHUNK_ROWS);
        assert_eq!(t.chunks()[1].len, 10);
        assert_eq!(t.chunks()[1].row(3), rows[CHUNK_ROWS + 3]);

        t.append_row(&Row::new(vec![Value::Null, Value::Text("tail".into())]));
        assert_eq!(t.rows(), CHUNK_ROWS + 11);
        let last = t.chunks().last().unwrap();
        assert!(last.columns[0].is_null(last.len - 1));
        assert_eq!(
            last.columns[1].value_at(last.len - 1),
            Value::Text("tail".into())
        );
    }

    #[test]
    fn chunk_projection_and_row_roundtrip() {
        let rows = vec![
            Row::new(vec![Value::Int(1), Value::Bool(true), Value::Float(0.5)]),
            Row::new(vec![Value::Int(2), Value::Null, Value::Float(1.5)]),
        ];
        let t = ColumnTable::from_rows(&rows, 3);
        let chunk = &t.chunks()[0];
        assert_eq!(chunk.row(1), rows[1]);
        let p = chunk.project(&[2, 0]);
        assert_eq!(p.row(0), Row::new(vec![Value::Float(0.5), Value::Int(1)]));
        let g = chunk.gather(&[1]);
        assert_eq!(g.row(0), rows[1]);
    }

    #[test]
    fn zero_width_chunks_keep_cardinality() {
        let c = Chunk::zero_width(5);
        assert_eq!(c.len, 5);
        assert!(!c.is_empty());
        assert_eq!(c.row(0), Row::default());
    }
}
