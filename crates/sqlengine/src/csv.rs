//! CSV import/export — the substrate for Chat2Excel.
//!
//! DB-GPT's chat2excel ingests spreadsheets into a queryable table. This
//! module parses CSV text (quoted fields, embedded commas/newlines,
//! doubled-quote escapes), infers column types from the data, and registers
//! the result as a table.

use crate::catalog::Database;
use crate::error::SqlError;
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};

/// Parse CSV text into a header row and data records.
pub fn parse_csv(text: &str) -> Result<(Vec<String>, Vec<Vec<String>>), SqlError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallow; \n terminates
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(SqlError::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if records.is_empty() {
        return Err(SqlError::Csv("empty csv".into()));
    }
    let header = records.remove(0);
    let width = header.len();
    for (i, r) in records.iter().enumerate() {
        if r.len() != width {
            return Err(SqlError::Csv(format!(
                "row {} has {} fields, expected {width}",
                i + 2,
                r.len()
            )));
        }
    }
    Ok((header, records))
}

/// Infer the narrowest type that fits every (non-empty) value in a column.
pub fn infer_type(values: &[&str]) -> DataType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut any = false;
    for v in values {
        let v = v.trim();
        if v.is_empty() {
            continue;
        }
        any = true;
        if v.parse::<i64>().is_err() {
            all_int = false;
        }
        if v.parse::<f64>().is_err() {
            all_float = false;
        }
        if !v.eq_ignore_ascii_case("true") && !v.eq_ignore_ascii_case("false") {
            all_bool = false;
        }
    }
    if !any {
        return DataType::Text;
    }
    if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else if all_bool {
        DataType::Bool
    } else {
        DataType::Text
    }
}

/// Convert one CSV cell into a typed value (empty → NULL).
fn cell_to_value(cell: &str, ty: DataType) -> Value {
    let cell = cell.trim();
    if cell.is_empty() {
        return Value::Null;
    }
    match ty {
        DataType::Int => cell.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        DataType::Float => cell.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        // Strict like the Int/Float arms: only `true`/`false` (any case)
        // parse; junk such as "yes" becomes NULL rather than `false`.
        DataType::Bool => {
            if cell.eq_ignore_ascii_case("true") {
                Value::Bool(true)
            } else if cell.eq_ignore_ascii_case("false") {
                Value::Bool(false)
            } else {
                Value::Null
            }
        }
        DataType::Text => Value::Text(cell.to_string()),
    }
}

/// Load CSV text into `db` as table `name` (replacing any existing table).
/// Returns the number of rows loaded.
pub fn load_csv(db: &mut Database, name: &str, text: &str) -> Result<usize, SqlError> {
    let (header, records) = parse_csv(text)?;
    // Sanitize header names into identifiers.
    let col_names: Vec<String> = header
        .iter()
        .map(|h| {
            let cleaned: String = h
                .trim()
                .chars()
                .map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' })
                .collect();
            if cleaned.is_empty() {
                "col".to_string()
            } else {
                cleaned.to_lowercase()
            }
        })
        .collect();
    let mut types = Vec::with_capacity(col_names.len());
    for i in 0..col_names.len() {
        let column: Vec<&str> = records.iter().map(|r| r[i].as_str()).collect();
        types.push(infer_type(&column));
    }
    let mut columns = Vec::with_capacity(col_names.len());
    for (n, t) in col_names.iter().zip(&types) {
        columns.push(Column::new(n.clone(), *t));
    }
    db.drop_table(name, true)?;
    db.create_table(name, Schema::new(columns)?, false)?;
    let table = db.table_mut(name)?;
    // One bulk append instead of per-row inserts: a single validation +
    // index/columnar maintenance pass over the whole file.
    let rows: Vec<Vec<Value>> = records
        .iter()
        .map(|r| {
            r.iter()
                .zip(&types)
                .map(|(c, t)| cell_to_value(c, *t))
                .collect()
        })
        .collect();
    table.insert_rows(rows)
}

/// Export a table back to CSV text.
pub fn export_csv(db: &Database, name: &str) -> Result<String, SqlError> {
    let t = db.table(name)?;
    let mut out = String::new();
    let header: Vec<&str> = t.schema.columns().iter().map(|c| c.name.as_str()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    t.for_each_row(|row| {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Text(s) if s.contains(',') || s.contains('"') || s.contains('\n') => {
                    format!("\"{}\"", s.replace('"', "\"\""))
                }
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
        Ok(())
    })?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "id,name,amount,active\n1,alice,10.5,true\n2,bob,20,false\n3,\"smith, jr\",30.25,true\n";

    #[test]
    fn parse_basic() {
        let (h, r) = parse_csv(SAMPLE).unwrap();
        assert_eq!(h, vec!["id", "name", "amount", "active"]);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2][1], "smith, jr");
    }

    #[test]
    fn parse_quoted_newline_and_escape() {
        let (_, r) = parse_csv("a,b\n\"line1\nline2\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(r[0][0], "line1\nline2");
        assert_eq!(r[0][1], "say \"hi\"");
    }

    #[test]
    fn parse_rejects_ragged_rows() {
        assert!(parse_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(parse_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn parse_handles_crlf() {
        let (h, r) = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(h, vec!["a", "b"]);
        assert_eq!(r[0], vec!["1", "2"]);
    }

    #[test]
    fn type_inference() {
        assert_eq!(infer_type(&["1", "2"]), DataType::Int);
        assert_eq!(infer_type(&["1", "2.5"]), DataType::Float);
        assert_eq!(infer_type(&["true", "FALSE"]), DataType::Bool);
        assert_eq!(infer_type(&["1", "x"]), DataType::Text);
        assert_eq!(infer_type(&["", ""]), DataType::Text);
        assert_eq!(infer_type(&["1", ""]), DataType::Int); // blanks = NULLs
    }

    #[test]
    fn bool_cells_parse_strictly() {
        // Pre-fix, any non-"true" junk silently became Bool(false).
        assert_eq!(cell_to_value("true", DataType::Bool), Value::Bool(true));
        assert_eq!(cell_to_value("FALSE", DataType::Bool), Value::Bool(false));
        assert_eq!(cell_to_value("yes", DataType::Bool), Value::Null);
        assert_eq!(cell_to_value("no", DataType::Bool), Value::Null);
        assert_eq!(cell_to_value("1", DataType::Bool), Value::Null);
        assert_eq!(cell_to_value("", DataType::Bool), Value::Null);
    }

    #[test]
    fn load_and_query() {
        let mut db = Database::new();
        let n = load_csv(&mut db, "sheet", SAMPLE).unwrap();
        assert_eq!(n, 3);
        let t = db.table("sheet").unwrap();
        assert_eq!(t.schema.columns()[0].data_type, DataType::Int);
        assert_eq!(t.schema.columns()[2].data_type, DataType::Float);
        assert_eq!(t.schema.columns()[3].data_type, DataType::Bool);
        assert_eq!(t.rows[1][2], Value::Float(20.0));
    }

    #[test]
    fn load_sanitizes_headers() {
        let mut db = Database::new();
        load_csv(&mut db, "s", "Order ID,Total $\n1,2\n").unwrap();
        let t = db.table("s").unwrap();
        assert_eq!(t.schema.columns()[0].name, "order_id");
        assert_eq!(t.schema.columns()[1].name, "total__");
    }

    #[test]
    fn load_replaces_existing() {
        let mut db = Database::new();
        load_csv(&mut db, "s", "a\n1\n").unwrap();
        load_csv(&mut db, "s", "b\nx\n").unwrap();
        let t = db.table("s").unwrap();
        assert_eq!(t.schema.columns()[0].name, "b");
    }

    #[test]
    fn export_roundtrip() {
        let mut db = Database::new();
        load_csv(&mut db, "s", SAMPLE).unwrap();
        let text = export_csv(&db, "s").unwrap();
        let mut db2 = Database::new();
        load_csv(&mut db2, "s2", &text).unwrap();
        let a = db.table("s").unwrap();
        let b = db2.table("s2").unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn empty_csv_rejected() {
        assert!(parse_csv("").is_err());
    }
}
