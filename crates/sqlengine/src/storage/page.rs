//! Fixed-size page format: header, slotted tuple layout, checksum, and the
//! row tuple codec.
//!
//! Layout of a page (all integers little-endian unless noted):
//!
//! ```text
//! [0..4)   u32  checksum   FNV-1a over bytes[4..], filled on disk write
//! [4]      u8   page type  Free=0 / Heap=1 / BTreeLeaf=2 / BTreeInternal=3
//! [5..9)   u32  next page  chain pointer (NO_PAGE = u32::MAX when none)
//! [9..11)  u16  slot count
//! [11..13) u16  free-space pointer (tuples grow down from the page end)
//! [13..)        slot array: (u16 offset, u16 len) per slot, growing up
//! ```
//!
//! Tuples are packed from the end of the page backward; the slot array grows
//! forward from the header. The page is full when they would meet.

use crate::error::SqlError;
use crate::value::Value;

/// Byte length of the fixed page header.
pub const HEADER_LEN: usize = 13;
/// Byte length of one slot-array entry (u16 offset + u16 len).
pub const SLOT_LEN: usize = 4;
/// Sentinel "no page" id for chain pointers.
pub const NO_PAGE: u32 = u32::MAX;
/// Smallest page size the codec supports (header + one slot + a tiny tuple).
pub const MIN_PAGE_SIZE: usize = 64;

/// What a page holds; stored in the header's type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// Unused / on the free list.
    Free,
    /// Table heap tuples.
    Heap,
    /// B+-tree leaf entries.
    BTreeLeaf,
    /// B+-tree internal (separator, child) entries.
    BTreeInternal,
}

impl PageType {
    fn to_byte(self) -> u8 {
        match self {
            PageType::Free => 0,
            PageType::Heap => 1,
            PageType::BTreeLeaf => 2,
            PageType::BTreeInternal => 3,
        }
    }

    fn from_byte(b: u8) -> Result<PageType, SqlError> {
        match b {
            0 => Ok(PageType::Free),
            1 => Ok(PageType::Heap),
            2 => Ok(PageType::BTreeLeaf),
            3 => Ok(PageType::BTreeInternal),
            other => Err(SqlError::Storage(format!("unknown page type byte {other}"))),
        }
    }
}

/// FNV-1a 32-bit hash — the page checksum function.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// An in-memory page image with slotted-tuple accessors.
#[derive(Debug, Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// A fresh, empty page of `page_size` bytes with the given type.
    pub fn new(page_size: usize, ty: PageType) -> Page {
        debug_assert!(page_size >= MIN_PAGE_SIZE && page_size <= u16::MAX as usize + 1);
        let mut p = Page {
            data: vec![0u8; page_size].into_boxed_slice(),
        };
        p.set_page_type(ty);
        p.set_next(NO_PAGE);
        p.set_slot_count(0);
        // Free pointer is one-past-the-end; stored as len-1-safe u16 by
        // capping page_size at 65536 and keeping the pointer < page_size
        // once any tuple lands. An empty page stores page_size-0 truncated:
        // we store (page_size - 1) + 1 semantics via u16 wrapping only when
        // page_size == 65536, which `set_free_ptr` handles below.
        p.set_free_ptr(page_size);
        p
    }

    /// Adopt a raw page image read from disk, verifying its checksum.
    pub fn from_bytes(data: Box<[u8]>, page_id: u32) -> Result<Page, SqlError> {
        if data.len() < MIN_PAGE_SIZE {
            return Err(SqlError::Storage(format!(
                "page {page_id}: image of {} bytes is below the minimum page size",
                data.len()
            )));
        }
        let stored = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        let actual = fnv1a(&data[4..]);
        if stored != actual {
            return Err(SqlError::Storage(format!(
                "page {page_id}: checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
            )));
        }
        PageType::from_byte(data[4])?;
        Ok(Page { data })
    }

    /// The page size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Raw page bytes (checksum field may be stale until [`Page::fill_checksum`]).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Recompute and store the checksum; call before writing to disk.
    pub fn fill_checksum(&mut self) {
        let sum = fnv1a(&self.data[4..]);
        self.data[0..4].copy_from_slice(&sum.to_le_bytes());
    }

    /// This page's type byte.
    pub fn page_type(&self) -> PageType {
        PageType::from_byte(self.data[4]).expect("in-memory page has a valid type byte")
    }

    /// Overwrite the type byte.
    pub fn set_page_type(&mut self, ty: PageType) {
        self.data[4] = ty.to_byte();
    }

    /// Chain pointer to the next page ([`NO_PAGE`] when none).
    pub fn next(&self) -> u32 {
        u32::from_le_bytes([self.data[5], self.data[6], self.data[7], self.data[8]])
    }

    /// Set the chain pointer.
    pub fn set_next(&mut self, next: u32) {
        self.data[5..9].copy_from_slice(&next.to_le_bytes());
    }

    /// Number of tuples stored in this page.
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[9], self.data[10]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[9..11].copy_from_slice(&n.to_le_bytes());
    }

    fn free_ptr(&self) -> usize {
        let raw = u16::from_le_bytes([self.data[11], self.data[12]]) as usize;
        // A 64 KiB page stores its initial one-past-the-end pointer as 0.
        if raw == 0 && self.slot_count() == 0 {
            self.data.len()
        } else {
            raw
        }
    }

    fn set_free_ptr(&mut self, p: usize) {
        let stored = if p == 65_536 { 0 } else { p as u16 };
        self.data[11..13].copy_from_slice(&stored.to_le_bytes());
    }

    /// Bytes still available for one more tuple plus its slot entry.
    pub fn free_space(&self) -> usize {
        let slots_end = HEADER_LEN + self.slot_count() as usize * SLOT_LEN;
        self.free_ptr().saturating_sub(slots_end)
    }

    /// Whether a tuple of `len` bytes (plus its slot entry) fits.
    pub fn can_fit(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_LEN
    }

    /// Append a tuple; returns its slot id or `None` when it does not fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if !self.can_fit(tuple.len()) || tuple.len() > u16::MAX as usize {
            return None;
        }
        let slot = self.slot_count();
        let start = self.free_ptr() - tuple.len();
        self.data[start..start + tuple.len()].copy_from_slice(tuple);
        let entry = HEADER_LEN + slot as usize * SLOT_LEN;
        self.data[entry..entry + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.data[entry + 2..entry + 4].copy_from_slice(&(tuple.len() as u16).to_le_bytes());
        self.set_free_ptr(start);
        self.set_slot_count(slot + 1);
        Some(slot)
    }

    /// The tuple bytes stored at `slot`, or `None` for an out-of-range slot.
    pub fn tuple(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let entry = HEADER_LEN + slot as usize * SLOT_LEN;
        let off = u16::from_le_bytes([self.data[entry], self.data[entry + 1]]) as usize;
        let len = u16::from_le_bytes([self.data[entry + 2], self.data[entry + 3]]) as usize;
        self.data.get(off..off + len)
    }

    /// Iterate every tuple in slot order.
    pub fn tuples(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.slot_count()).filter_map(move |s| self.tuple(s))
    }

    /// Reset to an empty page of the given type (keeps the allocation).
    pub fn reset(&mut self, ty: PageType) {
        self.data.fill(0);
        self.set_page_type(ty);
        self.set_next(NO_PAGE);
        self.set_slot_count(0);
        let size = self.data.len();
        self.set_free_ptr(size);
    }
}

// ---------------------------------------------------------------------------
// Row tuple codec
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Encode a row of values into the on-page tuple format:
/// `u16 ncols` then per value a tag byte and payload (i64 LE for Int, f64
/// bits LE for Float, `u32 len` + UTF-8 bytes for Text, u8 for Bool).
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + values.len() * 9);
    out.extend_from_slice(&(values.len() as u16).to_le_bytes());
    for v in values {
        match v {
            Value::Null => out.push(TAG_NULL),
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(TAG_FLOAT);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                out.push(TAG_TEXT);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(TAG_BOOL);
                out.push(*b as u8);
            }
        }
    }
    out
}

/// Decode a tuple produced by [`encode_row`].
pub fn decode_row(bytes: &[u8]) -> Result<Vec<Value>, SqlError> {
    let corrupt = |what: &str| SqlError::Storage(format!("corrupt tuple: {what}"));
    if bytes.len() < 2 {
        return Err(corrupt("missing column count"));
    }
    let ncols = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    let mut out = Vec::with_capacity(ncols);
    let mut pos = 2;
    for _ in 0..ncols {
        let tag = *bytes.get(pos).ok_or_else(|| corrupt("truncated tag"))?;
        pos += 1;
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let raw = bytes
                    .get(pos..pos + 8)
                    .ok_or_else(|| corrupt("truncated int"))?;
                pos += 8;
                Value::Int(i64::from_le_bytes(raw.try_into().expect("8-byte slice")))
            }
            TAG_FLOAT => {
                let raw = bytes
                    .get(pos..pos + 8)
                    .ok_or_else(|| corrupt("truncated float"))?;
                pos += 8;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    raw.try_into().expect("8-byte slice"),
                )))
            }
            TAG_TEXT => {
                let raw = bytes
                    .get(pos..pos + 4)
                    .ok_or_else(|| corrupt("truncated text length"))?;
                let len = u32::from_le_bytes(raw.try_into().expect("4-byte slice")) as usize;
                pos += 4;
                let s = bytes
                    .get(pos..pos + len)
                    .ok_or_else(|| corrupt("truncated text payload"))?;
                pos += len;
                Value::Text(
                    std::str::from_utf8(s)
                        .map_err(|_| corrupt("text payload is not UTF-8"))?
                        .to_string(),
                )
            }
            TAG_BOOL => {
                let b = *bytes.get(pos).ok_or_else(|| corrupt("truncated bool"))?;
                pos += 1;
                Value::Bool(b != 0)
            }
            other => return Err(corrupt(&format!("unknown value tag {other}"))),
        };
        out.push(v);
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes after last column"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_page_is_empty_and_typed() {
        let p = Page::new(256, PageType::Heap);
        assert_eq!(p.page_type(), PageType::Heap);
        assert_eq!(p.next(), NO_PAGE);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_space(), 256 - HEADER_LEN);
        assert_eq!(p.tuples().count(), 0);
    }

    #[test]
    fn insert_and_read_back_in_slot_order() {
        let mut p = Page::new(256, PageType::Heap);
        assert_eq!(p.insert(b"alpha"), Some(0));
        assert_eq!(p.insert(b"bb"), Some(1));
        assert_eq!(p.insert(b""), Some(2));
        assert_eq!(p.tuple(0).unwrap(), b"alpha");
        assert_eq!(p.tuple(1).unwrap(), b"bb");
        assert_eq!(p.tuple(2).unwrap(), b"");
        assert!(p.tuple(3).is_none());
        let all: Vec<&[u8]> = p.tuples().collect();
        assert_eq!(all, vec![&b"alpha"[..], &b"bb"[..], &b""[..]]);
    }

    #[test]
    fn insert_refuses_when_full() {
        let mut p = Page::new(MIN_PAGE_SIZE, PageType::Heap);
        let big = vec![7u8; MIN_PAGE_SIZE]; // larger than any free space
        assert_eq!(p.insert(&big), None);
        // Fill with small tuples until refusal; page must stay coherent.
        let mut n = 0;
        while p.insert(b"12345678").is_some() {
            n += 1;
        }
        assert!(n > 0);
        assert_eq!(p.slot_count() as usize, n);
        assert!(p.free_space() < 8 + SLOT_LEN);
        for s in 0..p.slot_count() {
            assert_eq!(p.tuple(s).unwrap(), b"12345678");
        }
    }

    #[test]
    fn checksum_round_trip_and_corruption_detection() {
        let mut p = Page::new(128, PageType::BTreeLeaf);
        p.insert(b"payload").unwrap();
        p.set_next(42);
        p.fill_checksum();
        let img = p.bytes().to_vec().into_boxed_slice();
        let back = Page::from_bytes(img, 7).unwrap();
        assert_eq!(back.page_type(), PageType::BTreeLeaf);
        assert_eq!(back.next(), 42);
        assert_eq!(back.tuple(0).unwrap(), b"payload");

        let mut bad = p.bytes().to_vec();
        bad[HEADER_LEN + SLOT_LEN] ^= 0xFF; // flip a data byte, not the checksum
        let err = Page::from_bytes(bad.into_boxed_slice(), 7).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn row_codec_round_trips_every_value_kind() {
        let rows = vec![
            vec![],
            vec![Value::Null],
            vec![
                Value::Int(i64::MIN),
                Value::Int(-1),
                Value::Int(i64::MAX),
                Value::Float(f64::NAN),
                Value::Float(-0.0),
                Value::Float(f64::INFINITY),
                Value::Bool(true),
                Value::Bool(false),
                Value::Text(String::new()),
                Value::Text("héllo, wörld".into()),
                Value::Null,
            ],
        ];
        for row in rows {
            let enc = encode_row(&row);
            let dec = decode_row(&enc).unwrap();
            assert_eq!(dec.len(), row.len());
            for (a, b) in row.iter().zip(&dec) {
                match (a, b) {
                    // NaN != NaN under PartialEq; compare bit patterns.
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn row_codec_rejects_truncation_and_junk() {
        let enc = encode_row(&[Value::Int(5), Value::Text("abc".into())]);
        for cut in 0..enc.len() {
            assert!(decode_row(&enc[..cut]).is_err(), "cut at {cut} accepted");
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(decode_row(&trailing).is_err());
        let mut bad_tag = enc;
        bad_tag[2] = 99;
        assert!(decode_row(&bad_tag).is_err());
    }
}
