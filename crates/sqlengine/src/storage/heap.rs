//! Table heap: an ordered chain of slotted heap pages plus an in-memory
//! page directory with cumulative row counts for ordinal addressing.
//!
//! Rows are addressed by **ordinal** — their 0-based position in insertion
//! order. Ordinals are what the B+-tree stores as postings; they stay stable
//! between rebuilds because UPDATE/DELETE rewrite the whole heap (and mark
//! indexes stale) rather than mutating in place.

use super::buffer::BufferPool;
use super::page::{decode_row, encode_row, PageType};
use crate::error::SqlError;
use crate::value::Value;

/// A paged table's row storage.
#[derive(Debug, Clone, Default)]
pub struct TableHeap {
    /// Page chain in order (also linked on-page via the `next` pointer).
    pages: Vec<u32>,
    /// `prefix[i]` = total rows in `pages[..=i]`.
    prefix: Vec<usize>,
}

impl TableHeap {
    /// An empty heap (no pages allocated yet).
    pub fn new() -> TableHeap {
        TableHeap::default()
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.prefix.last().copied().unwrap_or(0)
    }

    /// Whether the heap holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of heap pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Append one row; returns its ordinal.
    pub fn append_row(&mut self, pool: &mut BufferPool, values: &[Value]) -> Result<usize, SqlError> {
        let tuple = encode_row(values);
        let ordinal = self.len();
        if let Some(&last) = self.pages.last() {
            let fit = pool.with_page_mut(last, |p| p.insert(&tuple).is_some())?;
            if fit {
                *self.prefix.last_mut().expect("non-empty directory") += 1;
                return Ok(ordinal);
            }
        }
        let id = pool.allocate_page(PageType::Heap)?;
        let fit = pool.with_page_mut(id, |p| p.insert(&tuple).is_some())?;
        if !fit {
            pool.free_page(id)?;
            return Err(SqlError::Storage(format!(
                "row of {} bytes does not fit in a {}-byte page",
                tuple.len(),
                pool.page_size()
            )));
        }
        if let Some(&prev) = self.pages.last() {
            pool.with_page_mut(prev, |p| p.set_next(id))?;
        }
        self.pages.push(id);
        self.prefix.push(ordinal + 1);
        Ok(ordinal)
    }

    /// Decode every row of heap page `page_idx` (directory index, not page
    /// id) into a vector — one page's worth of bounded memory.
    pub fn read_page(
        &self,
        pool: &mut BufferPool,
        page_idx: usize,
    ) -> Result<Vec<Vec<Value>>, SqlError> {
        let id = self.pages[page_idx];
        pool.with_page(id, |p| {
            p.tuples().map(decode_row).collect::<Result<Vec<_>, _>>()
        })?
    }

    /// Stream every row in ordinal order through `f(ordinal, row)`. Pages
    /// are decoded one at a time, so resident memory stays bounded by the
    /// pool regardless of table size.
    pub fn scan(
        &self,
        pool: &mut BufferPool,
        mut f: impl FnMut(usize, Vec<Value>) -> Result<(), SqlError>,
    ) -> Result<(), SqlError> {
        let mut ordinal = 0;
        for i in 0..self.pages.len() {
            for row in self.read_page(pool, i)? {
                f(ordinal, row)?;
                ordinal += 1;
            }
        }
        Ok(())
    }

    /// Locate `ordinal` as (directory index, slot within page).
    fn locate(&self, ordinal: usize) -> Result<(usize, u16), SqlError> {
        if ordinal >= self.len() {
            return Err(SqlError::Storage(format!(
                "row ordinal {ordinal} out of range (heap has {} rows)",
                self.len()
            )));
        }
        let i = self.prefix.partition_point(|&p| p <= ordinal);
        let before = if i == 0 { 0 } else { self.prefix[i - 1] };
        Ok((i, (ordinal - before) as u16))
    }

    /// Fetch a single row by ordinal.
    pub fn get(&self, pool: &mut BufferPool, ordinal: usize) -> Result<Vec<Value>, SqlError> {
        let (i, slot) = self.locate(ordinal)?;
        pool.with_page(self.pages[i], |p| {
            p.tuple(slot)
                .ok_or_else(|| SqlError::Storage(format!("missing slot {slot} for ordinal {ordinal}")))
                .and_then(decode_row)
        })?
    }

    /// Fetch many rows by **ascending** ordinals, grouping page accesses so
    /// each needed page is pinned once.
    pub fn fetch_many(
        &self,
        pool: &mut BufferPool,
        ordinals: &[usize],
    ) -> Result<Vec<Vec<Value>>, SqlError> {
        debug_assert!(ordinals.windows(2).all(|w| w[0] <= w[1]));
        let mut out = Vec::with_capacity(ordinals.len());
        let mut k = 0;
        while k < ordinals.len() {
            let (i, first_slot) = self.locate(ordinals[k])?;
            let page_base = ordinals[k] - first_slot as usize;
            let page_rows = self.prefix[i] - page_base;
            let mut slots = Vec::new();
            while k < ordinals.len() && ordinals[k] < page_base + page_rows {
                slots.push((ordinals[k] - page_base) as u16);
                k += 1;
            }
            let rows = pool.with_page(self.pages[i], |p| {
                slots
                    .iter()
                    .map(|&s| {
                        p.tuple(s)
                            .ok_or_else(|| SqlError::Storage(format!("missing slot {s}")))
                            .and_then(decode_row)
                    })
                    .collect::<Result<Vec<_>, _>>()
            })??;
            out.extend(rows);
        }
        Ok(out)
    }

    /// Materialize every row (CSV export, fingerprinting, small tables).
    pub fn all_rows(&self, pool: &mut BufferPool) -> Result<Vec<Vec<Value>>, SqlError> {
        let mut out = Vec::with_capacity(self.len());
        self.scan(pool, |_, row| {
            out.push(row);
            Ok(())
        })?;
        Ok(out)
    }

    /// Release every heap page back to the pool's free list.
    pub fn free(&mut self, pool: &mut BufferPool) -> Result<(), SqlError> {
        for &id in &self.pages {
            pool.free_page(id)?;
        }
        self.pages.clear();
        self.prefix.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::disk::DiskManager;

    fn row(i: usize) -> Vec<Value> {
        vec![
            Value::Int(i as i64),
            Value::Text(format!("name-{i}")),
            Value::Float(i as f64 * 0.5),
        ]
    }

    fn setup(n: usize, pool_pages: usize) -> (BufferPool, TableHeap) {
        let mut pool = BufferPool::new(DiskManager::mem(128), pool_pages);
        let mut heap = TableHeap::new();
        for i in 0..n {
            assert_eq!(heap.append_row(&mut pool, &row(i)).unwrap(), i);
        }
        (pool, heap)
    }

    #[test]
    fn append_scan_round_trip_across_many_pages() {
        let (mut pool, heap) = setup(200, 4);
        assert_eq!(heap.len(), 200);
        assert!(heap.page_count() > 16, "128-byte pages must chain");
        let mut seen = 0;
        heap.scan(&mut pool, |ord, r| {
            assert_eq!(ord, seen);
            assert_eq!(r, row(ord));
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 200);
        // Residency stayed bounded the whole time.
        assert!(pool.max_resident() <= 4);
    }

    #[test]
    fn get_and_fetch_many_address_by_ordinal() {
        let (mut pool, heap) = setup(50, 4);
        assert_eq!(heap.get(&mut pool, 0).unwrap(), row(0));
        assert_eq!(heap.get(&mut pool, 49).unwrap(), row(49));
        assert!(heap.get(&mut pool, 50).is_err());
        let picks = [0usize, 1, 17, 23, 24, 49];
        let rows = heap.fetch_many(&mut pool, &picks).unwrap();
        for (o, r) in picks.iter().zip(&rows) {
            assert_eq!(r, &row(*o));
        }
    }

    #[test]
    fn oversized_row_is_rejected() {
        let mut pool = BufferPool::new(DiskManager::mem(128), 4);
        let mut heap = TableHeap::new();
        let huge = vec![Value::Text("x".repeat(500))];
        let err = heap.append_row(&mut pool, &huge).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
        // Heap unchanged; small rows still work.
        assert_eq!(heap.len(), 0);
        heap.append_row(&mut pool, &row(1)).unwrap();
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn free_returns_pages_for_reuse() {
        let (mut pool, mut heap) = setup(100, 4);
        let pages_before = heap.page_count();
        assert!(pages_before > 0);
        heap.free(&mut pool).unwrap();
        assert_eq!(heap.len(), 0);
        assert_eq!(heap.page_count(), 0);
        // A new heap reuses the freed ids instead of growing the disk.
        let mut h2 = TableHeap::new();
        for i in 0..100 {
            h2.append_row(&mut pool, &row(i)).unwrap();
        }
        assert_eq!(h2.all_rows(&mut pool).unwrap().len(), 100);
    }
}
