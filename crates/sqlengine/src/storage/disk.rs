//! Pluggable disk managers: a deterministic in-memory arm for tests and a
//! real file-backed arm.
//!
//! The manager hands out page ids and moves raw page images; checksums and
//! slotted layout live in [`crate::storage::page`], caching and eviction in
//! [`crate::storage::buffer`].

use crate::error::SqlError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Where pages live. An enum rather than a trait object so the buffer pool
/// (and `Database`) stay `Debug` + deep-clonable.
#[derive(Debug)]
pub enum DiskManager {
    /// Pages held in a `Vec` — deterministic, cheap, deep-clonable.
    Mem(MemDisk),
    /// Pages appended to a real file.
    File(FileDisk),
}

impl DiskManager {
    /// A fresh in-memory disk with the given page size.
    pub fn mem(page_size: usize) -> DiskManager {
        DiskManager::Mem(MemDisk {
            page_size,
            pages: Vec::new(),
        })
    }

    /// Open (creating if needed, truncating) a file-backed disk at `path`.
    pub fn file(path: &Path, page_size: usize) -> Result<DiskManager, SqlError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| SqlError::Storage(format!("open {}: {e}", path.display())))?;
        Ok(DiskManager::File(FileDisk {
            path: path.to_path_buf(),
            page_size,
            num_pages: 0,
            file,
        }))
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        match self {
            DiskManager::Mem(m) => m.page_size,
            DiskManager::File(f) => f.page_size,
        }
    }

    /// Number of pages ever allocated (the free list lives above this layer).
    pub fn num_pages(&self) -> u32 {
        match self {
            DiskManager::Mem(m) => m.pages.len() as u32,
            DiskManager::File(f) => f.num_pages,
        }
    }

    /// Extend the disk by one zeroed page; returns its id.
    pub fn allocate(&mut self) -> Result<u32, SqlError> {
        match self {
            DiskManager::Mem(m) => {
                let id = m.pages.len() as u32;
                m.pages.push(vec![0u8; m.page_size].into_boxed_slice());
                Ok(id)
            }
            DiskManager::File(f) => {
                let id = f.num_pages;
                let zeros = vec![0u8; f.page_size];
                f.write_at(id, &zeros)?;
                f.num_pages += 1;
                Ok(id)
            }
        }
    }

    /// Read page `id` into a fresh buffer.
    pub fn read(&mut self, id: u32) -> Result<Box<[u8]>, SqlError> {
        match self {
            DiskManager::Mem(m) => m
                .pages
                .get(id as usize)
                .cloned()
                .ok_or_else(|| SqlError::Storage(format!("read of unallocated page {id}"))),
            DiskManager::File(f) => {
                if id >= f.num_pages {
                    return Err(SqlError::Storage(format!("read of unallocated page {id}")));
                }
                let mut buf = vec![0u8; f.page_size];
                f.file
                    .seek(SeekFrom::Start(id as u64 * f.page_size as u64))
                    .and_then(|_| f.file.read_exact(&mut buf))
                    .map_err(|e| SqlError::Storage(format!("read page {id}: {e}")))?;
                Ok(buf.into_boxed_slice())
            }
        }
    }

    /// Write a full page image to page `id`.
    pub fn write(&mut self, id: u32, data: &[u8]) -> Result<(), SqlError> {
        debug_assert_eq!(data.len(), self.page_size());
        match self {
            DiskManager::Mem(m) => {
                let slot = m
                    .pages
                    .get_mut(id as usize)
                    .ok_or_else(|| SqlError::Storage(format!("write to unallocated page {id}")))?;
                slot.copy_from_slice(data);
                Ok(())
            }
            DiskManager::File(f) => {
                if id >= f.num_pages {
                    return Err(SqlError::Storage(format!("write to unallocated page {id}")));
                }
                f.write_at(id, data)
            }
        }
    }

    /// Deep copy. The `Mem` arm clones every page; the `File` arm reopens
    /// the same path, so clones alias the underlying file — callers that
    /// need isolated clones (e.g. `Database::clone`) must use `Mem`.
    pub fn deep_clone(&self) -> Result<DiskManager, SqlError> {
        match self {
            DiskManager::Mem(m) => Ok(DiskManager::Mem(MemDisk {
                page_size: m.page_size,
                pages: m.pages.clone(),
            })),
            DiskManager::File(f) => {
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(&f.path)
                    .map_err(|e| SqlError::Storage(format!("reopen {}: {e}", f.path.display())))?;
                Ok(DiskManager::File(FileDisk {
                    path: f.path.clone(),
                    page_size: f.page_size,
                    num_pages: f.num_pages,
                    file,
                }))
            }
        }
    }
}

/// In-memory page store.
#[derive(Debug)]
pub struct MemDisk {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

/// File-backed page store (page `i` lives at byte offset `i * page_size`).
#[derive(Debug)]
pub struct FileDisk {
    path: PathBuf,
    page_size: usize,
    num_pages: u32,
    file: File,
}

impl FileDisk {
    fn write_at(&mut self, id: u32, data: &[u8]) -> Result<(), SqlError> {
        self.file
            .seek(SeekFrom::Start(id as u64 * self.page_size as u64))
            .and_then(|_| self.file.write_all(data))
            .map_err(|e| SqlError::Storage(format!("write page {id}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut d: DiskManager) {
        assert_eq!(d.num_pages(), 0);
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(d.num_pages(), 2);

        let mut img = vec![0u8; d.page_size()];
        img[0] = 0xAB;
        img[d.page_size() - 1] = 0xCD;
        d.write(b, &img).unwrap();
        assert_eq!(&*d.read(b).unwrap(), &img[..]);
        // Page a stays zeroed.
        assert!(d.read(a).unwrap().iter().all(|&x| x == 0));
        // Out-of-range access errors instead of growing the disk.
        assert!(d.read(9).is_err());
        assert!(d.write(9, &img).is_err());
    }

    #[test]
    fn mem_disk_round_trips() {
        exercise(DiskManager::mem(128));
    }

    #[test]
    fn file_disk_round_trips() {
        let dir = std::env::temp_dir().join(format!("dbgpt_disk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        exercise(DiskManager::file(&path, 128).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mem_deep_clone_is_isolated() {
        let mut d = DiskManager::mem(64);
        let id = d.allocate().unwrap();
        let mut c = d.deep_clone().unwrap();
        let img = vec![9u8; 64];
        c.write(id, &img).unwrap();
        assert!(d.read(id).unwrap().iter().all(|&x| x == 0));
        assert_eq!(&*c.read(id).unwrap(), &img[..]);
    }
}
