//! Paged disk-backed storage for the SQL engine.
//!
//! The layer stack, bottom to top:
//! - [`page`]: fixed-size page format (header, slotted tuples, checksum)
//!   and the row tuple codec;
//! - [`disk`]: pluggable [`disk::DiskManager`] — deterministic in-memory
//!   arm and a real file-backed arm;
//! - [`buffer`]: bounded [`buffer::BufferPool`] with LRU-K eviction,
//!   pin/unpin accounting, and hit/miss/eviction/writeback counters;
//! - [`heap`]: [`heap::TableHeap`] page chains with ordinal addressing;
//! - [`btree`]: [`btree::BTreeIndex`] secondary indexes with ordered range
//!   scans.
//!
//! Selection happens through [`StorageConfig`] on `Engine`/`Database`; the
//! default [`StorageConfig::InMemory`] leaves the classic `Vec<Row>` path
//! byte-identical.

pub mod btree;
pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;

pub use btree::BTreeIndex;
pub use buffer::{BufferPool, PoolCounters, MIN_POOL_PAGES};
pub use disk::DiskManager;
pub use heap::TableHeap;
pub use page::{Page, PageType, MIN_PAGE_SIZE};

use crate::error::SqlError;
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard};

/// How a `Database` stores table rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageConfig {
    /// Classic in-memory `Vec<Row>` storage (the default).
    #[default]
    InMemory,
    /// Disk-page layout behind a bounded buffer pool.
    Paged {
        /// Maximum resident frames in the buffer pool.
        pool_pages: usize,
        /// Page size in bytes (clamped to `[MIN_PAGE_SIZE, 65536]`).
        page_size: usize,
    },
}

impl StorageConfig {
    /// A paged configuration with the given pool size and page size.
    pub fn paged(pool_pages: usize, page_size: usize) -> StorageConfig {
        StorageConfig::Paged {
            pool_pages,
            page_size,
        }
    }

    /// Whether this configuration uses the paged arm.
    pub fn is_paged(&self) -> bool {
        matches!(self, StorageConfig::Paged { .. })
    }
}

/// Shared handle to one buffer pool: `Database` and each paged table hold an
/// `Arc<Pager>` so heap/index code can reach the pool without threading it
/// through every call site.
#[derive(Debug)]
pub struct Pager {
    pool: Mutex<BufferPool>,
}

impl Pager {
    /// A pager over a deterministic in-memory disk.
    pub fn in_mem(pool_pages: usize, page_size: usize) -> Arc<Pager> {
        let page_size = page_size.clamp(MIN_PAGE_SIZE, 65_536);
        Arc::new(Pager {
            pool: Mutex::new(BufferPool::new(DiskManager::mem(page_size), pool_pages)),
        })
    }

    /// A pager over a file at `path` (created/truncated).
    pub fn on_file(path: &Path, pool_pages: usize, page_size: usize) -> Result<Arc<Pager>, SqlError> {
        let page_size = page_size.clamp(MIN_PAGE_SIZE, 65_536);
        Ok(Arc::new(Pager {
            pool: Mutex::new(BufferPool::new(
                DiskManager::file(path, page_size)?,
                pool_pages,
            )),
        }))
    }

    /// Lock the underlying pool. The engine is single-writer, so the mutex
    /// only guards against accidental re-entrancy; a poisoned lock is
    /// recovered rather than propagated.
    pub fn pool(&self) -> MutexGuard<'_, BufferPool> {
        self.pool.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshot of the pool's hit/miss/eviction/writeback counters.
    pub fn counters(&self) -> PoolCounters {
        self.pool().counters()
    }

    /// Deep copy (flushes first). `Mem`-disk pagers produce fully isolated
    /// clones; `File`-disk clones alias the same file.
    pub fn deep_clone(&self) -> Result<Arc<Pager>, SqlError> {
        let cloned = self.pool().deep_clone()?;
        Ok(Arc::new(Pager {
            pool: Mutex::new(cloned),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn config_default_is_in_memory() {
        assert_eq!(StorageConfig::default(), StorageConfig::InMemory);
        assert!(!StorageConfig::InMemory.is_paged());
        assert!(StorageConfig::paged(64, 4096).is_paged());
    }

    #[test]
    fn pager_clamps_page_size() {
        let p = Pager::in_mem(8, 1); // absurdly small → clamped
        assert_eq!(p.pool().page_size(), MIN_PAGE_SIZE);
    }

    #[test]
    fn pager_deep_clone_isolates_mem_disk() {
        let p = Pager::in_mem(8, 128);
        let mut heap = TableHeap::new();
        heap.append_row(&mut p.pool(), &[Value::Int(1)]).unwrap();
        let c = p.deep_clone().unwrap();
        // Writing through the clone's pool leaves the original untouched.
        let mut heap2 = heap.clone();
        heap2.append_row(&mut c.pool(), &[Value::Int(2)]).unwrap();
        assert_eq!(heap.all_rows(&mut p.pool()).unwrap().len(), 1);
        assert_eq!(heap2.all_rows(&mut c.pool()).unwrap().len(), 2);
    }
}
