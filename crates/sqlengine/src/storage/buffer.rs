//! Buffer pool: a bounded cache of page frames over a [`DiskManager`], with
//! LRU-K (K=2) eviction, pin/unpin accounting, and hit/miss/eviction/
//! writeback counters.
//!
//! Eviction picks the unpinned frame with the largest backward K-distance:
//! frames touched fewer than twice are evicted first (ordered by their single
//! access tick), then frames by their second-most-recent access tick. Ties
//! break by frame index, so eviction order is fully deterministic.

use super::disk::DiskManager;
use super::page::{Page, PageType};
use crate::error::SqlError;
use std::collections::HashMap;

/// Monotonic counters exposed on `sql.exec` spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back to disk (on eviction or flush).
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    page_id: u32,
    page: Page,
    pin_count: u32,
    dirty: bool,
    /// Most recent access tick.
    last: u64,
    /// Second-most-recent access tick (0 = fewer than two accesses).
    prev: u64,
}

/// Bounded page cache over a disk manager.
#[derive(Debug)]
pub struct BufferPool {
    disk: DiskManager,
    capacity: usize,
    frames: Vec<Frame>,
    by_id: HashMap<u32, usize>,
    tick: u64,
    counters: PoolCounters,
    max_resident: usize,
    free_pages: Vec<u32>,
}

/// Fewer frames than this and B+-tree builds / heap rewrites could deadlock
/// on pins; enforced by [`BufferPool::new`].
pub const MIN_POOL_PAGES: usize = 4;

impl BufferPool {
    /// A pool of at most `pool_pages` resident frames (floored at
    /// [`MIN_POOL_PAGES`]) over `disk`.
    pub fn new(disk: DiskManager, pool_pages: usize) -> BufferPool {
        BufferPool {
            disk,
            capacity: pool_pages.max(MIN_POOL_PAGES),
            frames: Vec::new(),
            by_id: HashMap::new(),
            tick: 0,
            counters: PoolCounters::default(),
            max_resident: 0,
            free_pages: Vec::new(),
        }
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.disk.page_size()
    }

    /// Maximum number of resident frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Frames currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// High-water mark of resident frames since construction.
    pub fn max_resident(&self) -> usize {
        self.max_resident
    }

    /// Snapshot of the hit/miss/eviction/writeback counters.
    pub fn counters(&self) -> PoolCounters {
        self.counters
    }

    /// Allocate a fresh page of the given type (reusing the free list when
    /// possible) and make it resident. Returns the new page id; the page is
    /// left unpinned and dirty.
    pub fn allocate_page(&mut self, ty: PageType) -> Result<u32, SqlError> {
        let id = match self.free_pages.pop() {
            Some(id) => id,
            None => self.disk.allocate()?,
        };
        let page = Page::new(self.page_size(), ty);
        let idx = self.place(id, page)?;
        self.frames[idx].dirty = true;
        Ok(id)
    }

    /// Return a page to the free list; a resident frame is discarded without
    /// writeback. The caller must have unpinned it.
    pub fn free_page(&mut self, id: u32) -> Result<(), SqlError> {
        if let Some(idx) = self.by_id.remove(&id) {
            if self.frames[idx].pin_count > 0 {
                self.by_id.insert(id, idx);
                return Err(SqlError::Storage(format!("freeing pinned page {id}")));
            }
            self.remove_frame(idx);
        }
        self.free_pages.push(id);
        Ok(())
    }

    /// Pin `id` into a frame (reading from disk on a miss).
    pub fn pin(&mut self, id: u32) -> Result<(), SqlError> {
        let idx = self.fetch(id)?;
        self.frames[idx].pin_count += 1;
        Ok(())
    }

    /// Drop one pin on `id`, optionally marking the page dirty.
    pub fn unpin(&mut self, id: u32, dirty: bool) -> Result<(), SqlError> {
        let idx = *self
            .by_id
            .get(&id)
            .ok_or_else(|| SqlError::Storage(format!("unpin of non-resident page {id}")))?;
        let f = &mut self.frames[idx];
        if f.pin_count == 0 {
            return Err(SqlError::Storage(format!("unpin of unpinned page {id}")));
        }
        f.pin_count -= 1;
        f.dirty |= dirty;
        Ok(())
    }

    /// Pin count of a resident page (testing hook).
    pub fn pin_count(&self, id: u32) -> Option<u32> {
        self.by_id.get(&id).map(|&i| self.frames[i].pin_count)
    }

    /// Run `f` with a shared view of page `id`, pinning around the call.
    pub fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&Page) -> R) -> Result<R, SqlError> {
        let idx = self.fetch(id)?;
        self.frames[idx].pin_count += 1;
        let out = f(&self.frames[idx].page);
        self.frames[idx].pin_count -= 1;
        Ok(out)
    }

    /// Run `f` with a mutable view of page `id`, pinning around the call and
    /// marking the frame dirty.
    pub fn with_page_mut<R>(
        &mut self,
        id: u32,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, SqlError> {
        let idx = self.fetch(id)?;
        self.frames[idx].pin_count += 1;
        let out = f(&mut self.frames[idx].page);
        self.frames[idx].pin_count -= 1;
        self.frames[idx].dirty = true;
        Ok(out)
    }

    /// Write every dirty frame back to disk (frames stay resident).
    pub fn flush_all(&mut self) -> Result<(), SqlError> {
        for i in 0..self.frames.len() {
            if self.frames[i].dirty {
                self.frames[i].page.fill_checksum();
                let id = self.frames[i].page_id;
                self.disk.write(id, self.frames[i].page.bytes())?;
                self.frames[i].dirty = false;
                self.counters.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Deep copy for `Database::clone`: flushes, then clones the disk with
    /// an empty (cold) frame table and fresh counters. Errors surface the
    /// `File`-arm reopen failure.
    pub fn deep_clone(&mut self) -> Result<BufferPool, SqlError> {
        self.flush_all()?;
        Ok(BufferPool {
            disk: self.disk.deep_clone()?,
            capacity: self.capacity,
            frames: Vec::new(),
            by_id: HashMap::new(),
            tick: 0,
            counters: PoolCounters::default(),
            max_resident: 0,
            free_pages: self.free_pages.clone(),
        })
    }

    // -- internals ----------------------------------------------------------

    /// Frame index for `id`, reading from disk on a miss.
    fn fetch(&mut self, id: u32) -> Result<usize, SqlError> {
        self.tick += 1;
        if let Some(&idx) = self.by_id.get(&id) {
            self.counters.hits += 1;
            let f = &mut self.frames[idx];
            f.prev = f.last;
            f.last = self.tick;
            return Ok(idx);
        }
        self.counters.misses += 1;
        let page = Page::from_bytes(self.disk.read(id)?, id)?;
        self.place(id, page)
    }

    /// Make `page` resident under `id`, evicting if the pool is full.
    fn place(&mut self, id: u32, page: Page) -> Result<usize, SqlError> {
        self.tick += 1;
        if self.frames.len() >= self.capacity {
            let victim = self.victim().ok_or_else(|| {
                SqlError::Storage(format!(
                    "buffer pool exhausted: all {} frames pinned",
                    self.capacity
                ))
            })?;
            self.evict(victim)?;
        }
        let idx = self.frames.len();
        self.frames.push(Frame {
            page_id: id,
            page,
            pin_count: 0,
            dirty: false,
            last: self.tick,
            prev: 0,
        });
        self.by_id.insert(id, idx);
        self.max_resident = self.max_resident.max(self.frames.len());
        Ok(idx)
    }

    /// LRU-K victim: unpinned frame with the largest backward K-distance.
    fn victim(&self) -> Option<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.pin_count == 0)
            // Key orders: never-twice-accessed first (prev == 0) by oldest
            // single access, then by oldest second-most-recent access.
            .min_by_key(|(i, f)| (f.prev != 0, if f.prev == 0 { f.last } else { f.prev }, *i))
            .map(|(i, _)| i)
    }

    fn evict(&mut self, idx: usize) -> Result<(), SqlError> {
        if self.frames[idx].dirty {
            self.frames[idx].page.fill_checksum();
            let id = self.frames[idx].page_id;
            self.disk.write(id, self.frames[idx].page.bytes())?;
            self.counters.writebacks += 1;
        }
        self.counters.evictions += 1;
        self.remove_frame(idx);
        Ok(())
    }

    /// Swap-remove a frame and fix up the displaced frame's map entry.
    fn remove_frame(&mut self, idx: usize) {
        let f = self.frames.swap_remove(idx);
        self.by_id.remove(&f.page_id);
        if idx < self.frames.len() {
            let moved = self.frames[idx].page_id;
            self.by_id.insert(moved, idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(DiskManager::mem(128), cap)
    }

    /// Allocate `n` pages stamped with recognizable tuples `base..base+n`.
    fn seed_from(p: &mut BufferPool, n: usize, base: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                let id = p.allocate_page(PageType::Heap).unwrap();
                p.with_page_mut(id, |pg| {
                    pg.insert(&[(base + i) as u8; 4]).unwrap();
                })
                .unwrap();
                id
            })
            .collect()
    }

    fn seed(p: &mut BufferPool, n: usize) -> Vec<u32> {
        seed_from(p, n, 0)
    }

    #[test]
    fn bounded_residency_under_pressure() {
        let mut p = pool(4);
        let ids = seed(&mut p, 16);
        // Touch every page twice, far more pages than frames.
        for _ in 0..2 {
            for (i, &id) in ids.iter().enumerate() {
                p.with_page(id, |pg| assert_eq!(pg.tuple(0).unwrap(), &[i as u8; 4]))
                    .unwrap();
            }
        }
        assert!(p.resident() <= 4);
        assert!(p.max_resident() <= 4);
        let c = p.counters();
        assert!(c.evictions > 0, "pressure must evict");
        assert!(c.writebacks > 0, "dirty pages must be written back");
        assert!(c.misses > 0 && c.hits > 0);
    }

    #[test]
    fn evicted_dirty_pages_survive_reload() {
        let mut p = pool(4);
        let ids = seed(&mut p, 12); // forces dirty evictions of early pages
        for (i, &id) in ids.iter().enumerate() {
            let data = p.with_page(id, |pg| pg.tuple(0).unwrap().to_vec()).unwrap();
            assert_eq!(data, vec![i as u8; 4], "page {id} lost its payload");
        }
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let mut p = pool(4);
        let ids = seed(&mut p, 4);
        p.pin(ids[0]).unwrap();
        p.pin(ids[1]).unwrap();
        assert_eq!(p.pin_count(ids[0]), Some(1));
        // Churn through many more pages than the two free frames.
        let extra = seed_from(&mut p, 10, ids.len());
        assert!(p.resident() <= 4);
        // The pinned pages never left.
        assert_eq!(p.pin_count(ids[0]), Some(1));
        assert_eq!(p.pin_count(ids[1]), Some(1));
        p.unpin(ids[0], false).unwrap();
        p.unpin(ids[1], false).unwrap();
        // Everything still reads back.
        for (i, &id) in ids.iter().chain(&extra).enumerate() {
            p.with_page(id, |pg| assert_eq!(pg.tuple(0).unwrap(), &[i as u8; 4]))
                .unwrap();
        }
    }

    #[test]
    fn all_pinned_pool_reports_exhaustion() {
        let mut p = pool(4);
        let ids = seed(&mut p, 4);
        for &id in &ids {
            p.pin(id).unwrap();
        }
        let err = p.allocate_page(PageType::Heap).unwrap_err();
        assert!(err.to_string().contains("exhausted"));
        for &id in &ids {
            p.unpin(id, false).unwrap();
        }
        assert!(p.allocate_page(PageType::Heap).is_ok());
    }

    #[test]
    fn unpin_errors_are_reported() {
        let mut p = pool(4);
        let ids = seed(&mut p, 1);
        assert!(p.unpin(ids[0], false).is_err()); // never pinned
        assert!(p.unpin(999, false).is_err()); // not resident
    }

    #[test]
    fn lru_k_prefers_single_access_frames() {
        let mut p = pool(4);
        // Four pages with exactly one access each (their allocation).
        let ids: Vec<u32> = (0..4)
            .map(|_| p.allocate_page(PageType::Heap).unwrap())
            .collect();
        // Second access for pages 0 and 1 → finite backward 2-distance.
        p.with_page(ids[0], |_| ()).unwrap();
        p.with_page(ids[1], |_| ()).unwrap();
        // Next placement must evict page 2: single-access frames go first,
        // oldest single access wins, and page 3 is younger than page 2.
        let newcomer = p.allocate_page(PageType::Heap).unwrap();
        assert!(p.pin_count(ids[2]).is_none(), "page 2 should be evicted");
        assert!(p.pin_count(ids[0]).is_some());
        assert!(p.pin_count(ids[1]).is_some());
        assert!(p.pin_count(ids[3]).is_some());
        assert!(p.pin_count(newcomer).is_some());

        // With all frames twice-accessed, the oldest second-most-recent
        // access is evicted (classic LRU-2): that is page 0 now.
        p.with_page(ids[3], |_| ()).unwrap();
        p.with_page(newcomer, |_| ()).unwrap();
        p.allocate_page(PageType::Heap).unwrap();
        assert!(p.pin_count(ids[0]).is_none(), "page 0 should be evicted");
    }

    #[test]
    fn free_pages_are_recycled() {
        let mut p = pool(4);
        let ids = seed(&mut p, 2);
        p.free_page(ids[0]).unwrap();
        let re = p.allocate_page(PageType::Heap).unwrap();
        assert_eq!(re, ids[0]);
        // Freed-then-reallocated page is a blank slate.
        p.with_page(re, |pg| assert_eq!(pg.slot_count(), 0)).unwrap();
    }

    #[test]
    fn freeing_a_pinned_page_is_refused() {
        let mut p = pool(4);
        let ids = seed(&mut p, 1);
        p.pin(ids[0]).unwrap();
        assert!(p.free_page(ids[0]).is_err());
        p.unpin(ids[0], false).unwrap();
        assert!(p.free_page(ids[0]).is_ok());
    }

    #[test]
    fn deep_clone_is_cold_and_isolated() {
        let mut p = pool(4);
        let ids = seed(&mut p, 6);
        let mut c = p.deep_clone().unwrap();
        assert_eq!(c.resident(), 0);
        assert_eq!(c.counters(), PoolCounters::default());
        // Mutating the clone leaves the original untouched.
        c.with_page_mut(ids[0], |pg| {
            pg.insert(b"clone-only").unwrap();
        })
        .unwrap();
        let orig = p
            .with_page(ids[0], |pg| pg.slot_count())
            .unwrap();
        assert_eq!(orig, 1);
        let cloned = c.with_page(ids[0], |pg| pg.slot_count()).unwrap();
        assert_eq!(cloned, 2);
    }
}
