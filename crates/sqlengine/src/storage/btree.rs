//! B+-tree secondary index stored in pages: leaf/internal page codecs and
//! ordered range scans over row ordinals.
//!
//! Keys are **composite**: an order-preserving encoding of the column value
//! followed by the row's 8-byte big-endian ordinal. Appending the ordinal
//! makes every key unique (duplicate column values become distinct keys), so
//! the tree is an ordinary unique-key B+-tree; a value-only prefix still
//! seeks to the first matching entry because a prefix sorts before any of
//! its extensions.
//!
//! Lifecycle mirrors `HashIndex`: the tree is **bulk-built bottom-up** from
//! a snapshot of the table and marked stale by any mutation; the engine
//! rebuilds stale trees before executing reads. There is no incremental
//! insert/delete path — rebuilds are O(n log n) and keep the page layout
//! dense.
//!
//! Page layouts (on top of the slotted format in [`super::page`]):
//! - leaf tuple:      `key` bytes (value encoding ++ ordinal BE); leaves are
//!   chained left-to-right through the page header's `next` pointer.
//! - internal tuple:  `u32 child page id (LE)` ++ separator `key` (the first
//!   key in the child's subtree).

use super::buffer::BufferPool;
use super::page::{PageType, HEADER_LEN, SLOT_LEN};
use crate::error::SqlError;
use crate::value::Value;
use std::ops::Bound;

/// Order-preserving byte encoding of one value, consistent with
/// `Value::total_cmp` ranks (NULL < BOOL < numeric < TEXT). A column's
/// values are homogeneous by schema type, so INT and FLOAT never share a
/// tree even though both use rank 2.
pub fn encode_value(v: &Value) -> Vec<u8> {
    match v {
        Value::Null => vec![0],
        Value::Bool(b) => vec![1, *b as u8],
        Value::Int(i) => {
            let mut out = vec![2];
            // Flip the sign bit so two's complement sorts unsigned.
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
            out
        }
        Value::Float(f) => {
            let bits = f.to_bits();
            // IEEE-754 total order: positive floats get the sign bit set,
            // negative floats are bit-inverted. Matches `f64::total_cmp`.
            let sortable = if bits & (1 << 63) != 0 { !bits } else { bits | (1 << 63) };
            let mut out = vec![2];
            out.extend_from_slice(&sortable.to_be_bytes());
            out
        }
        Value::Text(s) => {
            let mut out = vec![3];
            out.extend_from_slice(s.as_bytes());
            out
        }
    }
}

/// Full composite key: value encoding ++ ordinal (big-endian).
fn encode_key(v: &Value, ordinal: usize) -> Vec<u8> {
    let mut k = encode_value(v);
    k.extend_from_slice(&(ordinal as u64).to_be_bytes());
    k
}

/// The value-encoding prefix of a stored leaf key.
fn key_prefix(key: &[u8]) -> &[u8] {
    &key[..key.len() - 8]
}

/// The row ordinal packed into a stored leaf key.
fn key_ordinal(key: &[u8]) -> usize {
    let tail: [u8; 8] = key[key.len() - 8..].try_into().expect("8-byte ordinal");
    u64::from_be_bytes(tail) as usize
}

/// A paged B+-tree index over one column.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    root: u32,
    /// Leftmost leaf (scan anchor for unbounded lower bounds).
    first_leaf: u32,
    /// Every page owned by the tree, for [`BTreeIndex::free`].
    pages: Vec<u32>,
    /// Number of indexed entries.
    entries: usize,
}

impl BTreeIndex {
    /// Bulk-build a tree from `(value, ordinal)` pairs (any order).
    pub fn build(
        pool: &mut BufferPool,
        items: impl IntoIterator<Item = (Value, usize)>,
    ) -> Result<BTreeIndex, SqlError> {
        let mut keys: Vec<Vec<u8>> = items
            .into_iter()
            .map(|(v, ord)| encode_key(&v, ord))
            .collect();
        keys.sort_unstable();
        let entries = keys.len();
        let mut pages = Vec::new();

        // Pack the leaf level left to right, chaining through `next`.
        let mut level: Vec<(Vec<u8>, u32)> = Vec::new(); // (first key, page id)
        let mut current: Option<u32> = None;
        for key in &keys {
            let fits = match current {
                Some(id) => pool.with_page_mut(id, |p| p.insert(key).is_some())?,
                None => false,
            };
            if !fits {
                let id = pool.allocate_page(PageType::BTreeLeaf)?;
                pages.push(id);
                let ok = pool.with_page_mut(id, |p| p.insert(key).is_some())?;
                if !ok {
                    return Err(SqlError::Storage(format!(
                        "index key of {} bytes does not fit in a {}-byte page",
                        key.len(),
                        pool.page_size()
                    )));
                }
                if let Some(prev) = current {
                    pool.with_page_mut(prev, |p| p.set_next(id))?;
                }
                level.push((key.clone(), id));
                current = Some(id);
            }
        }
        if level.is_empty() {
            let id = pool.allocate_page(PageType::BTreeLeaf)?;
            pages.push(id);
            level.push((Vec::new(), id));
        }
        let first_leaf = level[0].1;

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut upper: Vec<(Vec<u8>, u32)> = Vec::new();
            let mut current: Option<u32> = None;
            for (sep, child) in &level {
                let mut tuple = Vec::with_capacity(4 + sep.len());
                tuple.extend_from_slice(&child.to_le_bytes());
                tuple.extend_from_slice(sep);
                let fits = match current {
                    Some(id) => pool.with_page_mut(id, |p| p.insert(&tuple).is_some())?,
                    None => false,
                };
                if !fits {
                    let id = pool.allocate_page(PageType::BTreeInternal)?;
                    pages.push(id);
                    let ok = pool.with_page_mut(id, |p| p.insert(&tuple).is_some())?;
                    if !ok {
                        return Err(SqlError::Storage(
                            "internal separator does not fit in a page".into(),
                        ));
                    }
                    upper.push((sep.clone(), id));
                    current = Some(id);
                }
            }
            level = upper;
        }
        Ok(BTreeIndex {
            root: level[0].1,
            first_leaf,
            pages,
            entries,
        })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the tree indexes no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Pages owned by the tree.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Ordinals of rows whose column value equals `v`, in ascending order.
    pub fn lookup_eq(&self, pool: &mut BufferPool, v: &Value) -> Result<Vec<usize>, SqlError> {
        self.range(pool, Bound::Included(v), Bound::Included(v))
    }

    /// Ordinals of rows whose column value lies in the given bounds, in
    /// **ascending ordinal order** (so scan semantics match insertion
    /// order). Bounds compare with the same total order the tree is built
    /// on, i.e. `Value::total_cmp` over a homogeneous column.
    pub fn range(
        &self,
        pool: &mut BufferPool,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Result<Vec<usize>, SqlError> {
        let lower_enc = match lower {
            Bound::Included(v) | Bound::Excluded(v) => Some(encode_value(v)),
            Bound::Unbounded => None,
        };
        let upper_enc = match upper {
            Bound::Included(v) | Bound::Excluded(v) => Some(encode_value(v)),
            Bound::Unbounded => None,
        };

        // Seek the leaf that could hold the first in-range key.
        let mut leaf = match &lower_enc {
            Some(target) => self.descend(pool, target)?,
            None => self.first_leaf,
        };

        let mut ordinals = Vec::new();
        loop {
            let (next, done) = pool.with_page(leaf, |p| {
                let mut done = false;
                for key in p.tuples() {
                    let prefix = key_prefix(key);
                    let in_lower = match (&lower_enc, lower) {
                        (Some(lo), Bound::Excluded(_)) => prefix > lo.as_slice(),
                        (Some(lo), _) => prefix >= lo.as_slice(),
                        (None, _) => true,
                    };
                    if !in_lower {
                        continue;
                    }
                    let past_upper = match (&upper_enc, upper) {
                        (Some(hi), Bound::Excluded(_)) => prefix >= hi.as_slice(),
                        (Some(hi), _) => prefix > hi.as_slice(),
                        (None, _) => false,
                    };
                    if past_upper {
                        done = true;
                        break;
                    }
                    ordinals.push(key_ordinal(key));
                }
                (p.next(), done)
            })?;
            if done || next == super::page::NO_PAGE {
                break;
            }
            leaf = next;
        }
        ordinals.sort_unstable();
        Ok(ordinals)
    }

    /// Walk internal nodes from the root down to the leaf whose key range
    /// covers `target` (a value-encoding prefix used as a pseudo-key).
    fn descend(&self, pool: &mut BufferPool, target: &[u8]) -> Result<u32, SqlError> {
        let mut page_id = self.root;
        loop {
            let next = pool.with_page(page_id, |p| {
                if p.page_type() == PageType::BTreeLeaf {
                    return None;
                }
                // Last child whose separator is <= target; default to the
                // first child (its separator acts as negative infinity).
                let mut chosen: Option<u32> = None;
                for tuple in p.tuples() {
                    let child = u32::from_le_bytes(tuple[..4].try_into().expect("child id"));
                    let sep = &tuple[4..];
                    if chosen.is_none() || sep <= target {
                        chosen = Some(child);
                    } else {
                        break;
                    }
                }
                chosen
            })?;
            match next {
                Some(child) => page_id = child,
                None => return Ok(page_id),
            }
        }
    }

    /// Release every page back to the pool's free list.
    pub fn free(self, pool: &mut BufferPool) -> Result<(), SqlError> {
        for id in self.pages {
            pool.free_page(id)?;
        }
        Ok(())
    }
}

/// Upper bound on entries a page of `page_size` can hold, used by tests to
/// force multi-level trees.
pub fn leaf_capacity(page_size: usize, key_len: usize) -> usize {
    (page_size - HEADER_LEN) / (key_len + SLOT_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::disk::DiskManager;

    fn pool() -> BufferPool {
        BufferPool::new(DiskManager::mem(128), 8)
    }

    #[test]
    fn value_encoding_preserves_total_cmp_order() {
        let ints: Vec<i64> = vec![i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for w in ints.windows(2) {
            assert!(
                encode_value(&Value::Int(w[0])) < encode_value(&Value::Int(w[1])),
                "{} !< {}",
                w[0],
                w[1]
            );
        }
        let floats = vec![
            f64::NEG_INFINITY,
            -1e100,
            -1.5,
            -0.0,
            0.0,
            1.5,
            1e100,
            f64::INFINITY,
            f64::NAN,
        ];
        for w in floats.windows(2) {
            assert!(
                encode_value(&Value::Float(w[0])) <= encode_value(&Value::Float(w[1])),
                "{} !<= {}",
                w[0],
                w[1]
            );
        }
        // Cross-rank: NULL < BOOL < numeric < TEXT.
        let ranked = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Text(String::new()),
            Value::Text("a".into()),
        ];
        for w in ranked.windows(2) {
            assert!(encode_value(&w[0]) < encode_value(&w[1]), "{w:?}");
        }
    }

    #[test]
    fn eq_lookup_finds_all_duplicates_in_ordinal_order() {
        let mut p = pool();
        // 300 entries over 3 distinct values → multi-page, multi-level with
        // 128-byte pages.
        let items: Vec<(Value, usize)> =
            (0..300).map(|i| (Value::Int((i % 3) as i64), i)).collect();
        let t = BTreeIndex::build(&mut p, items).unwrap();
        assert_eq!(t.len(), 300);
        assert!(t.page_count() > 10, "must span many pages");
        for v in 0..3i64 {
            let ords = t.lookup_eq(&mut p, &Value::Int(v)).unwrap();
            assert_eq!(ords.len(), 100);
            let want: Vec<usize> = (0..300).filter(|i| (i % 3) as i64 == v).collect();
            assert_eq!(ords, want);
        }
        assert!(t.lookup_eq(&mut p, &Value::Int(9)).unwrap().is_empty());
    }

    #[test]
    fn range_scan_respects_bounds() {
        let mut p = pool();
        let items: Vec<(Value, usize)> = (0..200).map(|i| (Value::Int(i as i64), i)).collect();
        let t = BTreeIndex::build(&mut p, items).unwrap();
        let r = t
            .range(&mut p, Bound::Included(&Value::Int(10)), Bound::Excluded(&Value::Int(20)))
            .unwrap();
        assert_eq!(r, (10..20).collect::<Vec<_>>());
        let r = t
            .range(&mut p, Bound::Excluded(&Value::Int(190)), Bound::Unbounded)
            .unwrap();
        assert_eq!(r, (191..200).collect::<Vec<_>>());
        let r = t
            .range(&mut p, Bound::Unbounded, Bound::Included(&Value::Int(5)))
            .unwrap();
        assert_eq!(r, (0..6).collect::<Vec<_>>());
        let r = t
            .range(&mut p, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(r.len(), 200);
    }

    #[test]
    fn text_and_null_keys_work() {
        let mut p = pool();
        let items = vec![
            (Value::Text("banana".into()), 0),
            (Value::Null, 1),
            (Value::Text("apple".into()), 2),
            (Value::Text("banana".into()), 3),
        ];
        let t = BTreeIndex::build(&mut p, items).unwrap();
        assert_eq!(
            t.lookup_eq(&mut p, &Value::Text("banana".into())).unwrap(),
            vec![0, 3]
        );
        assert_eq!(t.lookup_eq(&mut p, &Value::Null).unwrap(), vec![1]);
        // TEXT range: apple <= x < c
        let r = t
            .range(
                &mut p,
                Bound::Included(&Value::Text("apple".into())),
                Bound::Excluded(&Value::Text("c".into())),
            )
            .unwrap();
        assert_eq!(r, vec![0, 2, 3]);
    }

    #[test]
    fn empty_tree_answers_empty() {
        let mut p = pool();
        let t = BTreeIndex::build(&mut p, Vec::new()).unwrap();
        assert!(t.is_empty());
        assert!(t.lookup_eq(&mut p, &Value::Int(1)).unwrap().is_empty());
        assert!(t
            .range(&mut p, Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn free_releases_every_page() {
        let mut p = pool();
        let items: Vec<(Value, usize)> = (0..300).map(|i| (Value::Int(i as i64), i)).collect();
        let t = BTreeIndex::build(&mut p, items).unwrap();
        let n_pages = t.page_count();
        assert!(n_pages > 10);
        t.free(&mut p).unwrap();
        // Rebuilding reuses the freed pages rather than growing the disk.
        let items: Vec<(Value, usize)> = (0..300).map(|i| (Value::Int(i as i64), i)).collect();
        let t2 = BTreeIndex::build(&mut p, items).unwrap();
        assert_eq!(t2.len(), 300);
        assert_eq!(
            t2.lookup_eq(&mut p, &Value::Int(7)).unwrap(),
            vec![7]
        );
    }

    #[test]
    fn leaf_capacity_is_sane() {
        assert!(leaf_capacity(4096, 17) > 100);
        assert!(leaf_capacity(128, 17) >= 5);
    }
}
