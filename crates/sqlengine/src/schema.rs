//! Schemas and columns.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::SqlError;
use crate::value::DataType;

/// A column definition: name, type, and optional table qualifier (set when
/// a schema flows through a join so `t.col` references stay resolvable).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (stored lowercase; SQL identifiers are case-insensitive).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Table (or alias) this column came from, lowercase.
    pub table: Option<String>,
}

impl Column {
    /// New unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column {
            name: name.into().to_lowercase(),
            data_type,
            table: None,
        }
    }

    /// New column qualified with its source table.
    pub fn qualified(
        table: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Column {
            name: name.into().to_lowercase(),
            data_type,
            table: Some(table.into().to_lowercase()),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{} {}", self.name, self.data_type),
            None => write!(f, "{} {}", self.name, self.data_type),
        }
    }
}

/// An ordered list of columns. Cheap to share via [`SchemaRef`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

/// Shared schema handle (row batches carry one of these, DataFusion-style).
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build from columns; duplicate *qualified* names are rejected.
    pub fn new(columns: Vec<Column>) -> Result<Schema, SqlError> {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                if a.name == b.name && a.table == b.table {
                    return Err(SqlError::Plan(format!(
                        "duplicate column `{}` in schema",
                        a.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// Build without duplicate checking (for internal plan nodes that have
    /// already validated, e.g. join outputs that keep qualifiers distinct).
    pub fn new_unchecked(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a possibly-qualified column reference to an index.
    ///
    /// `table` restricts the search to columns carrying that qualifier.
    /// Unqualified lookups that match more than one column are ambiguous.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, SqlError> {
        let name = name.to_lowercase();
        let table = table.map(str::to_lowercase);
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.name != name {
                continue;
            }
            if let Some(t) = &table {
                if c.table.as_deref() != Some(t.as_str()) {
                    continue;
                }
            }
            if found.is_some() {
                return Err(SqlError::Plan(format!("ambiguous column `{name}`")));
            }
            found = Some(i);
        }
        found.ok_or_else(|| {
            let full = match &table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            };
            SqlError::ColumnNotFound(full)
        })
    }

    /// Index of a column by exact position-independent name (unqualified).
    pub fn index_of(&self, name: &str) -> Result<usize, SqlError> {
        self.resolve(None, name)
    }

    /// A copy of this schema with every column qualified by `table`
    /// (applied when a base table enters a FROM clause, honoring aliases).
    pub fn qualify(&self, table: &str) -> Schema {
        let t = table.to_lowercase();
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    data_type: c.data_type,
                    table: Some(t.clone()),
                })
                .collect(),
        }
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.len() + right.len());
        columns.extend_from_slice(&self.columns);
        columns.extend_from_slice(&right.columns);
        Schema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn names_are_lowercased() {
        let c = Column::new("UserName", DataType::Text);
        assert_eq!(c.name, "username");
        let c = Column::qualified("Orders", "ID", DataType::Int);
        assert_eq!(c.table.as_deref(), Some("orders"));
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("ID", DataType::Text),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn same_name_different_qualifier_ok() {
        let r = Schema::new(vec![
            Column::qualified("a", "id", DataType::Int),
            Column::qualified("b", "id", DataType::Int),
        ]);
        assert!(r.is_ok());
    }

    #[test]
    fn resolve_unqualified() {
        assert_eq!(schema().resolve(None, "name").unwrap(), 1);
        assert_eq!(schema().resolve(None, "NAME").unwrap(), 1);
        assert!(matches!(
            schema().resolve(None, "ghost"),
            Err(SqlError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn resolve_qualified() {
        let s = schema().qualify("users");
        assert_eq!(s.resolve(Some("users"), "id").unwrap(), 0);
        assert!(s.resolve(Some("orders"), "id").is_err());
    }

    #[test]
    fn resolve_ambiguous_after_join() {
        let joined = schema().qualify("a").join(&schema().qualify("b"));
        assert!(matches!(
            joined.resolve(None, "id"),
            Err(SqlError::Plan(_))
        ));
        assert_eq!(joined.resolve(Some("b"), "id").unwrap(), 2);
    }

    #[test]
    fn join_concatenates_in_order() {
        let j = schema().qualify("a").join(&schema().qualify("b"));
        assert_eq!(j.len(), 4);
        assert_eq!(j.columns()[0].table.as_deref(), Some("a"));
        assert_eq!(j.columns()[3].table.as_deref(), Some("b"));
    }

    #[test]
    fn display_column() {
        assert_eq!(Column::new("id", DataType::Int).to_string(), "id INT");
        assert_eq!(
            Column::qualified("t", "id", DataType::Int).to_string(),
            "t.id INT"
        );
    }
}
