//! The catalog: named tables, their stored rows, and secondary indexes.
//!
//! Tables come in two storage arms selected by
//! [`crate::storage::StorageConfig`]: the classic in-memory `Vec<Row>` arm
//! (the default — its behavior is byte-identical to before paged storage
//! existed) and a paged arm where rows live in a
//! [`crate::storage::TableHeap`] behind a shared buffer pool and secondary
//! indexes are paged [`crate::storage::BTreeIndex`]es instead of
//! [`HashIndex`]es.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use crate::col::ColumnTable;
use crate::error::SqlError;
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::storage::{BTreeIndex, Pager, StorageConfig, TableHeap};
use crate::value::{GroupKey, Value};

/// A hash index over one column: value → row positions.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    entries: HashMap<GroupKey, Vec<usize>>,
}

impl HashIndex {
    /// Build from a column of an existing table.
    fn build(rows: &[Row], col: usize) -> HashIndex {
        let mut entries: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            entries.entry(r[col].group_key()).or_default().push(i);
        }
        HashIndex { entries }
    }

    /// Row positions holding `value` (empty slice when absent).
    pub fn lookup(&self, value: &Value) -> &[usize] {
        self.entries
            .get(&value.group_key())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }
}

/// A stored table: schema + row storage + secondary hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name (lowercase).
    pub name: String,
    /// Schema (unqualified column names).
    pub schema: SchemaRef,
    /// Row storage.
    pub rows: Vec<Row>,
    /// Hash indexes by column position. Maintained on insert; rebuilt
    /// lazily after bulk mutation (UPDATE/DELETE mark them stale).
    indexes: HashMap<usize, HashIndex>,
    /// Index name → column position (for `DROP INDEX name ON table`).
    index_names: HashMap<String, usize>,
    indexes_stale: bool,
    /// Columnar mirror of `rows`, maintained on insert and dropped on
    /// in-place mutation (like indexes, but rebuilt on demand by the
    /// vectorized executor rather than lazily here).
    columnar: Option<ColumnTable>,
    /// Paged row storage; `Some` iff the table uses the paged arm (then
    /// `rows` stays empty).
    heap: Option<TableHeap>,
    /// Paged-arm secondary indexes (the paged counterpart of `indexes`).
    btrees: HashMap<usize, BTreeIndex>,
    /// Shared buffer pool, present on paged tables.
    pager: Option<Arc<Pager>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_lowercase(),
            schema: Arc::new(schema),
            rows: Vec::new(),
            indexes: HashMap::new(),
            index_names: HashMap::new(),
            indexes_stale: false,
            columnar: None,
            heap: None,
            btrees: HashMap::new(),
            pager: None,
        }
    }

    /// Create an empty paged table whose rows live in `pager`'s pool.
    pub fn new_paged(name: impl Into<String>, schema: Schema, pager: Arc<Pager>) -> Self {
        let mut t = Table::new(name, schema);
        t.heap = Some(TableHeap::new());
        t.pager = Some(pager);
        t
    }

    /// Whether this table stores rows in pages rather than `rows`.
    pub fn is_paged(&self) -> bool {
        self.heap.is_some()
    }

    /// The paged heap, when on the paged arm.
    pub fn heap(&self) -> Option<&TableHeap> {
        self.heap.as_ref()
    }

    /// The shared pager, when on the paged arm.
    pub fn pager(&self) -> Option<&Arc<Pager>> {
        self.pager.as_ref()
    }

    /// Coerce one row of values against the schema (shared by both arms).
    fn coerce_values(&self, values: Vec<Value>) -> Result<Vec<Value>, SqlError> {
        if values.len() != self.schema.len() {
            return Err(SqlError::Execution(format!(
                "table `{}` has {} columns but {} values were supplied",
                self.name,
                self.schema.len(),
                values.len()
            )));
        }
        let mut row = Vec::with_capacity(values.len());
        for (v, c) in values.into_iter().zip(self.schema.columns()) {
            row.push(v.coerce_to(c.data_type)?);
        }
        Ok(row)
    }

    /// Append a row after coercing every value to its column type.
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<(), SqlError> {
        let row = self.coerce_values(values)?;
        if let (Some(heap), Some(pager)) = (&mut self.heap, &self.pager) {
            heap.append_row(&mut pager.pool(), &row)?;
            // B+-trees are rebuilt from a heap snapshot rather than
            // maintained incrementally; any append invalidates them.
            if !self.btrees.is_empty() {
                self.indexes_stale = true;
            }
            return Ok(());
        }
        let row = Row::new(row);
        // Incremental index maintenance on the append path.
        if !self.indexes_stale {
            let pos = self.rows.len();
            for (&col, idx) in self.indexes.iter_mut() {
                idx.entries.entry(row[col].group_key()).or_default().push(pos);
            }
        }
        if let Some(ct) = &mut self.columnar {
            ct.append_row(&row);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Bulk append: coerce and validate every row first, then append them
    /// all (no partial inserts on error). One index/columnar maintenance
    /// pass instead of per-row work — the CSV/bench ingest path.
    pub fn insert_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<usize, SqlError> {
        let mut coerced = Vec::with_capacity(rows.len());
        for values in rows {
            coerced.push(Row::new(self.coerce_values(values)?));
        }
        let n = coerced.len();
        if let (Some(heap), Some(pager)) = (&mut self.heap, &self.pager) {
            let mut pool = pager.pool();
            for row in &coerced {
                heap.append_row(&mut pool, row.values())?;
            }
            drop(pool);
            if !self.btrees.is_empty() {
                self.indexes_stale = true;
            }
            return Ok(n);
        }
        if !self.indexes_stale {
            let base = self.rows.len();
            for (&col, idx) in self.indexes.iter_mut() {
                for (i, row) in coerced.iter().enumerate() {
                    idx.entries
                        .entry(row[col].group_key())
                        .or_default()
                        .push(base + i);
                }
            }
        }
        if let Some(ct) = &mut self.columnar {
            for row in &coerced {
                ct.append_row(row);
            }
        }
        self.rows.reserve(n);
        self.rows.extend(coerced);
        Ok(n)
    }

    /// The columnar mirror, if present and in sync with `rows`. The row
    /// count guard catches direct `rows` mutation that bypassed the
    /// maintenance hooks.
    pub fn columnar(&self) -> Option<&ColumnTable> {
        if self.is_paged() {
            // Paged tables have no columnar mirror; the vectorized executor
            // streams chunks straight off the heap instead.
            return None;
        }
        self.columnar
            .as_ref()
            .filter(|ct| ct.rows() == self.rows.len())
    }

    /// Build (or rebuild) the columnar mirror from row storage if it is
    /// absent or out of sync. No-op on paged tables.
    pub fn refresh_columnar(&mut self) {
        if self.is_paged() {
            return;
        }
        let fresh = self
            .columnar
            .as_ref()
            .is_some_and(|ct| ct.rows() == self.rows.len());
        if !fresh {
            self.columnar = Some(ColumnTable::from_rows(&self.rows, self.schema.len()));
        }
    }

    /// Build a B+-tree over column `col` from the current heap contents.
    fn build_btree(&self, col: usize) -> Result<BTreeIndex, SqlError> {
        let (heap, pager) = (
            self.heap.as_ref().expect("paged table"),
            self.pager.as_ref().expect("paged table"),
        );
        let mut pool = pager.pool();
        let mut items = Vec::with_capacity(heap.len());
        heap.scan(&mut pool, |ord, row| {
            items.push((row[col].clone(), ord));
            Ok(())
        })?;
        BTreeIndex::build(&mut pool, items)
    }

    /// Create a named index on `column`: a [`HashIndex`] on the in-memory
    /// arm, a paged [`BTreeIndex`] on the paged arm. Re-creating under the
    /// same name replaces it.
    pub fn create_index(&mut self, name: &str, column: &str) -> Result<(), SqlError> {
        let col = self.schema.index_of(column)?;
        let name = name.to_lowercase();
        if let Some(&existing) = self.index_names.get(&name) {
            if existing != col {
                self.indexes.remove(&existing);
                if let Some(tree) = self.btrees.remove(&existing) {
                    if let Some(pager) = &self.pager {
                        tree.free(&mut pager.pool())?;
                    }
                }
            }
        }
        if self.is_paged() {
            let tree = self.build_btree(col)?;
            if let Some(old) = self.btrees.insert(col, tree) {
                if let Some(pager) = &self.pager {
                    old.free(&mut pager.pool())?;
                }
            }
        } else {
            self.indexes.insert(col, HashIndex::build(&self.rows, col));
        }
        self.index_names.insert(name, col);
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> Result<(), SqlError> {
        let name = name.to_lowercase();
        match self.index_names.remove(&name) {
            Some(col) => {
                // Only remove the column index if no other name covers it.
                if !self.index_names.values().any(|&c| c == col) {
                    self.indexes.remove(&col);
                    if let Some(tree) = self.btrees.remove(&col) {
                        if let Some(pager) = &self.pager {
                            tree.free(&mut pager.pool())?;
                        }
                    }
                }
                Ok(())
            }
            None => Err(SqlError::Plan(format!("index not found: {name}"))),
        }
    }

    /// Names of this table's indexes, sorted.
    pub fn index_list(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.index_names.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Columns (by position) that currently carry indexes (either arm).
    pub fn indexed_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.indexes.keys().chain(self.btrees.keys()).copied().collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// The index on column position `col`, refreshed if stale.
    /// Returns `None` when no index exists there.
    pub fn index(&mut self, col: usize) -> Option<&HashIndex> {
        if self.indexes_stale {
            for (&c, idx) in self.indexes.iter_mut() {
                *idx = HashIndex::build(&self.rows, c);
            }
            self.indexes_stale = false;
        }
        self.indexes.get(&col)
    }

    /// Read-only view of an index; `None` if absent or stale.
    pub fn index_if_fresh(&self, col: usize) -> Option<&HashIndex> {
        if self.indexes_stale {
            return None;
        }
        self.indexes.get(&col)
    }

    /// Read-only view of a paged B+-tree index; `None` if absent or stale.
    pub fn btree_if_fresh(&self, col: usize) -> Option<&BTreeIndex> {
        if self.indexes_stale {
            return None;
        }
        self.btrees.get(&col)
    }

    /// Mark indexes stale after in-place mutation (UPDATE/DELETE). The
    /// columnar mirror is dropped unconditionally: unlike indexes its row
    /// count can stay equal under UPDATE, so a staleness flag alone would
    /// not catch the change.
    pub fn mark_indexes_stale(&mut self) {
        if !self.indexes.is_empty() || !self.btrees.is_empty() {
            self.indexes_stale = true;
        }
        self.columnar = None;
    }

    /// Rebuild any stale indexes now (optional; lookups do this lazily on
    /// the in-memory arm; the engine calls this before reads on the paged
    /// arm, where the immutable executor cannot rebuild).
    pub fn refresh_indexes(&mut self) {
        if !self.indexes_stale {
            return;
        }
        if self.is_paged() {
            let cols: Vec<usize> = self.btrees.keys().copied().collect();
            for c in cols {
                // Build before free: a build failure leaves the old (stale,
                // unused) tree in place rather than dangling.
                if let Ok(tree) = self.build_btree(c) {
                    if let (Some(old), Some(pager)) = (self.btrees.insert(c, tree), &self.pager) {
                        let _ = old.free(&mut pager.pool());
                    }
                }
            }
        } else {
            for (&c, idx) in self.indexes.iter_mut() {
                *idx = HashIndex::build(&self.rows, c);
            }
        }
        self.indexes_stale = false;
    }

    /// Row count.
    pub fn len(&self) -> usize {
        match &self.heap {
            Some(h) => h.len(),
            None => self.rows.len(),
        }
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stream every stored row through `f` in storage order, whichever arm
    /// holds it. The paged arm decodes one page at a time.
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(&[Value]) -> Result<(), SqlError>,
    ) -> Result<(), SqlError> {
        match (&self.heap, &self.pager) {
            (Some(heap), Some(pager)) => heap.scan(&mut pager.pool(), |_, row| f(&row)),
            _ => {
                for row in &self.rows {
                    f(row.values())?;
                }
                Ok(())
            }
        }
    }

    /// Materialize every row as owned values (CSV export, maintenance
    /// passes). Prefer [`Table::for_each_row`] where streaming suffices.
    pub fn all_rows(&self) -> Result<Vec<Vec<Value>>, SqlError> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_row(|row| {
            out.push(row.to_vec());
            Ok(())
        })?;
        Ok(out)
    }

    /// Swap in a rewritten heap (the paged UPDATE/DELETE path), freeing the
    /// old heap's pages. Does NOT touch index staleness — the caller owns
    /// that, so paged staleness bookkeeping can mirror the in-memory arm
    /// statement for statement.
    pub fn replace_heap(&mut self, new_heap: TableHeap) -> Result<(), SqlError> {
        let (heap, pager) = match (&mut self.heap, &self.pager) {
            (Some(h), Some(p)) => (h, p),
            _ => return Err(SqlError::Storage("replace_heap on an in-memory table".into())),
        };
        let mut old = std::mem::replace(heap, new_heap);
        old.free(&mut pager.pool())?;
        Ok(())
    }

    /// Release all paged storage (heap + B+-trees) back to the pool's free
    /// list; called when the table is dropped. No-op on the in-memory arm.
    pub fn free_storage(&mut self) -> Result<(), SqlError> {
        let pager = match &self.pager {
            Some(p) => Arc::clone(p),
            None => return Ok(()),
        };
        if let Some(heap) = &mut self.heap {
            heap.free(&mut pager.pool())?;
        }
        for (_, tree) in self.btrees.drain() {
            tree.free(&mut pager.pool())?;
        }
        Ok(())
    }
}

/// A database: a set of named tables plus the storage arm they live on.
///
/// Iteration order is deterministic (`BTreeMap`), which keeps schema dumps
/// — the input to Text-to-SQL prompts — stable across runs.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    storage: StorageConfig,
    /// Shared buffer pool for the paged arm (`None` when in-memory).
    pager: Option<Arc<Pager>>,
}

impl Clone for Database {
    /// Deep copy. The paged arm deep-clones the buffer pool (flushing
    /// first) and re-points every table at the clone's pager, so clones
    /// never share mutable page state. A `File`-backed pager still aliases
    /// the underlying file — see [`Pager::deep_clone`].
    fn clone(&self) -> Database {
        let pager = self
            .pager
            .as_ref()
            .map(|p| p.deep_clone().expect("pager deep clone"));
        let mut tables = self.tables.clone();
        if let Some(p) = &pager {
            for t in tables.values_mut() {
                if t.pager.is_some() {
                    t.pager = Some(Arc::clone(p));
                }
            }
        }
        Database {
            tables,
            storage: self.storage,
            pager,
        }
    }
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create an empty database on the given storage arm. The paged arm
    /// uses a deterministic in-memory disk behind its buffer pool.
    pub fn with_storage(storage: StorageConfig) -> Database {
        let pager = match storage {
            StorageConfig::InMemory => None,
            StorageConfig::Paged {
                pool_pages,
                page_size,
            } => Some(Pager::in_mem(pool_pages, page_size)),
        };
        Database {
            tables: BTreeMap::new(),
            storage,
            pager,
        }
    }

    /// The storage arm this database was created with.
    pub fn storage_config(&self) -> StorageConfig {
        self.storage
    }

    /// The shared pager (paged arm only).
    pub fn pager(&self) -> Option<&Arc<Pager>> {
        self.pager.as_ref()
    }

    /// Create a table. Errors if the name is taken (unless
    /// `if_not_exists`).
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        if_not_exists: bool,
    ) -> Result<(), SqlError> {
        let key = name.to_lowercase();
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(());
            }
            return Err(SqlError::TableExists(key));
        }
        let table = match &self.pager {
            Some(p) => Table::new_paged(key.clone(), schema, Arc::clone(p)),
            None => Table::new(key.clone(), schema),
        };
        self.tables.insert(key, table);
        Ok(())
    }

    /// Drop a table (releasing its pages on the paged arm). Errors if
    /// missing (unless `if_exists`).
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<(), SqlError> {
        let key = name.to_lowercase();
        match self.tables.remove(&key) {
            Some(mut t) => t.free_storage(),
            None if if_exists => Ok(()),
            None => Err(SqlError::TableNotFound(key)),
        }
    }

    /// Shared view of a table.
    pub fn table(&self, name: &str) -> Result<&Table, SqlError> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| SqlError::TableNotFound(name.to_lowercase()))
    }

    /// Mutable view of a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, SqlError> {
        self.tables
            .get_mut(&name.to_lowercase())
            .ok_or_else(|| SqlError::TableNotFound(name.to_lowercase()))
    }

    /// Does the table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_lowercase())
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Order-sensitive FNV-1a digest of the whole catalog: table names,
    /// column schemas, and every row's values in storage order. Replicated
    /// catalogs that applied the same DDL/DML in the same order hash
    /// identically — the cluster layer compares these digests to prove a
    /// replica's SQL shard converged with its primary after failover.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (name, table) in &self.tables {
            eat(name.as_bytes());
            for col in table.schema.columns() {
                eat(col.name.as_bytes());
                eat(format!("{:?}", col.data_type).as_bytes());
            }
            // Both storage arms hash identically for identical contents; a
            // paged-arm storage error truncates the digest (and is reported
            // loudly everywhere else), so ignore it here.
            let _ = table.for_each_row(|row| {
                for v in row {
                    eat(v.to_string().as_bytes());
                }
                eat(b"|");
                Ok(())
            });
        }
        h
    }

    /// Render the full schema as `CREATE TABLE`-style DDL — the schema
    /// context that Text-to-SQL prompts embed.
    pub fn schema_ddl(&self) -> String {
        let mut out = String::new();
        for t in self.tables.values() {
            out.push_str("CREATE TABLE ");
            out.push_str(&t.name);
            out.push_str(" (");
            for (i, c) in t.schema.columns().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.name);
                out.push(' ');
                out.push_str(c.data_type.name());
            }
            out.push_str(");\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.create_table("Users", schema(), false).unwrap();
        assert!(db.has_table("users"));
        assert!(db.has_table("USERS"));
        assert_eq!(db.table("users").unwrap().schema.len(), 2);
    }

    #[test]
    fn duplicate_create_rejected_unless_if_not_exists() {
        let mut db = Database::new();
        db.create_table("t", schema(), false).unwrap();
        assert!(matches!(
            db.create_table("t", schema(), false),
            Err(SqlError::TableExists(_))
        ));
        assert!(db.create_table("t", schema(), true).is_ok());
    }

    #[test]
    fn drop_semantics() {
        let mut db = Database::new();
        db.create_table("t", schema(), false).unwrap();
        db.drop_table("t", false).unwrap();
        assert!(!db.has_table("t"));
        assert!(matches!(
            db.drop_table("t", false),
            Err(SqlError::TableNotFound(_))
        ));
        assert!(db.drop_table("t", true).is_ok());
    }

    #[test]
    fn insert_coerces_and_validates() {
        let mut db = Database::new();
        db.create_table("t", schema(), false).unwrap();
        let t = db.table_mut("t").unwrap();
        t.insert_row(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        // Wrong arity.
        assert!(t.insert_row(vec![Value::Int(1)]).is_err());
        // Wrong type.
        assert!(t
            .insert_row(vec![Value::Text("x".into()), Value::Text("a".into())])
            .is_err());
        // NULL passes.
        t.insert_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn insert_rows_bulk_matches_per_row() {
        let mut a = Table::new("t", schema());
        let mut b = Table::new("t", schema());
        let rows: Vec<Vec<Value>> = (0..5)
            .map(|i| vec![Value::Int(i), Value::Text(format!("r{i}"))])
            .collect();
        for r in rows.clone() {
            a.insert_row(r).unwrap();
        }
        assert_eq!(b.insert_rows(rows).unwrap(), 5);
        assert_eq!(a.rows, b.rows);
        // Atomic: a bad row rejects the whole batch.
        let bad = vec![
            vec![Value::Int(9), Value::Text("ok".into())],
            vec![Value::Int(10)],
        ];
        assert!(b.insert_rows(bad).is_err());
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn insert_rows_maintains_indexes() {
        let mut t = Table::new("t", schema());
        t.create_index("i", "name").unwrap();
        t.insert_rows(vec![
            vec![Value::Int(1), Value::Text("a".into())],
            vec![Value::Int(2), Value::Text("a".into())],
            vec![Value::Int(3), Value::Text("b".into())],
        ])
        .unwrap();
        let idx = t.index(1).unwrap();
        assert_eq!(idx.lookup(&Value::Text("a".into())), &[0, 1]);
    }

    #[test]
    fn columnar_cache_lifecycle() {
        let mut t = Table::new("t", schema());
        t.insert_row(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        assert!(t.columnar().is_none()); // not built yet
        t.refresh_columnar();
        assert_eq!(t.columnar().unwrap().rows(), 1);
        // Maintained incrementally across both insert paths.
        t.insert_row(vec![Value::Int(2), Value::Null]).unwrap();
        t.insert_rows(vec![vec![Value::Int(3), Value::Text("c".into())]])
            .unwrap();
        let ct = t.columnar().unwrap();
        assert_eq!(ct.rows(), 3);
        assert_eq!(ct.chunks()[0].row(2), t.rows[2]);
        // In-place mutation drops the cache even without an index.
        t.mark_indexes_stale();
        assert!(t.columnar().is_none());
        // Direct row mutation is caught by the row-count guard.
        t.refresh_columnar();
        t.rows.push(Row::new(vec![Value::Int(4), Value::Null]));
        assert!(t.columnar().is_none());
        t.refresh_columnar();
        assert_eq!(t.columnar().unwrap().rows(), 4);
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Database::new();
        db.create_table("zeta", schema(), false).unwrap();
        db.create_table("alpha", schema(), false).unwrap();
        assert_eq!(db.table_names(), vec!["alpha", "zeta"]);
        assert_eq!(db.table_count(), 2);
    }

    #[test]
    fn schema_ddl_roundtrips_through_parser() {
        let mut db = Database::new();
        db.create_table("users", schema(), false).unwrap();
        let ddl = db.schema_ddl();
        assert!(ddl.contains("CREATE TABLE users (id INT, name TEXT);"));
        // And it parses back.
        for stmt in ddl.lines() {
            assert!(crate::parser::parse(stmt).is_ok());
        }
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use crate::engine::Engine;
    use crate::schema::Column;
    use crate::value::DataType;

    fn seeded() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (id INT, grp TEXT, v INT)").unwrap();
        e.execute(
            "INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30), (4, 'c', 40)",
        )
        .unwrap();
        e
    }

    #[test]
    fn create_index_and_lookup() {
        let mut e = seeded();
        e.execute("CREATE INDEX idx_grp ON t (grp)").unwrap();
        let t = e.database_mut().table_mut("t").unwrap();
        assert_eq!(t.index_list(), vec!["idx_grp"]);
        assert_eq!(t.indexed_columns(), vec![1]);
        let idx = t.index(1).unwrap();
        assert_eq!(idx.lookup(&Value::Text("a".into())), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Text("z".into())), &[] as &[usize]);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn indexed_query_matches_unindexed() {
        let mut plain = seeded();
        let mut indexed = seeded();
        indexed.execute("CREATE INDEX i ON t (grp)").unwrap();
        for sql in [
            "SELECT id FROM t WHERE grp = 'a' ORDER BY id",
            "SELECT SUM(v) FROM t WHERE grp = 'a'",
            "SELECT id FROM t WHERE grp = 'a' AND v > 15",
            "SELECT id FROM t WHERE grp = 'nope'",
        ] {
            let a = plain.execute(sql).unwrap();
            let b = indexed.execute(sql).unwrap();
            assert_eq!(a.rows, b.rows, "disagreement on {sql}");
        }
    }

    #[test]
    fn index_stays_fresh_across_inserts() {
        let mut e = seeded();
        e.execute("CREATE INDEX i ON t (grp)").unwrap();
        e.execute("INSERT INTO t VALUES (5, 'a', 50)").unwrap();
        let r = e.execute("SELECT COUNT(*) FROM t WHERE grp = 'a'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(3));
    }

    #[test]
    fn update_and_delete_invalidate_then_results_stay_correct() {
        let mut e = seeded();
        e.execute("CREATE INDEX i ON t (grp)").unwrap();
        e.execute("UPDATE t SET grp = 'z' WHERE id = 1").unwrap();
        // Stale index must not serve wrong candidates.
        let r = e.execute("SELECT COUNT(*) FROM t WHERE grp = 'a'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(1));
        let r = e.execute("SELECT COUNT(*) FROM t WHERE grp = 'z'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(1));
        e.execute("DELETE FROM t WHERE grp = 'z'").unwrap();
        let r = e.execute("SELECT COUNT(*) FROM t WHERE grp = 'z'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(0));
        // Refresh path also works explicitly.
        e.database_mut().table_mut("t").unwrap().refresh_indexes();
        let r = e.execute("SELECT COUNT(*) FROM t WHERE grp = 'b'").unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(1));
    }

    #[test]
    fn drop_index_by_name() {
        let mut e = seeded();
        e.execute("CREATE INDEX i ON t (grp)").unwrap();
        e.execute("DROP INDEX i ON t").unwrap();
        assert!(e.database().table("t").unwrap().index_list().is_empty());
        assert!(e.execute("DROP INDEX i ON t").is_err());
        // Queries still work without the index.
        assert!(e.execute("SELECT id FROM t WHERE grp = 'a'").is_ok());
    }

    #[test]
    fn index_on_unknown_column_rejected() {
        let mut e = seeded();
        assert!(e.execute("CREATE INDEX i ON t (ghost)").is_err());
        assert!(e.execute("CREATE INDEX i ON ghost_table (grp)").is_err());
    }

    #[test]
    fn renaming_index_to_other_column_replaces() {
        let mut t = Table::new(
            "x",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ])
            .unwrap(),
        );
        t.insert_row(vec![Value::Int(1), Value::Int(2)]).unwrap();
        t.create_index("i", "a").unwrap();
        t.create_index("i", "b").unwrap(); // same name, new column
        assert_eq!(t.indexed_columns(), vec![1]);
    }
}
