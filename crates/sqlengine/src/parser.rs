//! SQL parser: tokens → statement AST.

use crate::error::SqlError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::lexer::{lex, Sym, Tok};
use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE [IF NOT EXISTS] name (col type, …)`.
    CreateTable {
        /// Table name (lowercase).
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
        /// Suppress the error when the table exists.
        if_not_exists: bool,
    },
    /// `CREATE INDEX name ON table (column)`.
    CreateIndex {
        /// Index name (lowercase).
        name: String,
        /// Target table (lowercase).
        table: String,
        /// Indexed column (lowercase).
        column: String,
    },
    /// `DROP INDEX name ON table`.
    DropIndex {
        /// Index name (lowercase).
        name: String,
        /// Owning table (lowercase).
        table: String,
    },
    /// `DROP TABLE [IF EXISTS] name`.
    DropTable {
        /// Table name (lowercase).
        name: String,
        /// Suppress the error when the table is missing.
        if_exists: bool,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)`.
    Insert {
        /// Target table (lowercase).
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Rows of value expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE name SET col = expr, … [WHERE …]`.
    Update {
        /// Target table (lowercase).
        table: String,
        /// Assignments.
        assignments: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM name [WHERE …]`.
    Delete {
        /// Target table (lowercase).
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A `SELECT` query.
    Select(SelectStmt),
}

/// A projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `table.*`.
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base table name (lowercase).
    pub name: String,
    /// Alias (lowercase), if given.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in the query (alias wins).
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// Join flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `INNER JOIN` (or bare `JOIN`).
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
}

/// One join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Flavour.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// `ON` condition.
    pub on: Expr,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `DISTINCT`?
    pub distinct: bool,
    /// Projections.
    pub projections: Vec<SelectItem>,
    /// `FROM` table (absent for `SELECT 1`).
    pub from: Option<TableRef>,
    /// Joins, in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
    /// `UNION [ALL] <select>` continuation: the next arm and whether
    /// duplicates are kept (`true` = UNION ALL).
    pub union: Option<(Box<SelectStmt>, bool)>,
}

/// Parse one statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, SqlError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semi);
    if !p.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing tokens starting at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the next token the given keyword (case-insensitive)?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require the keyword.
    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consume the symbol if present.
    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require the symbol.
    fn expect_sym(&mut self, sym: Sym) -> Result<(), SqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{sym:?}`, found {:?}",
                self.peek()
            )))
        }
    }

    /// Require an identifier (returned lowercase).
    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.to_lowercase()),
            other => Err(SqlError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return self.create_table();
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("INDEX") {
                return self.drop_index();
            }
            return self.drop_table();
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        Err(SqlError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty_name = self.ident()?;
            // Strip length args: VARCHAR(32).
            if self.eat_sym(Sym::LParen) {
                while !self.eat_sym(Sym::RParen) {
                    if self.next().is_none() {
                        return Err(SqlError::Parse("unterminated type argument".into()));
                    }
                }
            }
            let ty = DataType::parse(&ty_name)
                .ok_or_else(|| SqlError::Parse(format!("unknown type `{ty_name}`")))?;
            // Ignore constraints we don't enforce (PRIMARY KEY, NOT NULL, …).
            loop {
                if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                } else if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                } else if self.eat_kw("UNIQUE") || self.eat_kw("NULL") {
                } else {
                    break;
                }
            }
            columns.push((col, ty));
            if self.eat_sym(Sym::Comma) {
                continue;
            }
            self.expect_sym(Sym::RParen)?;
            break;
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn drop_table(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn create_index(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let column = self.ident()?;
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn drop_index(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        Ok(Statement::DropIndex { name, table })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_sym(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if self.eat_sym(Sym::Comma) {
                    continue;
                }
                self.expect_sym(Sym::RParen)?;
                break;
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if self.eat_sym(Sym::Comma) {
                    continue;
                }
                self.expect_sym(Sym::RParen)?;
                break;
            }
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement, SqlError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.ident()?;
        // `AS alias`, or a bare alias that isn't a clause keyword.
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Tok::Ident(s)) = self.peek() {
            const CLAUSES: &[&str] = &[
                "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "ON",
                "RIGHT", "FULL", "CROSS", "UNION",
            ];
            if CLAUSES.iter().any(|c| s.eq_ignore_ascii_case(c)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        if !distinct {
            self.eat_kw("ALL");
        }

        let mut projections = Vec::new();
        loop {
            if self.eat_sym(Sym::Star) {
                projections.push(SelectItem::Wildcard);
            } else if let (Some(Tok::Ident(t)), Some(Tok::Sym(Sym::Dot)), Some(Tok::Sym(Sym::Star))) = (
                self.toks.get(self.pos),
                self.toks.get(self.pos + 1),
                self.toks.get(self.pos + 2),
            ) {
                let t = t.to_lowercase();
                self.pos += 3;
                projections.push(SelectItem::QualifiedWildcard(t));
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else if let Some(Tok::Ident(s)) = self.peek() {
                    const CLAUSES: &[&str] = &[
                        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "UNION",
                    ];
                    if CLAUSES.iter().any(|c| s.eq_ignore_ascii_case(c)) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }

        let from = if self.eat_kw("FROM") {
            Some(self.table_ref()?)
        } else {
            None
        };

        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join { kind, table, on });
        }

        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT expects a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        // UNION [ALL] chains: parse the next arm recursively. Standard SQL
        // attaches a trailing ORDER BY/LIMIT to the whole union; the
        // planner lifts them off the final arm accordingly.
        let union = if self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            let next = self.select()?;
            Some((Box::new(next), all))
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projections,
            from,
            joins,
            filter,
            group_by,
            having,
            order_by,
            limit,
            union,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;

        // Postfix predicates: IS [NOT] NULL, [NOT] LIKE/IN/BETWEEN.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if self.eat_sym(Sym::Comma) {
                    continue;
                }
                self.expect_sym(Sym::RParen)?;
                break;
            }
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse(
                "expected LIKE, IN or BETWEEN after NOT".into(),
            ));
        }

        let op = match self.peek() {
            Some(Tok::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Tok::Sym(Sym::Neq)) => Some(BinOp::Neq),
            Some(Tok::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Tok::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Tok::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Tok::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym(Sym::Plus)) => BinOp::Add,
                Some(Tok::Sym(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym(Sym::Star)) => BinOp::Mul,
                Some(Tok::Sym(Sym::Slash)) => BinOp::Div,
                Some(Tok::Sym(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_sym(Sym::Minus) {
            let inner = self.unary()?;
            // Fold literal negation immediately (keeps plans tidy).
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Tok::Sym(Sym::Star)) => Ok(Expr::Wildcard),
            Some(Tok::Sym(Sym::LParen)) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(id)) => {
                // Keyword literals.
                if id.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if id.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if id.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                // Function call.
                if self.eat_sym(Sym::LParen) {
                    let mut name = id.to_uppercase();
                    let mut args = Vec::new();
                    if !self.eat_sym(Sym::RParen) {
                        // `COUNT(DISTINCT x)` becomes the dedicated
                        // COUNT_DISTINCT aggregate; DISTINCT inside any
                        // other function is rejected.
                        if self.eat_kw("DISTINCT") {
                            if name != "COUNT" {
                                return Err(SqlError::Parse(format!(
                                    "DISTINCT is only supported inside COUNT, not {name}"
                                )));
                            }
                            name = "COUNT_DISTINCT".into();
                        }
                        loop {
                            args.push(self.expr()?);
                            if self.eat_sym(Sym::Comma) {
                                continue;
                            }
                            self.expect_sym(Sym::RParen)?;
                            break;
                        }
                    }
                    return Ok(Expr::Function { name, args });
                }
                // Qualified column `t.col`.
                if self.eat_sym(Sym::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(id.to_lowercase()),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    name: id.to_lowercase(),
                })
            }
            other => Err(SqlError::Parse(format!(
                "expected an expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let s = parse("CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(32) NOT NULL)")
            .unwrap();
        match s {
            Statement::CreateTable { name, columns, if_not_exists } => {
                assert_eq!(name, "users");
                assert_eq!(columns.len(), 2);
                assert_eq!(columns[0], ("id".to_string(), DataType::Int));
                assert_eq!(columns[1], ("name".to_string(), DataType::Text));
                assert!(!if_not_exists);
            }
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parse_create_if_not_exists() {
        let s = parse("CREATE TABLE IF NOT EXISTS t (a INT)").unwrap();
        assert!(matches!(s, Statement::CreateTable { if_not_exists: true, .. }));
    }

    #[test]
    fn parse_drop() {
        assert!(matches!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { if_exists: false, .. }
        ));
        assert!(matches!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable { if_exists: true, .. }
        ));
    }

    #[test]
    fn parse_insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::lit("y"));
            }
            other => panic!("wrong stmt: {other:?}"),
        }
    }

    #[test]
    fn parse_update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'z' WHERE a > 3").unwrap();
        match s {
            Statement::Update { assignments, filter, .. } => {
                assert_eq!(assignments.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("wrong stmt: {other:?}"),
        }
        let s = parse("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(s, Statement::Delete { filter: Some(_), .. }));
        let s = parse("DELETE FROM t").unwrap();
        assert!(matches!(s, Statement::Delete { filter: None, .. }));
    }

    fn sel(sql: &str) -> SelectStmt {
        match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn parse_select_full_clause_set() {
        let s = sel(
            "SELECT DISTINCT category, SUM(amount) AS total \
             FROM orders o \
             JOIN products p ON o.product_id = p.id \
             WHERE amount > 10 \
             GROUP BY category \
             HAVING SUM(amount) > 100 \
             ORDER BY total DESC, category \
             LIMIT 5;",
        );
        assert!(s.distinct);
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.as_ref().unwrap().name, "orders");
        assert_eq!(s.from.as_ref().unwrap().alias.as_deref(), Some("o"));
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert!(s.filter.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].1); // DESC
        assert!(!s.order_by[1].1); // default ASC
        assert_eq!(s.limit, Some(5));
    }

    #[test]
    fn parse_left_join() {
        let s = sel("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id");
        assert_eq!(s.joins[0].kind, JoinKind::Left);
        let s = sel("SELECT * FROM a LEFT JOIN b ON a.id = b.id");
        assert_eq!(s.joins[0].kind, JoinKind::Left);
    }

    #[test]
    fn parse_select_without_from() {
        let s = sel("SELECT 1 + 2");
        assert!(s.from.is_none());
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn parse_qualified_wildcard() {
        let s = sel("SELECT o.*, p.name FROM orders o JOIN products p ON o.pid = p.id");
        assert_eq!(s.projections[0], SelectItem::QualifiedWildcard("o".into()));
    }

    #[test]
    fn parse_alias_without_as() {
        let s = sel("SELECT amount total FROM orders");
        match &s.projections[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("total")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_or_and() {
        // a OR b AND c  ==  a OR (b AND c)
        let s = sel("SELECT * FROM t WHERE a OR b AND c");
        match s.filter.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 == 1 + (2 * 3)
        let s = sel("SELECT 1 + 2 * 3");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_not_like_in_between() {
        let s = sel("SELECT * FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1,2) AND c NOT BETWEEN 1 AND 5");
        let f = s.filter.unwrap().to_string();
        assert!(f.contains("NOT LIKE"));
        assert!(f.contains("NOT IN"));
        assert!(f.contains("NOT BETWEEN"));
    }

    #[test]
    fn parse_is_null_forms() {
        let s = sel("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL");
        let f = s.filter.unwrap().to_string();
        assert!(f.contains("IS NULL"));
        assert!(f.contains("IS NOT NULL"));
    }

    #[test]
    fn parse_count_star() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::Function { name, args }, .. } => {
                assert_eq!(name, "COUNT");
                assert_eq!(args, &vec![Expr::Wildcard]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_boolean_and_null_literals() {
        let s = sel("SELECT TRUE, false, NULL");
        assert_eq!(s.projections.len(), 3);
        match &s.projections[2] {
            SelectItem::Expr { expr, .. } => assert_eq!(*expr, Expr::Literal(Value::Null)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_negative_numbers_folded() {
        let s = sel("SELECT -5, -2.5");
        match &s.projections[0] {
            SelectItem::Expr { expr, .. } => assert_eq!(*expr, Expr::lit(-5i64)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT 1 FROM t WAT WAT").is_err());
        assert!(parse("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = parse("CREATE TABLE t (a BLOB)").unwrap_err();
        assert!(e.to_string().contains("BLOB") || e.to_string().contains("blob"));
        let e = parse("SELECT * FROM t LIMIT 'x'").unwrap_err();
        assert!(e.to_string().contains("LIMIT"));
    }

    #[test]
    fn count_distinct_parses_and_others_reject() {
        let s = parse("SELECT COUNT(DISTINCT a) FROM t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.projections[0] {
                SelectItem::Expr { expr: Expr::Function { name, args }, .. } => {
                    assert_eq!(name, "COUNT_DISTINCT");
                    assert_eq!(args.len(), 1);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let e = parse("SELECT SUM(DISTINCT a) FROM t").unwrap_err();
        assert!(e.to_string().contains("DISTINCT"));
    }
}
