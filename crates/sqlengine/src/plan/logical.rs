//! Logical plan representation and the planner that builds it from an AST.

use std::sync::Arc;

use crate::catalog::Database;
use crate::error::SqlError;
use crate::expr::{Expr, AGGREGATE_FUNCTIONS};
use crate::parser::{JoinKind, SelectItem, SelectStmt};
use crate::schema::{Column, Schema, SchemaRef};
use crate::value::DataType;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL values.
    Count,
    /// `COUNT(DISTINCT expr)` — counts distinct non-NULL values.
    CountDistinct,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parse an (uppercased) function name; `star` says whether the single
    /// argument was `*`.
    pub fn parse(name: &str, star: bool) -> Option<AggFunc> {
        match (name, star) {
            ("COUNT", true) => Some(AggFunc::CountStar),
            ("COUNT", false) => Some(AggFunc::Count),
            ("COUNT_DISTINCT", false) => Some(AggFunc::CountDistinct),
            ("SUM", false) => Some(AggFunc::Sum),
            ("AVG", false) => Some(AggFunc::Avg),
            ("MIN", false) => Some(AggFunc::Min),
            ("MAX", false) => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Result type given the input type.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => input,
        }
    }
}

/// A relational logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base table (optionally with an embedded filter and column
    /// projection, both installed by the optimizer).
    Scan {
        /// Catalog table name.
        table: String,
        /// Name the table is known by in this query (alias or name).
        qualifier: String,
        /// Output schema (qualified, possibly pruned).
        schema: SchemaRef,
        /// Pruned column indices into the base table, if any.
        projection: Option<Vec<usize>>,
        /// Pushed-down predicate, if any.
        filter: Option<Expr>,
    },
    /// Keep rows satisfying `predicate`.
    Filter {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Join two inputs on a condition.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// INNER or LEFT.
        kind: JoinKind,
        /// Join condition.
        on: Expr,
    },
    /// Group and aggregate.
    Aggregate {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Group-key expressions with output names.
        group_exprs: Vec<(Expr, String)>,
        /// Aggregates: function, argument, output name.
        aggregates: Vec<(AggFunc, Expr, String)>,
    },
    /// Evaluate expressions into output columns.
    Project {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Expressions with output names.
        exprs: Vec<(Expr, String)>,
    },
    /// Sort by column positions of the input schema.
    Sort {
        /// Input node.
        input: Box<LogicalPlan>,
        /// `(column index, descending)` keys.
        keys: Vec<(usize, bool)>,
    },
    /// Keep only the first `keep` columns (drops hidden sort keys).
    Strip {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Number of leading columns to keep.
        keep: usize,
    },
    /// Remove duplicate rows.
    Distinct {
        /// Input node.
        input: Box<LogicalPlan>,
    },
    /// Keep at most `n` rows.
    Limit {
        /// Input node.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Concatenate the outputs of several arms (UNION ALL); `dedupe`
    /// removes duplicate rows (plain UNION).
    Union {
        /// The arms, in order. All arms share the first arm's arity.
        inputs: Vec<LogicalPlan>,
        /// Remove duplicates?
        dedupe: bool,
    },
    /// Literal rows (used for `SELECT` without `FROM`).
    Values {
        /// Output schema.
        schema: SchemaRef,
        /// Row count to emit (each row is empty; projections supply values).
        rows: usize,
    },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            LogicalPlan::Scan { schema, .. } | LogicalPlan::Values { schema, .. } => {
                schema.clone()
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Strip { input, keep } => {
                let s = input.schema();
                Arc::new(Schema::new_unchecked(s.columns()[..*keep].to_vec()))
            }
            LogicalPlan::Join { left, right, .. } => {
                Arc::new(left.schema().join(&right.schema()))
            }
            LogicalPlan::Union { inputs, .. } => {
                inputs.first().map(|i| i.schema()).unwrap_or_else(|| {
                    Arc::new(Schema::new_unchecked(vec![]))
                })
            }
            LogicalPlan::Aggregate {
                input,
                group_exprs,
                aggregates,
            } => {
                let in_schema = input.schema();
                let mut cols = Vec::with_capacity(group_exprs.len() + aggregates.len());
                for (e, name) in group_exprs {
                    cols.push(Column::new(name.clone(), expr_type(e, &in_schema)));
                }
                for (f, e, name) in aggregates {
                    cols.push(Column::new(
                        name.clone(),
                        f.output_type(expr_type(e, &in_schema)),
                    ));
                }
                Arc::new(Schema::new_unchecked(cols))
            }
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema();
                let cols = exprs
                    .iter()
                    .map(|(e, name)| Column::new(name.clone(), expr_type(e, &in_schema)))
                    .collect();
                Arc::new(Schema::new_unchecked(cols))
            }
        }
    }

    /// Pretty-print the plan tree (for EXPLAIN-style output and tests).
    pub fn display_indent(&self) -> String {
        fn walk(plan: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match plan {
                LogicalPlan::Scan {
                    table,
                    projection,
                    filter,
                    ..
                } => {
                    out.push_str(&format!("{pad}Scan: {table}"));
                    if let Some(p) = projection {
                        out.push_str(&format!(" projection={p:?}"));
                    }
                    if let Some(f) = filter {
                        out.push_str(&format!(" filter={f}"));
                    }
                    out.push('\n');
                }
                LogicalPlan::Filter { input, predicate } => {
                    out.push_str(&format!("{pad}Filter: {predicate}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Join {
                    left,
                    right,
                    kind,
                    on,
                } => {
                    out.push_str(&format!("{pad}Join({kind:?}): {on}\n"));
                    walk(left, depth + 1, out);
                    walk(right, depth + 1, out);
                }
                LogicalPlan::Aggregate {
                    input,
                    group_exprs,
                    aggregates,
                } => {
                    let groups: Vec<String> =
                        group_exprs.iter().map(|(e, _)| e.to_string()).collect();
                    let aggs: Vec<String> = aggregates
                        .iter()
                        .map(|(f, e, _)| format!("{f:?}({e})"))
                        .collect();
                    out.push_str(&format!(
                        "{pad}Aggregate: groups=[{}] aggs=[{}]\n",
                        groups.join(", "),
                        aggs.join(", ")
                    ));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Project { input, exprs } => {
                    let cols: Vec<String> = exprs
                        .iter()
                        .map(|(e, n)| format!("{e} AS {n}"))
                        .collect();
                    out.push_str(&format!("{pad}Project: {}\n", cols.join(", ")));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Sort { input, keys } => {
                    out.push_str(&format!("{pad}Sort: {keys:?}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Strip { input, keep } => {
                    out.push_str(&format!("{pad}Strip: keep={keep}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Distinct { input } => {
                    out.push_str(&format!("{pad}Distinct\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Limit { input, n } => {
                    out.push_str(&format!("{pad}Limit: {n}\n"));
                    walk(input, depth + 1, out);
                }
                LogicalPlan::Union { inputs, dedupe } => {
                    out.push_str(&format!(
                        "{pad}Union: {} arm(s){}\n",
                        inputs.len(),
                        if *dedupe { " distinct" } else { " all" }
                    ));
                    for i in inputs {
                        walk(i, depth + 1, out);
                    }
                }
                LogicalPlan::Values { rows, .. } => {
                    out.push_str(&format!("{pad}Values: {rows} row(s)\n"));
                }
            }
        }
        let mut s = String::new();
        walk(self, 0, &mut s);
        s
    }
}

/// Best-effort static type of an expression (defaults to Float for
/// arithmetic, Text otherwise — only used for display schemas).
fn expr_type(e: &Expr, schema: &Schema) -> DataType {
    match e {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Text),
        Expr::Column { table, name } => schema
            .resolve(table.as_deref(), name)
            .map(|i| schema.columns()[i].data_type)
            .unwrap_or(DataType::Text),
        Expr::Binary { op, left, right } => match op {
            crate::expr::BinOp::And
            | crate::expr::BinOp::Or
            | crate::expr::BinOp::Eq
            | crate::expr::BinOp::Neq
            | crate::expr::BinOp::Lt
            | crate::expr::BinOp::Le
            | crate::expr::BinOp::Gt
            | crate::expr::BinOp::Ge => DataType::Bool,
            _ => {
                let lt = expr_type(left, schema);
                let rt = expr_type(right, schema);
                if lt == DataType::Float || rt == DataType::Float {
                    DataType::Float
                } else {
                    lt
                }
            }
        },
        Expr::Unary { op, expr } => match op {
            crate::expr::UnOp::Neg => expr_type(expr, schema),
            crate::expr::UnOp::Not => DataType::Bool,
        },
        Expr::Function { name, args } => match name.as_str() {
            "LENGTH" => DataType::Int,
            "ROUND" => DataType::Float,
            "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" => DataType::Text,
            "ABS" | "COALESCE" => args
                .first()
                .map(|a| expr_type(a, schema))
                .unwrap_or(DataType::Float),
            _ => DataType::Float,
        },
        Expr::IsNull { .. } | Expr::Like { .. } | Expr::InList { .. } | Expr::Between { .. } => {
            DataType::Bool
        }
        Expr::Wildcard => DataType::Text,
    }
}

/// Plans `SELECT` statements against a database.
pub struct Planner<'a> {
    db: &'a Database,
}

impl<'a> Planner<'a> {
    /// Create a planner over `db`.
    pub fn new(db: &'a Database) -> Self {
        Planner { db }
    }

    /// Build the logical plan for a `SELECT` (including UNION chains).
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan, SqlError> {
        if stmt.union.is_some() {
            return self.plan_union(stmt);
        }
        self.plan_select_core(stmt)
    }

    /// Plan a UNION chain: each arm planned independently, the final arm's
    /// trailing ORDER BY/LIMIT lifted onto the whole union (standard SQL
    /// binding). ORDER BY on a union must use output positions (`ORDER BY
    /// 1`) or the first arm's output column names.
    fn plan_union(&self, stmt: &SelectStmt) -> Result<LogicalPlan, SqlError> {
        // Flatten the chain.
        let mut arms: Vec<SelectStmt> = Vec::new();
        let mut dedupe = false;
        let mut cursor = stmt.clone();
        loop {
            match cursor.union.take() {
                Some((next, all)) => {
                    if !all {
                        dedupe = true;
                    }
                    arms.push(cursor);
                    cursor = *next;
                }
                None => {
                    arms.push(cursor);
                    break;
                }
            }
        }
        // Lift the final arm's ORDER BY / LIMIT onto the union.
        let last = arms.last_mut().expect("at least one arm");
        let order_by = std::mem::take(&mut last.order_by);
        let limit = last.limit.take();

        let mut inputs = Vec::with_capacity(arms.len());
        for arm in &arms {
            inputs.push(self.plan_select_core(arm)?);
        }
        let first_schema = inputs[0].schema();
        for (i, input) in inputs.iter().enumerate().skip(1) {
            if input.schema().len() != first_schema.len() {
                return Err(SqlError::Plan(format!(
                    "UNION arms disagree on column count: arm 1 has {}, arm {} has {}",
                    first_schema.len(),
                    i + 1,
                    input.schema().len()
                )));
            }
        }
        let mut plan = LogicalPlan::Union { inputs, dedupe };

        if !order_by.is_empty() {
            let schema = plan.schema();
            let mut keys = Vec::with_capacity(order_by.len());
            for (e, desc) in &order_by {
                let idx = match e {
                    Expr::Literal(crate::value::Value::Int(n)) => {
                        let n = *n;
                        if n < 1 || n as usize > schema.len() {
                            return Err(SqlError::Plan(format!(
                                "ORDER BY position {n} is out of range for the union"
                            )));
                        }
                        (n - 1) as usize
                    }
                    Expr::Column { table: None, name } => schema
                        .columns()
                        .iter()
                        .position(|c| &c.name == name)
                        .ok_or_else(|| {
                            SqlError::Plan(format!(
                                "ORDER BY over a UNION must name an output column;                                  `{name}` is not one"
                            ))
                        })?,
                    other => {
                        return Err(SqlError::Plan(format!(
                            "ORDER BY over a UNION must use output columns or                              positions, not `{other}`"
                        )))
                    }
                };
                keys.push((idx, *desc));
            }
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Build the logical plan for one (union-free) `SELECT` arm.
    fn plan_select_core(&self, stmt: &SelectStmt) -> Result<LogicalPlan, SqlError> {
        // 1. FROM + JOINs.
        let mut plan = match &stmt.from {
            Some(tref) => self.scan(tref.name.as_str(), tref.effective_name())?,
            None => LogicalPlan::Values {
                schema: Arc::new(Schema::new_unchecked(vec![])),
                rows: 1,
            },
        };
        for join in &stmt.joins {
            let right = self.scan(join.table.name.as_str(), join.table.effective_name())?;
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                kind: join.kind,
                on: join.on.clone(),
            };
        }

        // 2. WHERE.
        if let Some(f) = &stmt.filter {
            if f.contains_aggregate() {
                return Err(SqlError::Plan(
                    "aggregate functions are not allowed in WHERE (use HAVING)".into(),
                ));
            }
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: f.clone(),
            };
        }

        // 3. Expand wildcards into concrete projection expressions.
        let input_schema = plan.schema();
        let mut proj: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard => {
                    if stmt.from.is_none() {
                        return Err(SqlError::Plan("SELECT * requires a FROM clause".into()));
                    }
                    for c in input_schema.columns() {
                        proj.push((
                            Expr::Column {
                                table: c.table.clone(),
                                name: c.name.clone(),
                            },
                            Some(c.name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let t = t.to_lowercase();
                    let cols: Vec<&Column> = input_schema
                        .columns()
                        .iter()
                        .filter(|c| c.table.as_deref() == Some(t.as_str()))
                        .collect();
                    if cols.is_empty() {
                        return Err(SqlError::Plan(format!("unknown table alias `{t}` in {t}.*")));
                    }
                    for c in cols {
                        proj.push((
                            Expr::Column {
                                table: c.table.clone(),
                                name: c.name.clone(),
                            },
                            Some(c.name.clone()),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    proj.push((expr.clone(), alias.clone()));
                }
            }
        }

        // 4. Aggregation.
        let has_aggregates = proj.iter().any(|(e, _)| e.contains_aggregate())
            || !stmt.group_by.is_empty()
            || stmt
                .having
                .as_ref()
                .map(|h| h.contains_aggregate())
                .unwrap_or(false);

        let mut order_keys: Vec<(Expr, bool)> = stmt.order_by.clone();

        // Name output columns from the *original* expressions so aggregate
        // rewriting doesn't leak generated names like `agg0` into results.
        let mut proj: Vec<(Expr, String)> = proj
            .into_iter()
            .map(|(e, alias)| {
                let name = alias.unwrap_or_else(|| default_name(&e));
                (e, name)
            })
            .collect();

        if has_aggregates {
            let mut rewriter = AggRewriter::new(&stmt.group_by);
            let rewritten_proj: Vec<(Expr, String)> = proj
                .iter()
                .map(|(e, a)| Ok((rewriter.rewrite(e)?, a.clone())))
                .collect::<Result<_, SqlError>>()?;
            let rewritten_having = match &stmt.having {
                Some(h) => Some(rewriter.rewrite(h)?),
                None => None,
            };
            let rewritten_order: Vec<(Expr, bool)> = order_keys
                .iter()
                .map(|(e, d)| Ok((rewriter.rewrite(e)?, *d)))
                .collect::<Result<_, SqlError>>()?;

            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group_exprs: rewriter.group_out,
                aggregates: rewriter.agg_out,
            };
            if let Some(h) = rewritten_having {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: h,
                };
            }
            proj = rewritten_proj;
            order_keys = rewritten_order;
        } else if stmt.having.is_some() {
            return Err(SqlError::Plan("HAVING requires GROUP BY or aggregates".into()));
        }

        // 5. Output columns are already named.
        let named: Vec<(Expr, String)> = proj;
        let visible = named.len();

        // 6. ORDER BY → hidden sort keys appended to the projection.
        //    Keys that are aliases or 1-based positions resolve directly.
        let mut exprs = named;
        let mut sort_keys: Vec<(usize, bool)> = Vec::new();
        for (key, desc) in &order_keys {
            let idx = match key {
                Expr::Literal(crate::value::Value::Int(n)) => {
                    let n = *n;
                    if n < 1 || n as usize > visible {
                        return Err(SqlError::Plan(format!(
                            "ORDER BY position {n} is out of range"
                        )));
                    }
                    (n - 1) as usize
                }
                Expr::Column { table: None, name } => {
                    match exprs[..visible].iter().position(|(_, n)| n == name) {
                        Some(i) => i,
                        None => {
                            exprs.push((key.clone(), format!("__sort{}", sort_keys.len())));
                            exprs.len() - 1
                        }
                    }
                }
                _ => {
                    // Matching expression already projected?
                    match exprs[..visible].iter().position(|(e, _)| e == key) {
                        Some(i) => i,
                        None => {
                            exprs.push((key.clone(), format!("__sort{}", sort_keys.len())));
                            exprs.len() - 1
                        }
                    }
                }
            };
            sort_keys.push((idx, *desc));
        }
        let hidden = exprs.len() - visible;
        if stmt.distinct && hidden > 0 {
            return Err(SqlError::Plan(
                "ORDER BY with DISTINCT must reference selected columns".into(),
            ));
        }

        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs,
        };
        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if !sort_keys.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        if hidden > 0 {
            plan = LogicalPlan::Strip {
                input: Box::new(plan),
                keep: visible,
            };
        }
        Ok(plan)
    }

    fn scan(&self, table: &str, qualifier: &str) -> Result<LogicalPlan, SqlError> {
        let t = self.db.table(table)?;
        Ok(LogicalPlan::Scan {
            table: t.name.clone(),
            qualifier: qualifier.to_lowercase(),
            schema: Arc::new(t.schema.qualify(qualifier)),
            projection: None,
            filter: None,
        })
    }
}

/// Default output column name for an expression.
fn default_name(e: &Expr) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.to_lowercase(),
        other => other.to_string(),
    }
}

/// Rewrites expressions for aggregate queries: aggregate calls become
/// references to generated `aggN` columns, and group-by expressions become
/// references to their group-key output columns.
struct AggRewriter {
    group_in: Vec<Expr>,
    /// Group expressions with output names, in GROUP BY order.
    group_out: Vec<(Expr, String)>,
    /// Aggregates discovered during rewriting.
    agg_out: Vec<(AggFunc, Expr, String)>,
}

impl AggRewriter {
    fn new(group_by: &[Expr]) -> Self {
        let group_out = group_by
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let name = match e {
                    Expr::Column { name, .. } => name.clone(),
                    _ => format!("grp{i}"),
                };
                (e.clone(), name)
            })
            .collect();
        AggRewriter {
            group_in: group_by.to_vec(),
            group_out,
            agg_out: Vec::new(),
        }
    }

    fn rewrite(&mut self, e: &Expr) -> Result<Expr, SqlError> {
        // A group-by expression anywhere in the tree becomes its key column.
        if let Some(i) = self.group_in.iter().position(|g| g == e) {
            return Ok(Expr::col(&self.group_out[i].1));
        }
        match e {
            Expr::Function { name, args } if AGGREGATE_FUNCTIONS.contains(&name.as_str()) => {
                let star = matches!(args.as_slice(), [Expr::Wildcard]);
                if !star && args.len() != 1 {
                    return Err(SqlError::Plan(format!(
                        "{name} takes exactly one argument"
                    )));
                }
                let func = AggFunc::parse(name, star)
                    .ok_or_else(|| SqlError::Plan(format!("unknown aggregate {name}")))?;
                if !star && args[0].contains_aggregate() {
                    return Err(SqlError::Plan("nested aggregates are not allowed".into()));
                }
                let arg = if star { Expr::Wildcard } else { args[0].clone() };
                // Reuse an identical aggregate if already present.
                let key = format!("{func:?}:{arg}");
                if let Some((_, _, name)) = self
                    .agg_out
                    .iter()
                    .find(|(f, a, _)| format!("{f:?}:{a}") == key && *f == func)
                {
                    return Ok(Expr::col(name));
                }
                let out_name = format!("agg{}", self.agg_out.len());
                self.agg_out.push((func, arg, out_name.clone()));
                Ok(Expr::col(&out_name))
            }
            Expr::Binary { left, op, right } => Ok(Expr::Binary {
                left: Box::new(self.rewrite(left)?),
                op: *op,
                right: Box::new(self.rewrite(right)?),
            }),
            Expr::Unary { op, expr } => Ok(Expr::Unary {
                op: *op,
                expr: Box::new(self.rewrite(expr)?),
            }),
            Expr::Function { name, args } => Ok(Expr::Function {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| self.rewrite(a))
                    .collect::<Result<_, _>>()?,
            }),
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.rewrite(expr)?),
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(Expr::Like {
                expr: Box::new(self.rewrite(expr)?),
                pattern: Box::new(self.rewrite(pattern)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(Expr::InList {
                expr: Box::new(self.rewrite(expr)?),
                list: list
                    .iter()
                    .map(|a| self.rewrite(a))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(Expr::Between {
                expr: Box::new(self.rewrite(expr)?),
                low: Box::new(self.rewrite(low)?),
                high: Box::new(self.rewrite(high)?),
                negated: *negated,
            }),
            other => Ok(other.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::parser::Statement;
    use crate::schema::Column;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("user_id", DataType::Int),
                Column::new("amount", DataType::Float),
                Column::new("category", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        db.create_table(
            "users",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        db
    }

    fn plan(sql: &str) -> LogicalPlan {
        let db = db();
        let stmt = match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        Planner::new(&db).plan_select(&stmt).unwrap()
    }

    fn plan_err(sql: &str) -> SqlError {
        let db = db();
        let stmt = match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        Planner::new(&db).plan_select(&stmt).unwrap_err()
    }

    #[test]
    fn simple_select_shape() {
        let p = plan("SELECT id, amount FROM orders WHERE amount > 10");
        let txt = p.display_indent();
        assert!(txt.starts_with("Project:"), "{txt}");
        assert!(txt.contains("Filter:"));
        assert!(txt.contains("Scan: orders"));
    }

    #[test]
    fn wildcard_expands_all_columns() {
        let p = plan("SELECT * FROM orders");
        assert_eq!(p.schema().len(), 4);
        assert_eq!(p.schema().columns()[0].name, "id");
    }

    #[test]
    fn qualified_wildcard_expands_one_side() {
        let p = plan("SELECT o.* FROM orders o JOIN users u ON o.user_id = u.id");
        assert_eq!(p.schema().len(), 4);
    }

    #[test]
    fn unknown_alias_in_wildcard_errors() {
        let e = plan_err("SELECT x.* FROM orders o");
        assert!(matches!(e, SqlError::Plan(_)));
    }

    #[test]
    fn aggregate_plan_shape() {
        let p = plan("SELECT category, SUM(amount) AS total FROM orders GROUP BY category");
        let txt = p.display_indent();
        assert!(txt.contains("Aggregate:"), "{txt}");
        assert!(txt.contains("Sum"));
        let schema = p.schema();
        assert_eq!(schema.columns()[0].name, "category");
        assert_eq!(schema.columns()[1].name, "total");
    }

    #[test]
    fn identical_aggregates_are_shared() {
        let p = plan(
            "SELECT SUM(amount), SUM(amount) + 1 FROM orders",
        );
        fn find_agg(p: &LogicalPlan) -> Option<usize> {
            match p {
                LogicalPlan::Aggregate { aggregates, .. } => Some(aggregates.len()),
                LogicalPlan::Project { input, .. }
                | LogicalPlan::Filter { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Strip { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Limit { input, .. } => find_agg(input),
                _ => None,
            }
        }
        assert_eq!(find_agg(&p), Some(1));
    }

    #[test]
    fn having_becomes_filter_above_aggregate() {
        let p = plan(
            "SELECT category FROM orders GROUP BY category HAVING COUNT(*) > 2",
        );
        let txt = p.display_indent();
        let filter_pos = txt.find("Filter:").unwrap();
        let agg_pos = txt.find("Aggregate:").unwrap();
        assert!(filter_pos < agg_pos, "{txt}");
    }

    #[test]
    fn having_without_aggregate_context_errors() {
        let e = plan_err("SELECT id FROM orders HAVING id > 2");
        // HAVING with aggregate-free select list but no GROUP BY: the
        // HAVING itself has no aggregate → rejected.
        assert!(matches!(e, SqlError::Plan(_)));
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let e = plan_err("SELECT id FROM orders WHERE SUM(amount) > 5");
        assert!(e.to_string().contains("HAVING"));
    }

    #[test]
    fn order_by_alias_resolves_to_visible_column() {
        let p = plan("SELECT amount AS a FROM orders ORDER BY a DESC");
        match &p {
            LogicalPlan::Sort { keys, .. } => assert_eq!(keys, &vec![(0, true)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_position() {
        let p = plan("SELECT id, amount FROM orders ORDER BY 2");
        match &p {
            LogicalPlan::Sort { keys, .. } => assert_eq!(keys, &vec![(1, false)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_by_position_out_of_range_errors() {
        assert!(plan_err("SELECT id FROM orders ORDER BY 3")
            .to_string()
            .contains("out of range"));
    }

    #[test]
    fn order_by_hidden_key_strips() {
        let p = plan("SELECT id FROM orders ORDER BY amount");
        match &p {
            LogicalPlan::Strip { keep, .. } => assert_eq!(*keep, 1),
            other => panic!("expected Strip, got {other:?}"),
        }
        assert_eq!(p.schema().len(), 1);
    }

    #[test]
    fn distinct_with_hidden_order_key_rejected() {
        let e = plan_err("SELECT DISTINCT id FROM orders ORDER BY amount");
        assert!(e.to_string().contains("DISTINCT"));
    }

    #[test]
    fn select_without_from() {
        let p = plan("SELECT 1 + 1 AS two");
        assert_eq!(p.schema().columns()[0].name, "two");
        let txt = p.display_indent();
        assert!(txt.contains("Values"));
    }

    #[test]
    fn group_by_expression_rewrites_in_projection() {
        let p = plan("SELECT amount * 2, COUNT(*) FROM orders GROUP BY amount * 2");
        let txt = p.display_indent();
        assert!(txt.contains("Aggregate:"), "{txt}");
    }

    #[test]
    fn nested_aggregate_rejected() {
        let e = plan_err("SELECT SUM(COUNT(*)) FROM orders");
        assert!(e.to_string().contains("nested"));
    }

    #[test]
    fn default_output_names() {
        let p = plan("SELECT id, SUM(amount) FROM orders GROUP BY id");
        let s = p.schema();
        assert_eq!(s.columns()[0].name, "id");
        assert_eq!(s.columns()[1].name, "sum");
    }

    #[test]
    fn agg_output_types() {
        assert_eq!(AggFunc::Count.output_type(DataType::Text), DataType::Int);
        assert_eq!(AggFunc::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Sum.output_type(DataType::Int), DataType::Int);
        assert_eq!(AggFunc::Min.output_type(DataType::Text), DataType::Text);
    }

    #[test]
    fn agg_parse() {
        assert_eq!(AggFunc::parse("COUNT", true), Some(AggFunc::CountStar));
        assert_eq!(AggFunc::parse("SUM", false), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("SUM", true), None);
        assert_eq!(AggFunc::parse("MEDIAN", false), None);
    }
}
