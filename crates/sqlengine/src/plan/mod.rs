//! Query planning: AST → logical plan → optimized logical plan.

pub mod logical;
pub mod optimizer;

pub use logical::{AggFunc, LogicalPlan, Planner};
pub use optimizer::Optimizer;
