//! Rule-based logical-plan optimizer.
//!
//! Three classic rules, applied to fixpoint in one pass each (the rules do
//! not enable each other more than once in this plan algebra):
//!
//! 1. **Constant folding** — expression subtrees without column references
//!    are pre-evaluated.
//! 2. **Predicate pushdown** — filters migrate through joins toward scans,
//!    and land inside [`LogicalPlan::Scan`] nodes.
//! 3. **Projection pruning** — scans read only the columns the rest of the
//!    plan actually uses.
//!
//! Benchmark E4 (`sql_bench`) measures these rules' effect.

use std::collections::HashSet;
use std::sync::Arc;

use crate::error::SqlError;
use crate::expr::{BinOp, Expr};
use crate::parser::JoinKind;
use crate::row::Row;
use crate::schema::{Schema, SchemaRef};
use crate::value::Value;

use super::logical::LogicalPlan;

/// The optimizer. Stateless; configuration selects rules (for ablations).
#[derive(Debug, Clone, Copy)]
pub struct Optimizer {
    /// Enable constant folding.
    pub fold_constants: bool,
    /// Enable predicate pushdown.
    pub pushdown_predicates: bool,
    /// Enable projection pruning.
    pub prune_projections: bool,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            fold_constants: true,
            pushdown_predicates: true,
            prune_projections: true,
        }
    }
}

impl Optimizer {
    /// All rules on.
    pub fn new() -> Self {
        Optimizer::default()
    }

    /// Every rule off (the ablation baseline).
    pub fn disabled() -> Self {
        Optimizer {
            fold_constants: false,
            pushdown_predicates: false,
            prune_projections: false,
        }
    }

    /// Optimize a plan.
    pub fn optimize(&self, plan: LogicalPlan) -> Result<LogicalPlan, SqlError> {
        let mut plan = plan;
        if self.fold_constants {
            plan = fold_plan(plan)?;
        }
        if self.pushdown_predicates {
            plan = pushdown(plan)?;
        }
        if self.prune_projections {
            plan = prune(plan)?;
        }
        Ok(plan)
    }
}

// ---------- rule 1: constant folding ----------

/// Fold constants in every expression of the plan.
fn fold_plan(plan: LogicalPlan) -> Result<LogicalPlan, SqlError> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_plan(*input)?),
            predicate: fold_expr(predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(fold_plan(*input)?),
            exprs: exprs
                .into_iter()
                .map(|(e, n)| (fold_expr(e), n))
                .collect(),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(fold_plan(*left)?),
            right: Box::new(fold_plan(*right)?),
            kind,
            on: fold_expr(on),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_plan(*input)?),
            group_exprs: group_exprs
                .into_iter()
                .map(|(e, n)| (fold_expr(e), n))
                .collect(),
            aggregates: aggregates
                .into_iter()
                .map(|(f, e, n)| (f, fold_expr(e), n))
                .collect(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_plan(*input)?),
            keys,
        },
        LogicalPlan::Strip { input, keep } => LogicalPlan::Strip {
            input: Box::new(fold_plan(*input)?),
            keep,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(fold_plan(*input)?),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(fold_plan(*input)?),
            n,
        },
        LogicalPlan::Union { inputs, dedupe } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(fold_plan)
                .collect::<Result<_, _>>()?,
            dedupe,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    })
}

/// Fold one expression: evaluate column-free subtrees.
pub fn fold_expr(e: Expr) -> Expr {
    // Recurse first so inner folds expose outer opportunities.
    let e = match e {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(fold_expr(*left)),
            op,
            right: Box::new(fold_expr(*right)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(fold_expr(*expr)),
        },
        Expr::Function { name, args } => Expr::Function {
            name,
            args: args.into_iter().map(fold_expr).collect(),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(fold_expr(*expr)),
            negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(fold_expr(*expr)),
            pattern: Box::new(fold_expr(*pattern)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(fold_expr(*expr)),
            list: list.into_iter().map(fold_expr).collect(),
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(fold_expr(*expr)),
            low: Box::new(fold_expr(*low)),
            high: Box::new(fold_expr(*high)),
            negated,
        },
        other => other,
    };
    if matches!(e, Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard) {
        return e;
    }
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    if !cols.is_empty() || e.contains_aggregate() {
        return e;
    }
    // Column-free: evaluate against an empty row. Errors (e.g. division by
    // zero) must surface at execution time, so keep the original on error.
    let empty_schema = Schema::new_unchecked(vec![]);
    match e.eval(&Row::default(), &empty_schema) {
        Ok(v) => Expr::Literal(v),
        Err(_) => e,
    }
}

// ---------- rule 2: predicate pushdown ----------

/// Split a conjunction into its AND-ed factors.
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            left,
            op: BinOp::And,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Rebuild a conjunction from factors.
fn join_conjuncts(mut parts: Vec<Expr>) -> Option<Expr> {
    let mut acc = parts.pop()?;
    while let Some(p) = parts.pop() {
        acc = Expr::binary(p, BinOp::And, acc);
    }
    Some(acc)
}

/// Can `e` be evaluated using only columns of `schema`?
fn bound_by(e: &Expr, schema: &SchemaRef) -> bool {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    cols.iter()
        .all(|(t, n)| schema.resolve(t.as_deref(), n).is_ok())
}

/// Push filters down toward scans.
fn pushdown(plan: LogicalPlan) -> Result<LogicalPlan, SqlError> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let input = pushdown(*input)?;
            push_filter(input, predicate)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(pushdown(*input)?),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(pushdown(*left)?),
            right: Box::new(pushdown(*right)?),
            kind,
            on,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(pushdown(*input)?),
            group_exprs,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(pushdown(*input)?),
            keys,
        },
        LogicalPlan::Strip { input, keep } => LogicalPlan::Strip {
            input: Box::new(pushdown(*input)?),
            keep,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(pushdown(*input)?),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(pushdown(*input)?),
            n,
        },
        LogicalPlan::Union { inputs, dedupe } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(pushdown)
                .collect::<Result<_, _>>()?,
            dedupe,
        },
        leaf => leaf,
    })
}

/// Push one filter predicate into `input` as far as possible.
fn push_filter(input: LogicalPlan, predicate: Expr) -> Result<LogicalPlan, SqlError> {
    match input {
        LogicalPlan::Scan {
            table,
            qualifier,
            schema,
            projection,
            filter,
        } => {
            let merged = match filter {
                Some(f) => Expr::binary(f, BinOp::And, predicate),
                None => predicate,
            };
            Ok(LogicalPlan::Scan {
                table,
                qualifier,
                schema,
                projection,
                filter: Some(merged),
            })
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let mut parts = Vec::new();
            split_conjuncts(predicate, &mut parts);
            let lschema = left.schema();
            let rschema = right.schema();
            let mut push_left = Vec::new();
            let mut push_right = Vec::new();
            let mut keep = Vec::new();
            for p in parts {
                if bound_by(&p, &lschema) {
                    push_left.push(p);
                } else if bound_by(&p, &rschema) && kind == JoinKind::Inner {
                    // Right-side pushdown through a LEFT join would change
                    // NULL-extension semantics; only legal for INNER.
                    push_right.push(p);
                } else {
                    keep.push(p);
                }
            }
            let mut new_left = *left;
            if let Some(f) = join_conjuncts(push_left) {
                new_left = push_filter(new_left, f)?;
            }
            let mut new_right = *right;
            if let Some(f) = join_conjuncts(push_right) {
                new_right = push_filter(new_right, f)?;
            }
            let joined = LogicalPlan::Join {
                left: Box::new(new_left),
                right: Box::new(new_right),
                kind,
                on,
            };
            Ok(match join_conjuncts(keep) {
                Some(f) => LogicalPlan::Filter {
                    input: Box::new(joined),
                    predicate: f,
                },
                None => joined,
            })
        }
        LogicalPlan::Filter {
            input,
            predicate: inner,
        } => {
            // Merge adjacent filters, then continue pushing.
            push_filter(*input, Expr::binary(inner, BinOp::And, predicate))
        }
        other => Ok(LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

// ---------- rule 3: projection pruning ----------

/// Prune unused columns from scans.
fn prune(plan: LogicalPlan) -> Result<LogicalPlan, SqlError> {
    // Collect, per scan qualifier, the columns needed above it.
    // Strategy: walk top-down carrying the set of needed (qualifier, name)
    // pairs; at a scan, install a projection if the needed set is a proper
    // subset. `None` means "everything" (e.g. below Distinct on *).
    prune_node(plan, None)
}

type Needed = HashSet<(Option<String>, String)>;

fn expr_needs(e: &Expr, needed: &mut Needed) {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    for c in cols {
        needed.insert(c);
    }
}

fn prune_node(plan: LogicalPlan, needed: Option<&Needed>) -> Result<LogicalPlan, SqlError> {
    Ok(match plan {
        LogicalPlan::Project { input, exprs } => {
            let mut need = HashSet::new();
            for (e, _) in &exprs {
                expr_needs(e, &mut need);
            }
            LogicalPlan::Project {
                input: Box::new(prune_node(*input, Some(&need))?),
                exprs,
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => {
            let mut need = HashSet::new();
            for (e, _) in &group_exprs {
                expr_needs(e, &mut need);
            }
            for (_, e, _) in &aggregates {
                expr_needs(e, &mut need);
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune_node(*input, Some(&need))?),
                group_exprs,
                aggregates,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut need = needed.cloned().unwrap_or_default();
            let pass_all = needed.is_none();
            expr_needs(&predicate, &mut need);
            LogicalPlan::Filter {
                input: Box::new(prune_node(
                    *input,
                    if pass_all { None } else { Some(&need) },
                )?),
                predicate,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (lneeded, rneeded);
            let (lref, rref) = match needed {
                Some(n) => {
                    let mut need = n.clone();
                    expr_needs(&on, &mut need);
                    let lschema = left.schema();
                    let rschema = right.schema();
                    lneeded = need
                        .iter()
                        .filter(|(t, c)| lschema.resolve(t.as_deref(), c).is_ok())
                        .cloned()
                        .collect::<Needed>();
                    rneeded = need
                        .iter()
                        .filter(|(t, c)| rschema.resolve(t.as_deref(), c).is_ok())
                        .cloned()
                        .collect::<Needed>();
                    (Some(&lneeded), Some(&rneeded))
                }
                None => (None, None),
            };
            LogicalPlan::Join {
                left: Box::new(prune_node(*left, lref)?),
                right: Box::new(prune_node(*right, rref)?),
                kind,
                on,
            }
        }
        // Sort keys are positional — pruning below would shift positions,
        // so stop propagating the needed-set there.
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(prune_node(*input, None)?),
            keys,
        },
        LogicalPlan::Strip { input, keep } => LogicalPlan::Strip {
            input: Box::new(prune_node(*input, None)?),
            keep,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(prune_node(*input, None)?),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune_node(*input, None)?),
            n,
        },
        // Union output is positional across arms — don't prune below.
        LogicalPlan::Union { inputs, dedupe } => LogicalPlan::Union {
            inputs: inputs
                .into_iter()
                .map(|i| prune_node(i, None))
                .collect::<Result<_, _>>()?,
            dedupe,
        },
        LogicalPlan::Scan {
            table,
            qualifier,
            schema,
            projection,
            filter,
        } => {
            let needed = match needed {
                Some(n) => n,
                None => {
                    return Ok(LogicalPlan::Scan {
                        table,
                        qualifier,
                        schema,
                        projection,
                        filter,
                    })
                }
            };
            // The scan's own filter needs its columns too.
            let mut need = needed.clone();
            if let Some(f) = &filter {
                expr_needs(f, &mut need);
            }
            let mut keep_indices: Vec<usize> = Vec::new();
            for (i, c) in schema.columns().iter().enumerate() {
                let wanted = need.iter().any(|(t, n)| {
                    n == &c.name
                        && match t {
                            Some(t) => c.table.as_deref() == Some(t.as_str()),
                            None => true,
                        }
                });
                if wanted {
                    keep_indices.push(i);
                }
            }
            if keep_indices.len() == schema.len() {
                return Ok(LogicalPlan::Scan {
                    table,
                    qualifier,
                    schema,
                    projection,
                    filter,
                });
            }
            let new_schema = Arc::new(Schema::new_unchecked(
                keep_indices
                    .iter()
                    .map(|&i| schema.columns()[i].clone())
                    .collect(),
            ));
            // Compose with an existing projection if present.
            let base_indices = match &projection {
                Some(prev) => keep_indices.iter().map(|&i| prev[i]).collect(),
                None => keep_indices,
            };
            LogicalPlan::Scan {
                table,
                qualifier,
                schema: new_schema,
                projection: Some(base_indices),
                filter,
            }
        }
        leaf @ LogicalPlan::Values { .. } => leaf,
    })
}

/// Simplify a filter that folded to a constant TRUE (drop) or FALSE
/// (replace input with empty Values). Exposed for the executor to use.
pub fn simplify_constant_filter(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => match &predicate {
            Expr::Literal(Value::Bool(true)) => simplify_constant_filter(*input),
            Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => {
                LogicalPlan::Values {
                    schema: input.schema(),
                    rows: 0,
                }
            }
            _ => LogicalPlan::Filter {
                input: Box::new(simplify_constant_filter(*input)),
                predicate,
            },
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(simplify_constant_filter(*input)),
            exprs,
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(simplify_constant_filter(*left)),
            right: Box::new(simplify_constant_filter(*right)),
            kind,
            on,
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(simplify_constant_filter(*input)),
            group_exprs,
            aggregates,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(simplify_constant_filter(*input)),
            keys,
        },
        LogicalPlan::Strip { input, keep } => LogicalPlan::Strip {
            input: Box::new(simplify_constant_filter(*input)),
            keep,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(simplify_constant_filter(*input)),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(simplify_constant_filter(*input)),
            n,
        },
        LogicalPlan::Union { inputs, dedupe } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(simplify_constant_filter).collect(),
            dedupe,
        },
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::parser::{parse, Statement};
    use crate::plan::logical::Planner;
    use crate::schema::Column;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "orders",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("user_id", DataType::Int),
                Column::new("amount", DataType::Float),
                Column::new("category", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        db.create_table(
            "users",
            Schema::new(vec![
                Column::new("id", DataType::Int),
                Column::new("name", DataType::Text),
            ])
            .unwrap(),
            false,
        )
        .unwrap();
        db
    }

    fn optimized(sql: &str) -> LogicalPlan {
        let db = db();
        let stmt = match parse(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = Planner::new(&db).plan_select(&stmt).unwrap();
        Optimizer::new().optimize(plan).unwrap()
    }

    #[test]
    fn constant_folding_in_filter() {
        let p = optimized("SELECT id FROM orders WHERE amount > 2 + 3");
        let txt = p.display_indent();
        assert!(txt.contains("5"), "{txt}");
        assert!(!txt.contains("(2 + 3)"), "{txt}");
    }

    #[test]
    fn fold_expr_preserves_errors() {
        // 1/0 must NOT fold away — the error belongs to execution.
        let e = Expr::binary(Expr::lit(1i64), BinOp::Div, Expr::lit(0i64));
        let folded = fold_expr(e.clone());
        assert_eq!(folded, e);
    }

    #[test]
    fn fold_expr_handles_nested() {
        let e = Expr::binary(
            Expr::binary(Expr::lit(2i64), BinOp::Mul, Expr::lit(3i64)),
            BinOp::Add,
            Expr::col("x"),
        );
        let folded = fold_expr(e);
        assert_eq!(
            folded,
            Expr::binary(Expr::lit(6i64), BinOp::Add, Expr::col("x"))
        );
    }

    #[test]
    fn filter_lands_in_scan() {
        let p = optimized("SELECT id FROM orders WHERE amount > 10");
        let txt = p.display_indent();
        // No standalone Filter node; predicate embedded in scan.
        assert!(!txt.contains("\nFilter"), "{txt}");
        assert!(txt.contains("Scan: orders"), "{txt}");
        assert!(txt.contains("filter="), "{txt}");
    }

    #[test]
    fn join_pushdown_splits_sides() {
        let p = optimized(
            "SELECT o.id FROM orders o JOIN users u ON o.user_id = u.id \
             WHERE o.amount > 10 AND u.name = 'bob'",
        );
        let txt = p.display_indent();
        // Both scans should carry their own filter.
        let scan_lines: Vec<&str> = txt.lines().filter(|l| l.contains("Scan:")).collect();
        assert_eq!(scan_lines.len(), 2);
        assert!(scan_lines.iter().all(|l| l.contains("filter=")), "{txt}");
    }

    #[test]
    fn left_join_keeps_right_side_filters_above() {
        let p = optimized(
            "SELECT o.id FROM orders o LEFT JOIN users u ON o.user_id = u.id \
             WHERE u.name = 'bob'",
        );
        let txt = p.display_indent();
        // users scan must NOT have the filter; it stays above the join.
        let users_scan = txt.lines().find(|l| l.contains("Scan: users")).unwrap();
        assert!(!users_scan.contains("filter="), "{txt}");
        assert!(txt.contains("Filter:"), "{txt}");
    }

    #[test]
    fn projection_pruning_installs_indices() {
        let p = optimized("SELECT amount FROM orders");
        let txt = p.display_indent();
        assert!(txt.contains("projection=[2]"), "{txt}");
    }

    #[test]
    fn pruning_keeps_filter_columns() {
        let p = optimized("SELECT amount FROM orders WHERE id = 3");
        let txt = p.display_indent();
        // Needs both id (filter) and amount (projection).
        assert!(txt.contains("projection=[0, 2]"), "{txt}");
    }

    #[test]
    fn select_star_prunes_nothing() {
        let p = optimized("SELECT * FROM orders");
        let txt = p.display_indent();
        assert!(!txt.contains("projection="), "{txt}");
    }

    #[test]
    fn disabled_optimizer_is_identity() {
        let db = db();
        let stmt = match parse("SELECT id FROM orders WHERE amount > 2 + 3").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = Planner::new(&db).plan_select(&stmt).unwrap();
        let same = Optimizer::disabled().optimize(plan.clone()).unwrap();
        assert_eq!(plan, same);
    }

    #[test]
    fn split_and_join_conjuncts_roundtrip() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinOp::Gt, Expr::lit(1i64)),
            BinOp::And,
            Expr::binary(Expr::col("b"), BinOp::Lt, Expr::lit(2i64)),
        );
        let mut parts = Vec::new();
        split_conjuncts(e, &mut parts);
        assert_eq!(parts.len(), 2);
        let rebuilt = join_conjuncts(parts).unwrap();
        let mut again = Vec::new();
        split_conjuncts(rebuilt, &mut again);
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn simplify_false_filter_empties_plan() {
        let db = db();
        let stmt = match parse("SELECT id FROM orders WHERE 1 = 2").unwrap() {
            Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let plan = Planner::new(&db).plan_select(&stmt).unwrap();
        // Fold to FALSE first, then simplify. Pushdown puts it in the scan,
        // so simplify before pushdown.
        let folded = fold_plan(plan).unwrap();
        let simplified = simplify_constant_filter(folded);
        let txt = simplified.display_indent();
        assert!(txt.contains("Values: 0"), "{txt}");
    }
}
