//! The top-level engine: SQL text in, rows out.

use std::sync::Arc;

use dbgpt_obs::Span;

use crate::catalog::Database;
use crate::error::SqlError;
use crate::exec::vectorized::{execute_plan_columnar_with_stats, ExecStats};
use crate::exec::{execute_plan, ExecConfig, ExecMode};
use crate::parser::{parse, Statement};
use crate::plan::logical::{LogicalPlan, Planner};
use crate::plan::optimizer::Optimizer;
use crate::row::Row;
use crate::schema::{Column, Schema, SchemaRef};
use crate::storage::{StorageConfig, TableHeap};
use crate::value::Value;

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Column names/types of the result (empty for DDL/DML).
    pub schema: SchemaRef,
    /// Result rows (empty for DDL/DML).
    pub rows: Vec<Row>,
    /// Rows affected by DML (0 for queries/DDL).
    pub rows_affected: usize,
}

impl QueryResult {
    /// An empty result with `rows_affected` set.
    fn affected(n: usize) -> QueryResult {
        QueryResult {
            schema: Arc::new(Schema::new_unchecked(vec![])),
            rows: Vec::new(),
            rows_affected: n,
        }
    }

    /// Column names of the result.
    pub fn column_names(&self) -> Vec<&str> {
        self.schema.columns().iter().map(|c| c.name.as_str()).collect()
    }

    /// Render an ASCII table (used by examples and the Chat2DB app).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        if headers.is_empty() {
            return format!("({} row(s) affected)", self.rows_affected);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep = |widths: &[usize]| {
            let mut s = String::from("+");
            for w in widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s.push('\n');
            s
        };
        let fmt_row = |cols: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cols.iter().zip(widths) {
                s.push_str(&format!(" {c:<w$} |", w = w));
            }
            s.push('\n');
            s
        };
        let mut out = sep(&widths);
        out.push_str(&fmt_row(&headers, &widths));
        out.push_str(&sep(&widths));
        for row in &cells {
            out.push_str(&fmt_row(row, &widths));
        }
        out.push_str(&sep(&widths));
        out
    }
}

/// The SQL engine: a [`Database`] plus the query pipeline.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    db: Database,
    optimizer: Optimizer,
    exec: ExecConfig,
}

impl Engine {
    /// Empty engine with the optimizer on and the row executor (default).
    pub fn new() -> Self {
        Engine {
            db: Database::new(),
            optimizer: Optimizer::new(),
            exec: ExecConfig::default(),
        }
    }

    /// Engine with a custom optimizer configuration (for ablations).
    pub fn with_optimizer(optimizer: Optimizer) -> Self {
        Engine {
            db: Database::new(),
            optimizer,
            exec: ExecConfig::default(),
        }
    }

    /// Engine with a custom executor selection.
    pub fn with_exec(exec: ExecConfig) -> Self {
        Engine {
            db: Database::new(),
            optimizer: Optimizer::new(),
            exec,
        }
    }

    /// Engine on the given storage arm (see [`StorageConfig`]); the
    /// default [`StorageConfig::InMemory`] is exactly [`Engine::new`].
    pub fn with_storage(storage: StorageConfig) -> Self {
        Engine::with_exec_and_storage(ExecConfig::default(), storage)
    }

    /// Engine with both an executor selection and a storage arm.
    pub fn with_exec_and_storage(exec: ExecConfig, storage: StorageConfig) -> Self {
        Engine {
            db: Database::with_storage(storage),
            optimizer: Optimizer::new(),
            exec,
        }
    }

    /// Switch executor at runtime (queries only; DML is unaffected).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// The current executor selection.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// Make sure every table a plan scans has fresh read-path caches:
    /// paged tables rebuild stale B+-trees (the immutable executor cannot),
    /// and — in columnar mode — in-memory tables refresh their columnar
    /// mirror so the vectorized executor does not rebuild it per query.
    fn refresh_scan_caches(&mut self, plan: &LogicalPlan) {
        let mut tables = Vec::new();
        collect_scan_tables(plan, &mut tables);
        let columnar = self.exec.mode == ExecMode::Columnar;
        for name in tables {
            if let Ok(t) = self.db.table_mut(&name) {
                if t.is_paged() {
                    t.refresh_indexes();
                } else if columnar {
                    t.refresh_columnar();
                }
            }
        }
    }

    /// Execute an optimized SELECT plan with the configured executor.
    fn run_plan(
        &mut self,
        plan: &LogicalPlan,
        stats: &mut ExecStats,
    ) -> Result<crate::row::RowBatch, SqlError> {
        self.refresh_scan_caches(plan);
        match self.exec.mode {
            ExecMode::Row => execute_plan(plan, &self.db),
            ExecMode::Columnar => execute_plan_columnar_with_stats(plan, &self.db, stats),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database (bulk loads).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, SqlError> {
        let stmt = parse(sql)?;
        self.run_statement(stmt)
    }

    /// [`Engine::execute`] with `sql.parse` / `sql.plan` / `sql.exec`
    /// stage spans joined to `parent`'s trace, row counts as attributes.
    /// With a non-recording parent this is exactly [`Engine::execute`].
    pub fn execute_traced(&mut self, sql: &str, parent: &Span) -> Result<QueryResult, SqlError> {
        if !parent.is_recording() {
            return self.execute(sql);
        }
        let obs = parent.handle();
        let span = parent.child("sql.execute", parent.tick());
        obs.counter("sql.statements", 1);
        let parse_span = span.child("sql.parse", span.tick());
        let parsed = parse(sql);
        parse_span.end(span.tick());
        let stmt = match parsed {
            Ok(stmt) => stmt,
            Err(e) => {
                obs.counter("sql.errors", 1);
                span.attr("outcome", "parse_error");
                span.end(span.tick());
                return Err(e);
            }
        };
        let result = match stmt {
            // SELECT splits into plan + exec stages; everything else is
            // one exec stage around the statement runner.
            Statement::Select(sel) => {
                let plan_span = span.child("sql.plan", span.tick());
                let plan = Planner::new(&self.db)
                    .plan_select(&sel)
                    .and_then(|p| self.optimizer.optimize(p));
                plan_span.end(span.tick());
                plan.and_then(|plan| {
                    let exec_span = span.child("sql.exec", span.tick());
                    let pool_before = self.db.pager().map(|p| p.counters());
                    let mut stats = ExecStats::default();
                    let batch = self.run_plan(&plan, &mut stats);
                    if let Ok(b) = &batch {
                        exec_span.attr("rows", b.rows.len());
                    }
                    if self.exec.mode == ExecMode::Columnar {
                        exec_span.attr("chunks", stats.chunks);
                        exec_span.attr("rows_scanned", stats.rows_scanned);
                        obs.counter("sql.chunks_scanned", stats.chunks);
                        obs.counter("sql.rows_scanned", stats.rows_scanned);
                    }
                    self.record_pool_deltas(&exec_span, &obs, pool_before);
                    exec_span.end(span.tick());
                    batch.map(|batch| QueryResult {
                        schema: batch.schema,
                        rows: batch.rows,
                        rows_affected: 0,
                    })
                })
            }
            other => {
                let exec_span = span.child("sql.exec", span.tick());
                let pool_before = self.db.pager().map(|p| p.counters());
                let r = self.run_statement(other);
                if let Ok(q) = &r {
                    exec_span.attr("rows_affected", q.rows_affected);
                }
                self.record_pool_deltas(&exec_span, &obs, pool_before);
                exec_span.end(span.tick());
                r
            }
        };
        match &result {
            Ok(q) => {
                span.attr("rows", q.rows.len());
                span.attr("rows_affected", q.rows_affected);
                obs.counter("sql.rows_out", q.rows.len() as u64);
            }
            Err(_) => {
                obs.counter("sql.errors", 1);
                span.attr("outcome", "error");
            }
        }
        span.end(span.tick());
        result
    }

    /// Record buffer-pool counter deltas (hits/misses/evictions/dirty
    /// writebacks) on a `sql.exec` span and the global metrics. No-op for
    /// in-memory storage, where `before` is `None`.
    fn record_pool_deltas(
        &self,
        exec_span: &Span,
        obs: &dbgpt_obs::Obs,
        before: Option<crate::storage::PoolCounters>,
    ) {
        let (before, pager) = match (before, self.db.pager()) {
            (Some(b), Some(p)) => (b, p),
            _ => return,
        };
        let after = pager.counters();
        let deltas = [
            ("pool_hits", "sql.pool.hits", after.hits - before.hits),
            ("pool_misses", "sql.pool.misses", after.misses - before.misses),
            (
                "pool_evictions",
                "sql.pool.evictions",
                after.evictions - before.evictions,
            ),
            (
                "pool_writebacks",
                "sql.pool.writebacks",
                after.writebacks - before.writebacks,
            ),
        ];
        for (attr, counter, delta) in deltas {
            exec_span.attr(attr, delta);
            obs.counter(counter, delta);
        }
    }

    /// Run one already-parsed statement (the shared tail of
    /// [`Engine::execute`] and [`Engine::execute_traced`]).
    fn run_statement(&mut self, stmt: Statement) -> Result<QueryResult, SqlError> {
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| Column::new(n, t))
                        .collect(),
                )?;
                self.db.create_table(&name, schema, if_not_exists)?;
                Ok(QueryResult::affected(0))
            }
            Statement::DropTable { name, if_exists } => {
                self.db.drop_table(&name, if_exists)?;
                Ok(QueryResult::affected(0))
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.db.table_mut(&table)?.create_index(&name, &column)?;
                Ok(QueryResult::affected(0))
            }
            Statement::DropIndex { name, table } => {
                self.db.table_mut(&table)?.drop_index(&name)?;
                Ok(QueryResult::affected(0))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let empty_schema = Schema::new_unchecked(vec![]);
                let empty_row = Row::default();
                // Pre-compute the value layout.
                let table_schema = self.db.table(&table)?.schema.clone();
                let positions: Vec<usize> = match &columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| table_schema.index_of(c))
                        .collect::<Result<_, _>>()?,
                    None => (0..table_schema.len()).collect(),
                };
                let mut inserted = 0usize;
                for row_exprs in rows {
                    if row_exprs.len() != positions.len() {
                        return Err(SqlError::Execution(format!(
                            "INSERT expects {} values per row, got {}",
                            positions.len(),
                            row_exprs.len()
                        )));
                    }
                    let mut vals = vec![Value::Null; table_schema.len()];
                    for (expr, &pos) in row_exprs.iter().zip(&positions) {
                        vals[pos] = expr.eval(&empty_row, &empty_schema)?;
                    }
                    self.db.table_mut(&table)?.insert_row(vals)?;
                    inserted += 1;
                }
                Ok(QueryResult::affected(inserted))
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let t = self.db.table_mut(&table)?;
                let schema = t.schema.clone();
                let targets: Vec<(usize, &crate::expr::Expr)> = assignments
                    .iter()
                    .map(|(col, e)| Ok((schema.index_of(col)?, e)))
                    .collect::<Result<_, SqlError>>()?;
                if t.is_paged() {
                    // Streaming heap rewrite. Semantics mirror the in-memory
                    // arm exactly: rows updated before the first error keep
                    // their new values, later rows are copied unchanged, and
                    // the error path leaves index staleness untouched.
                    let pager = Arc::clone(t.pager().expect("paged table"));
                    let heap = t.heap().expect("paged table").clone();
                    let mut new_heap = TableHeap::new();
                    let mut updated = 0usize;
                    let mut first_err: Option<SqlError> = None;
                    for i in 0..heap.page_count() {
                        let page_rows = heap.read_page(&mut pager.pool(), i)?;
                        for vals in page_rows {
                            let mut row = Row::new(vals);
                            if first_err.is_none() {
                                let step = (|| {
                                    let hit = match &filter {
                                        Some(f) => f.eval(&row, &schema)?.is_truthy(),
                                        None => true,
                                    };
                                    if !hit {
                                        return Ok(None);
                                    }
                                    let mut new_vals = Vec::with_capacity(targets.len());
                                    for (idx, e) in &targets {
                                        let v = e.eval(&row, &schema)?;
                                        let ty = schema.columns()[*idx].data_type;
                                        new_vals.push((*idx, v.coerce_to(ty)?));
                                    }
                                    Ok(Some(new_vals))
                                })();
                                match step {
                                    Ok(Some(new_vals)) => {
                                        for (idx, v) in new_vals {
                                            row.values_mut()[idx] = v;
                                        }
                                        updated += 1;
                                    }
                                    Ok(None) => {}
                                    Err(e) => first_err = Some(e),
                                }
                            }
                            new_heap.append_row(&mut pager.pool(), row.values())?;
                        }
                    }
                    let t = self.db.table_mut(&table)?;
                    t.replace_heap(new_heap)?;
                    if let Some(e) = first_err {
                        return Err(e);
                    }
                    if updated > 0 {
                        t.mark_indexes_stale();
                    }
                    return Ok(QueryResult::affected(updated));
                }
                let mut updated = 0usize;
                for row in t.rows.iter_mut() {
                    let hit = match &filter {
                        Some(f) => f.eval(row, &schema)?.is_truthy(),
                        None => true,
                    };
                    if !hit {
                        continue;
                    }
                    // Evaluate all assignments against the *old* row.
                    let mut new_vals = Vec::with_capacity(targets.len());
                    for (idx, e) in &targets {
                        let v = e.eval(row, &schema)?;
                        let ty = schema.columns()[*idx].data_type;
                        new_vals.push((*idx, v.coerce_to(ty)?));
                    }
                    for (idx, v) in new_vals {
                        row.values_mut()[idx] = v;
                    }
                    updated += 1;
                }
                if updated > 0 {
                    self.db.table_mut(&table)?.mark_indexes_stale();
                }
                Ok(QueryResult::affected(updated))
            }
            Statement::Delete { table, filter } => {
                let t = self.db.table_mut(&table)?;
                let schema = t.schema.clone();
                if t.is_paged() {
                    // Streaming heap rewrite mirroring the in-memory arm:
                    // rows whose filter errors are kept, the full pass
                    // completes, and the first error is returned at the end
                    // (without marking indexes stale — same as in-memory).
                    let pager = Arc::clone(t.pager().expect("paged table"));
                    let heap = t.heap().expect("paged table").clone();
                    let before = heap.len();
                    let mut new_heap = TableHeap::new();
                    let mut err: Option<SqlError> = None;
                    if let Some(f) = &filter {
                        for i in 0..heap.page_count() {
                            let page_rows = heap.read_page(&mut pager.pool(), i)?;
                            for vals in page_rows {
                                let row = Row::new(vals);
                                let keep = match f.eval(&row, &schema) {
                                    Ok(v) => !v.is_truthy(),
                                    Err(e) => {
                                        err.get_or_insert(e);
                                        true
                                    }
                                };
                                if keep {
                                    new_heap.append_row(&mut pager.pool(), row.values())?;
                                }
                            }
                        }
                    }
                    let after = new_heap.len();
                    let t = self.db.table_mut(&table)?;
                    t.replace_heap(new_heap)?;
                    if let Some(e) = err {
                        return Err(e);
                    }
                    let removed = before - after;
                    if removed > 0 {
                        t.mark_indexes_stale();
                    }
                    return Ok(QueryResult::affected(removed));
                }
                let before = t.rows.len();
                match filter {
                    Some(f) => {
                        let mut err = None;
                        t.rows.retain(|row| match f.eval(row, &schema) {
                            Ok(v) => !v.is_truthy(),
                            Err(e) => {
                                err.get_or_insert(e);
                                true
                            }
                        });
                        if let Some(e) = err {
                            return Err(e);
                        }
                    }
                    None => t.rows.clear(),
                }
                let removed = before - t.rows.len();
                if removed > 0 {
                    t.mark_indexes_stale();
                }
                Ok(QueryResult::affected(removed))
            }
            Statement::Select(sel) => {
                let plan = Planner::new(&self.db).plan_select(&sel)?;
                let plan = self.optimizer.optimize(plan)?;
                let mut stats = ExecStats::default();
                let batch = self.run_plan(&plan, &mut stats)?;
                Ok(QueryResult {
                    schema: batch.schema,
                    rows: batch.rows,
                    rows_affected: 0,
                })
            }
        }
    }

    /// Execute a query and pretty-print it (convenience for demos).
    pub fn query_table(&mut self, sql: &str) -> Result<String, SqlError> {
        Ok(self.execute(sql)?.to_table())
    }

    /// Render an `EXPLAIN`-style plan for a SELECT.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        match parse(sql)? {
            Statement::Select(sel) => {
                let plan = Planner::new(&self.db).plan_select(&sel)?;
                let plan = self.optimizer.optimize(plan)?;
                Ok(plan.display_indent())
            }
            other => Err(SqlError::Plan(format!(
                "EXPLAIN supports SELECT only, got {other:?}"
            ))),
        }
    }
}

/// Names of the tables a plan's scans touch.
fn collect_scan_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::Scan { table, .. } => out.push(table.clone()),
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Strip { input, .. }
        | LogicalPlan::Distinct { input }
        | LogicalPlan::Limit { input, .. } => collect_scan_tables(input, out),
        LogicalPlan::Join { left, right, .. } => {
            collect_scan_tables(left, out);
            collect_scan_tables(right, out);
        }
        LogicalPlan::Union { inputs, .. } => {
            for i in inputs {
                collect_scan_tables(i, out);
            }
        }
        LogicalPlan::Values { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (id INT, name TEXT, score FLOAT)")
            .unwrap();
        e.execute(
            "INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'c', 3.5)",
        )
        .unwrap();
        e
    }

    #[test]
    fn end_to_end_select() {
        let mut e = engine();
        let r = e.execute("SELECT name FROM t WHERE id >= 2 ORDER BY id DESC").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0].to_string(), "c");
        assert_eq!(r.column_names(), vec!["name"]);
    }

    #[test]
    fn insert_reports_count() {
        let mut e = engine();
        let r = e.execute("INSERT INTO t VALUES (4, 'd', 4.5)").unwrap();
        assert_eq!(r.rows_affected, 1);
        let r = e.execute("INSERT INTO t VALUES (5, 'e', 0.0), (6, 'f', 0.0)").unwrap();
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut e = engine();
        e.execute("INSERT INTO t (id) VALUES (9)").unwrap();
        let r = e.execute("SELECT name FROM t WHERE id = 9").unwrap();
        assert!(r.rows[0][0].is_null());
    }

    #[test]
    fn insert_arity_mismatch_rejected() {
        let mut e = engine();
        assert!(e.execute("INSERT INTO t (id, name) VALUES (1)").is_err());
    }

    #[test]
    fn update_with_filter() {
        let mut e = engine();
        let r = e.execute("UPDATE t SET score = score * 2 WHERE id > 1").unwrap();
        assert_eq!(r.rows_affected, 2);
        let r = e.execute("SELECT score FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "1.5");
        assert_eq!(r.rows[1][0].to_string(), "5.0");
    }

    #[test]
    fn update_swap_uses_old_values() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE p (a INT, b INT)").unwrap();
        e.execute("INSERT INTO p VALUES (1, 2)").unwrap();
        e.execute("UPDATE p SET a = b, b = a").unwrap();
        let r = e.execute("SELECT a, b FROM p").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        assert_eq!(r.rows[0][1], Value::Int(1));
    }

    #[test]
    fn delete_with_and_without_filter() {
        let mut e = engine();
        let r = e.execute("DELETE FROM t WHERE id = 1").unwrap();
        assert_eq!(r.rows_affected, 1);
        let r = e.execute("DELETE FROM t").unwrap();
        assert_eq!(r.rows_affected, 2);
        let r = e.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn ddl_lifecycle() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE x (a INT)").unwrap();
        assert!(e.execute("CREATE TABLE x (a INT)").is_err());
        e.execute("CREATE TABLE IF NOT EXISTS x (a INT)").unwrap();
        e.execute("DROP TABLE x").unwrap();
        assert!(e.execute("DROP TABLE x").is_err());
        e.execute("DROP TABLE IF EXISTS x").unwrap();
    }

    #[test]
    fn to_table_renders_grid() {
        let mut e = engine();
        let r = e.execute("SELECT id, name FROM t WHERE id = 1").unwrap();
        let table = r.to_table();
        assert!(table.contains("| id | name |"), "{table}");
        assert!(table.contains("| 1  | a    |"), "{table}");
    }

    #[test]
    fn to_table_for_dml() {
        let mut e = engine();
        let r = e.execute("DELETE FROM t WHERE id = 1").unwrap();
        assert_eq!(r.to_table(), "(1 row(s) affected)");
    }

    #[test]
    fn explain_shows_plan() {
        let e = engine();
        let txt = e.explain("SELECT id FROM t WHERE score > 2").unwrap();
        assert!(txt.contains("Scan: t"), "{txt}");
        assert!(e.explain("DELETE FROM t").is_err());
    }

    #[test]
    fn error_propagates_from_parser() {
        let mut e = engine();
        assert!(matches!(e.execute("SELEC 1"), Err(SqlError::Parse(_))));
    }

    #[test]
    fn query_table_convenience() {
        let mut e = engine();
        let t = e.query_table("SELECT COUNT(*) AS n FROM t").unwrap();
        assert!(t.contains('n'));
        assert!(t.contains('3'));
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE a (x INT, label TEXT)").unwrap();
        e.execute("CREATE TABLE b (x INT, label TEXT)").unwrap();
        e.execute("INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three')").unwrap();
        e.execute("INSERT INTO b VALUES (2, 'two'), (4, 'four')").unwrap();
        e
    }

    #[test]
    fn union_dedupes() {
        let mut e = engine();
        let r = e
            .execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY 1")
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(xs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let mut e = engine();
        let r = e
            .execute("SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY 1")
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(xs, vec![1, 2, 2, 3, 4]);
    }

    #[test]
    fn three_arm_chain_with_filters() {
        let mut e = engine();
        let r = e
            .execute(
                "SELECT x FROM a WHERE x > 1 UNION SELECT x FROM b UNION ALL SELECT 99 ORDER BY 1",
            )
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        // A plain UNION anywhere in the chain dedupes the whole result.
        assert_eq!(xs, vec![2, 3, 4, 99]);
    }

    #[test]
    fn trailing_order_and_limit_bind_to_the_union() {
        let mut e = engine();
        let r = e
            .execute("SELECT x, label FROM a UNION ALL SELECT x, label FROM b ORDER BY x DESC LIMIT 2")
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(xs, vec![4, 3]);
        // Ordering by output column name also works.
        let r = e
            .execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 1")
            .unwrap();
        assert_eq!(r.rows[0][0].as_i64(), Some(4));
    }

    #[test]
    fn union_with_aggregates_per_arm() {
        let mut e = engine();
        let r = e
            .execute("SELECT COUNT(*) FROM a UNION ALL SELECT COUNT(*) FROM b ORDER BY 1")
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
        assert_eq!(xs, vec![2, 3]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut e = engine();
        let err = e
            .execute("SELECT x FROM a UNION SELECT x, label FROM b")
            .unwrap_err();
        assert!(err.to_string().contains("column count"), "{err}");
    }

    #[test]
    fn bad_union_order_key_rejected() {
        let mut e = engine();
        assert!(e
            .execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY x + 1")
            .is_err());
        assert!(e
            .execute("SELECT x FROM a UNION SELECT x FROM b ORDER BY 5")
            .is_err());
    }

    #[test]
    fn union_explain_shows_arms() {
        let e = engine();
        let txt = e
            .explain("SELECT x FROM a UNION SELECT x FROM b")
            .unwrap();
        assert!(txt.contains("Union: 2 arm(s) distinct"), "{txt}");
    }

    #[test]
    fn union_optimizes_like_raw() {
        let sql = "SELECT x FROM a WHERE x > 1 UNION SELECT x FROM b WHERE label = 'four' ORDER BY 1";
        let mut opt = engine();
        let mut raw = Engine::with_optimizer(crate::plan::optimizer::Optimizer::disabled());
        raw.execute("CREATE TABLE a (x INT, label TEXT)").unwrap();
        raw.execute("CREATE TABLE b (x INT, label TEXT)").unwrap();
        raw.execute("INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three')").unwrap();
        raw.execute("INSERT INTO b VALUES (2, 'two'), (4, 'four')").unwrap();
        assert_eq!(opt.execute(sql).unwrap().rows, raw.execute(sql).unwrap().rows);
    }
}

#[cfg(test)]
mod columnar_engine_tests {
    use super::*;

    fn pair() -> (Engine, Engine) {
        let mut row = Engine::new();
        let mut col = Engine::with_exec(ExecConfig::columnar());
        for e in [&mut row, &mut col] {
            e.execute("CREATE TABLE t (id INT, grp TEXT, v FLOAT)").unwrap();
            e.execute(
                "INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5), \
                 (3, 'a', 3.5), (4, NULL, NULL)",
            )
            .unwrap();
        }
        (row, col)
    }

    #[test]
    fn columnar_engine_matches_row_engine_through_dml() {
        let (mut row, mut col) = pair();
        let check = |row: &mut Engine, col: &mut Engine, sql: &str| {
            let a = row.execute(sql).unwrap();
            let b = col.execute(sql).unwrap();
            assert_eq!(a.rows, b.rows, "{sql}");
        };
        check(&mut row, &mut col, "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp ORDER BY grp");
        // DML through both engines, cache invalidation included.
        for e in [&mut row, &mut col] {
            e.execute("UPDATE t SET v = v * 2 WHERE id > 2").unwrap();
            e.execute("DELETE FROM t WHERE id = 1").unwrap();
            e.execute("INSERT INTO t VALUES (5, 'c', 9.0)").unwrap();
        }
        check(&mut row, &mut col, "SELECT id, grp, v FROM t ORDER BY id");
        check(&mut row, &mut col, "SELECT grp FROM t WHERE v > 4 ORDER BY id");
    }

    #[test]
    fn exec_config_is_switchable() {
        let (_, mut col) = pair();
        assert_eq!(col.exec_config(), ExecConfig::columnar());
        let a = col.execute("SELECT COUNT(*) FROM t").unwrap();
        col.set_exec_config(ExecConfig::row());
        let b = col.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn traced_columnar_exec_reports_scan_counters() {
        use dbgpt_obs::{Obs, ObsConfig};
        let (_, mut col) = pair();
        let obs = Obs::new(ObsConfig::enabled(7));
        let root = obs.span("request", obs.tick());
        let r = col
            .execute_traced("SELECT COUNT(*) FROM t", &root)
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(obs.counter_value("sql.rows_scanned"), 4);
        assert_eq!(obs.counter_value("sql.chunks_scanned"), 1);
    }

    #[test]
    fn traced_paged_exec_reports_pool_counters() {
        use dbgpt_obs::{Obs, ObsConfig};
        let mut e = Engine::with_storage(crate::StorageConfig::paged(4, 128));
        e.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
        let vals: Vec<String> = (0..200).map(|i| format!("({i}, 'x{i}')")).collect();
        e.execute(&format!("INSERT INTO t VALUES {}", vals.join(", ")))
            .unwrap();
        let obs = Obs::new(ObsConfig::enabled(7));
        let root = obs.span("request", obs.tick());
        let r = e.execute_traced("SELECT COUNT(*) FROM t", &root).unwrap();
        assert_eq!(r.rows[0][0], Value::Int(200));
        // A 200-row table behind a 4-frame pool cannot scan without
        // missing in the pool; the deltas must reach the metrics.
        assert!(obs.counter_value("sql.pool.misses") > 0);
        assert!(obs.counter_value("sql.pool.evictions") > 0);
    }
}

#[cfg(test)]
mod count_distinct_tests {
    use super::*;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.execute("CREATE TABLE t (cat TEXT, v INT)").unwrap();
        e.execute(
            "INSERT INTO t VALUES ('a', 1), ('a', 1), ('a', 2), ('b', 1), ('b', NULL)",
        )
        .unwrap();
        e
    }

    #[test]
    fn global_count_distinct() {
        let mut e = engine();
        let r = e.execute("SELECT COUNT(DISTINCT cat) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        let r = e.execute("SELECT COUNT(DISTINCT v) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2)); // NULL not counted
    }

    #[test]
    fn grouped_count_distinct() {
        let mut e = engine();
        let r = e
            .execute("SELECT cat, COUNT(DISTINCT v) FROM t GROUP BY cat ORDER BY cat")
            .unwrap();
        assert_eq!(r.rows[0][1], Value::Int(2)); // a: {1,2}
        assert_eq!(r.rows[1][1], Value::Int(1)); // b: {1}
    }

    #[test]
    fn count_distinct_alongside_plain_count() {
        let mut e = engine();
        let r = e
            .execute("SELECT COUNT(v), COUNT(DISTINCT v), COUNT(*) FROM t")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[0][1], Value::Int(2));
        assert_eq!(r.rows[0][2], Value::Int(5));
    }

    #[test]
    fn count_distinct_over_empty() {
        let mut e = Engine::new();
        e.execute("CREATE TABLE x (a INT)").unwrap();
        let r = e.execute("SELECT COUNT(DISTINCT a) FROM x").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
    }

    #[test]
    fn distinct_in_non_count_still_rejected() {
        let mut e = engine();
        assert!(e.execute("SELECT AVG(DISTINCT v) FROM t").is_err());
    }
}
