//! Runtime values and data types.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::SqlError;

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// 64-bit float (`FLOAT`, `DOUBLE`, `REAL`, `DECIMAL`).
    Float,
    /// UTF-8 string (`TEXT`, `VARCHAR`, `CHAR`, `STRING`).
    Text,
    /// Boolean (`BOOL`, `BOOLEAN`).
    Bool,
}

impl DataType {
    /// Parse a SQL type name (case-insensitive; length args like
    /// `VARCHAR(32)` must be stripped by the parser first).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Some(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "DATE" | "DATETIME" | "TIMESTAMP" => {
                Some(DataType::Text)
            }
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            _ => None,
        }
    }

    /// Canonical SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value. `Null` is typeless, as in SQL.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// This value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-ints.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for non-text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-bools.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness for WHERE clauses: only `Bool(true)` passes; NULL and
    /// non-booleans do not (SQL three-valued logic collapses to false).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Coerce into the target column type where SQL allows it (int→float,
    /// anything→text is NOT implicit; NULL passes any type).
    pub fn coerce_to(self, ty: DataType) -> Result<Value, SqlError> {
        match (&self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Text(_), DataType::Text)
            | (Value::Bool(_), DataType::Bool) => Ok(self),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            // Whole floats narrow to INT only when the exact value fits in
            // an i64. `1e300.fract() == 0.0`, so a plain whole-number check
            // would let `as i64` saturate to i64::MAX and corrupt the
            // stored data; non-finite floats have no integer value at all.
            // -2^63 is exactly representable as f64; 2^63 is the first
            // unrepresentable magnitude above i64::MAX, so the upper bound
            // is a strict `<`.
            (Value::Float(f), DataType::Int)
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= -9_223_372_036_854_775_808.0_f64
                    && *f < 9_223_372_036_854_775_808.0_f64 =>
            {
                Ok(Value::Int(*f as i64))
            }
            _ => Err(SqlError::TypeMismatch {
                expected: ty.name().to_string(),
                found: self
                    .data_type()
                    .map(|t| t.name().to_string())
                    .unwrap_or_else(|| "NULL".into()),
            }),
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); numerics compare
    /// across int/float; other cross-type comparisons are `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering for ORDER BY / grouping: NULLs first, then by type,
    /// then by value. Unlike [`Value::sql_cmp`] this never returns unknown.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => match rank(self).cmp(&rank(other)) {
                // Float pairs go through IEEE total order, not the SQL
                // partial comparison: `sql_cmp` returns `None` for NaN and
                // an `unwrap_or(Equal)` fallback would make NaN compare
                // Equal to *every* numeric — a non-transitive comparator
                // that can panic std sorts and destabilise
                // ORDER BY/DISTINCT. Under `f64::total_cmp`, NaN sorts
                // after +inf (and -NaN before -inf), deterministically.
                Ordering::Equal => match (self, other) {
                    (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
                    (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
                    (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
                    _ => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                },
                o => o,
            },
        }
    }

    /// Equality for grouping/DISTINCT: NULL equals NULL here (SQL GROUP BY
    /// semantics), floats compare by bits-equal-enough.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// A hashable group key. Floats are keyed by their bit pattern.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => GroupKey::Float(f.to_bits()),
            Value::Text(s) => GroupKey::Text(s.clone()),
            Value::Bool(b) => GroupKey::Bool(*b),
        }
    }
}

/// Hashable projection of a [`Value`] for hash aggregation and DISTINCT.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (groups together).
    Null,
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// Text key.
    Text(String),
    /// Bool key.
    Bool(bool),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::parse("double"), Some(DataType::Float));
        assert_eq!(DataType::parse("BOOLEAN"), Some(DataType::Bool));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn coerce_int_to_float() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn coerce_whole_float_to_int() {
        assert_eq!(
            Value::Float(4.0).coerce_to(DataType::Int).unwrap(),
            Value::Int(4)
        );
        assert!(Value::Float(4.5).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn coerce_rejects_out_of_range_and_non_finite_floats() {
        // Pre-fix, `1e300.fract() == 0.0` let `as i64` saturate silently.
        for f in [1e300, -1e300, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert!(
                Value::Float(f).coerce_to(DataType::Int).is_err(),
                "{f} must not coerce to INT"
            );
        }
        // Boundary behaviour: -2^63 is exactly representable and fits;
        // 2^63 (the float just above i64::MAX) does not.
        assert_eq!(
            Value::Float(-9_223_372_036_854_775_808.0)
                .coerce_to(DataType::Int)
                .unwrap(),
            Value::Int(i64::MIN)
        );
        assert!(Value::Float(9_223_372_036_854_775_808.0)
            .coerce_to(DataType::Int)
            .is_err());
    }

    #[test]
    fn coerce_null_passes_any_type() {
        for ty in [DataType::Int, DataType::Float, DataType::Text, DataType::Bool] {
            assert!(Value::Null.coerce_to(ty).unwrap().is_null());
        }
    }

    #[test]
    fn coerce_rejects_text_to_int() {
        assert!(Value::Text("5".into()).coerce_to(DataType::Int).is_err());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float(2.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_text_and_bool() {
        assert_eq!(
            Value::Text("a".into()).sql_cmp(&Value::Text("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Bool(false).sql_cmp(&Value::Bool(true)),
            Some(Ordering::Less)
        );
        // Cross-type non-numeric: unknown.
        assert_eq!(Value::Text("1".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn total_cmp_is_total_over_nan() {
        // Pre-fix, NaN compared Equal to every numeric (sql_cmp's None
        // collapsed to Equal), which is non-transitive. NaN must order
        // strictly after every finite float and after +inf.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&Value::Float(1.0)), Ordering::Greater);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&Value::Float(f64::INFINITY)), Ordering::Greater);
        assert_eq!(nan.total_cmp(&Value::Int(5)), Ordering::Greater);
        assert_eq!(nan.total_cmp(&Value::Float(f64::NAN)), Ordering::Equal);
        // Sorting rows containing NaN is deterministic and does not panic.
        let mut vals = [
            Value::Float(1.0),
            Value::Float(f64::NAN),
            Value::Float(0.5),
            Value::Float(f64::NAN),
            Value::Float(2.0),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Float(0.5));
        assert_eq!(vals[1], Value::Float(1.0));
        assert_eq!(vals[2], Value::Float(2.0));
        assert!(matches!(vals[3], Value::Float(f) if f.is_nan()));
        assert!(matches!(vals[4], Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn group_eq_nulls_group_together() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn group_key_distinguishes_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Bool(true).group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Text("1".into()).group_key());
        assert_eq!(Value::Float(1.5).group_key(), Value::Float(1.5).group_key());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(1).is_truthy());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(1i64), Value::Int(1));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
