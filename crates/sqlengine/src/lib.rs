#![warn(missing_docs)]

//! # dbgpt-sqlengine — the relational database substrate of `db-gpt-rs`
//!
//! DB-GPT is a *data interaction* system: Chat2DB, Chat2Data, Chat2Excel and
//! Text-to-SQL all need an actual database to parse, plan and execute the
//! SQL that the language models produce. The paper assumes an external
//! engine (MySQL, DuckDB, …); this crate is the in-repo substitute — an
//! in-memory relational engine built DataFusion-style:
//!
//! ```text
//! SQL text ──lexer──▶ tokens ──parser──▶ AST
//!     ──planner──▶ LogicalPlan ──optimizer──▶ LogicalPlan
//!     ──executor──▶ rows
//! ```
//!
//! ## Execution: row and columnar
//!
//! Two physical executors interpret the same logical plans, selected per
//! engine via [`exec::ExecConfig`]:
//!
//! - **Row** (default): the original row-at-a-time interpreter. Every
//!   operator pulls `Vec<Row>` from its child and evaluates expressions
//!   one row at a time.
//! - **Columnar** ([`exec::ExecConfig::columnar`]): a vectorized batch
//!   pipeline. The catalog keeps a column-chunked mirror of each table
//!   ([`col::ColumnTable`]: typed [`col::ColumnVec`]s with null bitmaps
//!   in [`col::CHUNK_ROWS`]-row [`col::Chunk`]s). Scans stream chunks,
//!   predicates evaluate whole chunks at once ([`expr::Expr::eval_batch`])
//!   into selection vectors, aggregation folds typed columns directly
//!   ([`exec::Accumulator::update_col`]), and joins hash on vectorized
//!   key columns. Results are identical to the row executor — enforced
//!   by a randomized differential property test — at a multiple of its
//!   scan/filter/aggregate throughput (see `results/BENCH_sql_columnar
//!   .json`).
//!
//! ## Supported SQL
//!
//! - DDL: `CREATE TABLE`, `DROP TABLE`
//! - DML: `INSERT INTO … VALUES`, `UPDATE … SET … WHERE`, `DELETE FROM`
//! - Queries: `SELECT` with projections & aliases, `WHERE`, `INNER/LEFT
//!   JOIN … ON`, `GROUP BY` + `HAVING`, `ORDER BY … ASC/DESC`, `LIMIT`,
//!   `DISTINCT`, aggregates (`COUNT/SUM/AVG/MIN/MAX`), scalar functions
//!   (`ABS/UPPER/LOWER/LENGTH/ROUND/COALESCE`), `LIKE`, `IN`, `BETWEEN`,
//!   `IS [NOT] NULL`, arithmetic and boolean expressions.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_sqlengine::Engine;
//!
//! let mut engine = Engine::new();
//! engine.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
//! engine.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
//! let result = engine.execute("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(result.rows[0][0].to_string(), "b");
//! ```

pub mod catalog;
pub mod col;
pub mod csv;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod row;
pub mod schema;
pub mod storage;
pub mod value;

pub use catalog::Database;
pub use engine::{Engine, QueryResult};
pub use exec::{ExecConfig, ExecMode};
pub use error::SqlError;
pub use row::Row;
pub use schema::{Column, Schema};
pub use storage::StorageConfig;
pub use value::{DataType, Value};
