//! Error type for AWEL.

use std::fmt;

/// Errors from DAG construction, DSL parsing, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AwelError {
    /// Two nodes share a name.
    DuplicateNode(String),
    /// An edge references a node that was never added.
    UnknownNode(String),
    /// The graph contains a cycle (names of the nodes involved).
    CycleDetected(Vec<String>),
    /// DSL text could not be parsed.
    Parse(String),
    /// An operator name has no registry entry.
    UnknownOperator(String),
    /// An operator failed at run time.
    Execution {
        /// Failing node.
        node: String,
        /// Cause.
        cause: String,
    },
    /// The DAG has no nodes.
    EmptyDag,
}

impl fmt::Display for AwelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwelError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            AwelError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            AwelError::CycleDetected(nodes) => {
                write!(f, "cycle detected involving: {}", nodes.join(" -> "))
            }
            AwelError::Parse(m) => write!(f, "AWEL parse error: {m}"),
            AwelError::UnknownOperator(n) => write!(f, "unknown operator `{n}`"),
            AwelError::Execution { node, cause } => {
                write!(f, "operator `{node}` failed: {cause}")
            }
            AwelError::EmptyDag => write!(f, "DAG has no nodes"),
        }
    }
}

impl std::error::Error for AwelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(AwelError::DuplicateNode("n".into()).to_string().contains('n'));
        assert!(AwelError::CycleDetected(vec!["a".into(), "b".into()])
            .to_string()
            .contains("a -> b"));
        assert!(AwelError::Execution {
            node: "x".into(),
            cause: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert_eq!(AwelError::EmptyDag.to_string(), "DAG has no nodes");
    }
}
