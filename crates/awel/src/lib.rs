#![warn(missing_docs)]

//! # dbgpt-awel — the Agentic Workflow Expression Language
//!
//! AWEL is DB-GPT's protocol layer (paper §2.4): a declarative way to
//! orchestrate agents as operators in a directed acyclic graph, "adopting
//! the big data processing concepts of Apache Airflow" (sic). This crate
//! implements all of it:
//!
//! - [`operator`] — the [`Operator`] trait ("each operator represents a
//!   discrete task") plus built-ins: constant inputs, pure maps, joins,
//!   branches with labeled routing, and pass-throughs.
//! - [`dag`] — typestate DAG construction: a [`DagBuilder`] accumulates
//!   nodes and edges and `build()` validates names, edge endpoints and
//!   acyclicity before any execution is possible.
//! - [`scheduler`] — the three execution modes the paper claims: **batch**
//!   (one topological pass), **stream** (a sequence of events pushed
//!   through the DAG one by one), and **async** (level-parallel execution
//!   on threads).
//! - [`dsl`] — the declarative expression language itself. Workflows are a
//!   few lines of `a >> b` edges, mirroring DB-GPT's Python `>>` operator
//!   overloading:
//!
//! ```text
//! dag sales_report {
//!     input >> plan;
//!     plan >> chart_category >> aggregate;
//!     plan >> chart_user >> aggregate;
//! }
//! ```
//!
//! - [`json_workflow`] — the serialisable graph document a drag-and-drop
//!   editor would emit, compiled against the same operator palette.
//! - [`registry`] — maps DSL operator names to implementations.
//!
//! Data flowing between operators is `serde_json::Value`, the same shape
//! DB-GPT's agents exchange.
//!
//! ## Quickstart
//!
//! ```
//! use dbgpt_awel::{DagBuilder, Scheduler, ops};
//! use serde_json::json;
//!
//! let dag = DagBuilder::new("double_then_add")
//!     .node("double", ops::map(|v| json!(v.as_i64().unwrap() * 2)))
//!     .node("add_one", ops::map(|v| json!(v.as_i64().unwrap() + 1)))
//!     .edge("double", "add_one")
//!     .build()
//!     .unwrap();
//! let out = Scheduler::new().run_batch(&dag, json!(20)).unwrap();
//! assert_eq!(out.leaf_outputs()["add_one"], json!(41));
//! ```

pub mod dag;
pub mod dsl;
pub mod error;
pub mod json_workflow;
pub mod operator;
pub mod registry;
pub mod scheduler;

pub use dag::{Dag, DagBuilder};
pub use dsl::parse_dsl;
pub use error::AwelError;
pub use json_workflow::{EdgeDef, NodeDef, WorkflowDef};
pub use operator::{ops, OpOutput, Operator, SharedOperator};
pub use registry::OperatorRegistry;
pub use scheduler::{ExecutionMode, RunResult, Scheduler};
