//! The operator abstraction and built-in operators.
//!
//! "each operator represents a discrete task or operation capable of
//! executing defined actions. … DB-GPT's AWEL models each agent as a
//! distinct operator" (§2.4). Operators receive the outputs of their
//! upstream nodes (in edge insertion order) and produce an [`OpOutput`]:
//! either a value broadcast to every successor, or a *routed* value that
//! only follows edges carrying a matching label — which is how branching
//! workflows steer data.

use std::sync::Arc;

use dbgpt_obs::Span;
use serde_json::Value;

use crate::error::AwelError;

/// What an operator emits.
#[derive(Debug, Clone, PartialEq)]
pub enum OpOutput {
    /// Send this value along every outgoing edge.
    Value(Value),
    /// Send this value only along edges labeled `branch`; other successors
    /// are skipped for this run.
    Route {
        /// The selected branch label.
        branch: String,
        /// The payload.
        value: Value,
    },
}

/// A discrete task in a workflow.
pub trait Operator: Send + Sync {
    /// Diagnostic name of the operator implementation.
    fn op_name(&self) -> &str;

    /// Execute with the upstream outputs (empty for root nodes, which
    /// receive the trigger input instead — the scheduler passes it as the
    /// single element of `inputs`).
    fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError>;

    /// Execute with the scheduler's per-node span. Operators that call
    /// into other instrumented subsystems (SMMF, the SQL engine, RAG)
    /// override this to join their spans to the workflow trace; the
    /// default ignores the span and delegates to [`Operator::run`], so
    /// plain operators behave identically traced or not.
    fn run_traced(&self, inputs: &[Value], _span: &Span) -> Result<OpOutput, AwelError> {
        self.run(inputs)
    }
}

/// Shared operator handle.
pub type SharedOperator = Arc<dyn Operator>;

/// Built-in operator constructors.
pub mod ops {
    use super::*;

    /// An operator computed by a closure over its *first* input (the
    /// common single-upstream case).
    pub fn map<F>(f: F) -> SharedOperator
    where
        F: Fn(&Value) -> Value + Send + Sync + 'static,
    {
        struct MapOp<F>(F);
        impl<F> Operator for MapOp<F>
        where
            F: Fn(&Value) -> Value + Send + Sync,
        {
            fn op_name(&self) -> &str {
                "map"
            }
            fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
                let input = inputs.first().cloned().unwrap_or(Value::Null);
                Ok(OpOutput::Value((self.0)(&input)))
            }
        }
        Arc::new(MapOp(f))
    }

    /// A fallible map (errors become [`AwelError::Execution`]).
    pub fn try_map<F>(f: F) -> SharedOperator
    where
        F: Fn(&Value) -> Result<Value, String> + Send + Sync + 'static,
    {
        struct TryMapOp<F>(F);
        impl<F> Operator for TryMapOp<F>
        where
            F: Fn(&Value) -> Result<Value, String> + Send + Sync,
        {
            fn op_name(&self) -> &str {
                "try_map"
            }
            fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
                let input = inputs.first().cloned().unwrap_or(Value::Null);
                match (self.0)(&input) {
                    Ok(v) => Ok(OpOutput::Value(v)),
                    Err(cause) => Err(AwelError::Execution {
                        node: "try_map".into(),
                        cause,
                    }),
                }
            }
        }
        Arc::new(TryMapOp(f))
    }

    /// An operator over *all* inputs (fan-in aware).
    pub fn map_all<F>(f: F) -> SharedOperator
    where
        F: Fn(&[Value]) -> Value + Send + Sync + 'static,
    {
        struct MapAllOp<F>(F);
        impl<F> Operator for MapAllOp<F>
        where
            F: Fn(&[Value]) -> Value + Send + Sync,
        {
            fn op_name(&self) -> &str {
                "map_all"
            }
            fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
                Ok(OpOutput::Value((self.0)(inputs)))
            }
        }
        Arc::new(MapAllOp(f))
    }

    /// Emits a constant, ignoring inputs (workflow entry points).
    pub fn constant(v: Value) -> SharedOperator {
        struct ConstOp(Value);
        impl Operator for ConstOp {
            fn op_name(&self) -> &str {
                "constant"
            }
            fn run(&self, _inputs: &[Value]) -> Result<OpOutput, AwelError> {
                Ok(OpOutput::Value(self.0.clone()))
            }
        }
        Arc::new(ConstOp(v))
    }

    /// Passes its input through unchanged (useful as a named junction).
    pub fn identity() -> SharedOperator {
        map(|v| v.clone())
    }

    /// Collects every input into a JSON array — the fan-in "join" of
    /// Airflow-style DAGs (e.g. the aggregator collecting three charts).
    pub fn join() -> SharedOperator {
        map_all(|inputs| Value::Array(inputs.to_vec()))
    }

    /// Routes its input to the `"true"` or `"false"` labeled edge
    /// depending on a predicate — AWEL's branch operator.
    pub fn branch<F>(predicate: F) -> SharedOperator
    where
        F: Fn(&Value) -> bool + Send + Sync + 'static,
    {
        struct BranchOp<F>(F);
        impl<F> Operator for BranchOp<F>
        where
            F: Fn(&Value) -> bool + Send + Sync,
        {
            fn op_name(&self) -> &str {
                "branch"
            }
            fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
                let input = inputs.first().cloned().unwrap_or(Value::Null);
                let branch = if (self.0)(&input) { "true" } else { "false" };
                Ok(OpOutput::Route {
                    branch: branch.to_string(),
                    value: input,
                })
            }
        }
        Arc::new(BranchOp(predicate))
    }

    /// Routes its input to the edge label returned by the closure —
    /// the general n-way router.
    pub fn route<F>(selector: F) -> SharedOperator
    where
        F: Fn(&Value) -> String + Send + Sync + 'static,
    {
        struct RouteOp<F>(F);
        impl<F> Operator for RouteOp<F>
        where
            F: Fn(&Value) -> String + Send + Sync,
        {
            fn op_name(&self) -> &str {
                "route"
            }
            fn run(&self, inputs: &[Value]) -> Result<OpOutput, AwelError> {
                let input = inputs.first().cloned().unwrap_or(Value::Null);
                Ok(OpOutput::Route {
                    branch: (self.0)(&input),
                    value: input,
                })
            }
        }
        Arc::new(RouteOp(selector))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn map_transforms_first_input() {
        let op = ops::map(|v| json!(v.as_i64().unwrap_or(0) + 1));
        let out = op.run(&[json!(41)]).unwrap();
        assert_eq!(out, OpOutput::Value(json!(42)));
        // Missing input → Null in.
        let out = op.run(&[]).unwrap();
        assert_eq!(out, OpOutput::Value(json!(1)));
    }

    #[test]
    fn try_map_propagates_errors() {
        let op = ops::try_map(|v| {
            v.as_i64().map(|i| json!(i)).ok_or_else(|| "not a number".to_string())
        });
        assert!(op.run(&[json!(1)]).is_ok());
        let err = op.run(&[json!("x")]).unwrap_err();
        assert!(matches!(err, AwelError::Execution { .. }));
    }

    #[test]
    fn join_collects_all_inputs() {
        let op = ops::join();
        let out = op.run(&[json!(1), json!("two"), json!(null)]).unwrap();
        assert_eq!(out, OpOutput::Value(json!([1, "two", null])));
    }

    #[test]
    fn constant_ignores_inputs() {
        let op = ops::constant(json!({"k": 1}));
        assert_eq!(op.run(&[json!(9)]).unwrap(), OpOutput::Value(json!({"k": 1})));
    }

    #[test]
    fn identity_passes_through() {
        let op = ops::identity();
        assert_eq!(op.run(&[json!([1, 2])]).unwrap(), OpOutput::Value(json!([1, 2])));
    }

    #[test]
    fn branch_routes_by_predicate() {
        let op = ops::branch(|v| v.as_i64().unwrap_or(0) > 10);
        assert_eq!(
            op.run(&[json!(20)]).unwrap(),
            OpOutput::Route {
                branch: "true".into(),
                value: json!(20)
            }
        );
        assert_eq!(
            op.run(&[json!(5)]).unwrap(),
            OpOutput::Route {
                branch: "false".into(),
                value: json!(5)
            }
        );
    }

    #[test]
    fn route_selects_arbitrary_labels() {
        let op = ops::route(|v| v["kind"].as_str().unwrap_or("other").to_string());
        assert_eq!(
            op.run(&[json!({"kind": "sql"})]).unwrap(),
            OpOutput::Route {
                branch: "sql".into(),
                value: json!({"kind": "sql"})
            }
        );
    }

    #[test]
    fn operators_are_shareable_across_threads() {
        let op = ops::map(|v| v.clone());
        let op2 = op.clone();
        std::thread::spawn(move || {
            op2.run(&[json!(1)]).unwrap();
        })
        .join()
        .unwrap();
        op.run(&[json!(2)]).unwrap();
    }
}
