//! JSON workflow definitions — the drag-and-drop contract.
//!
//! §1: "to make users more code-free, DB-GPT also provides an interface
//! for users constructing their Agentic Workflow with only drag and
//! drop." A visual editor ultimately emits a serialisable graph document;
//! this module defines that document ([`WorkflowDef`]) and compiles it
//! into a validated [`Dag`] against an [`OperatorRegistry`] — the exact
//! same palette the DSL uses, so the textual and visual paths stay
//! equivalent.

use serde::{Deserialize, Serialize};

use crate::dag::{Dag, DagBuilder};
use crate::error::AwelError;
use crate::registry::OperatorRegistry;

/// One node of a visual workflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeDef {
    /// Unique node id (the label shown on the canvas).
    pub id: String,
    /// Registry operator this node instantiates.
    pub op: String,
}

/// One edge of a visual workflow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeDef {
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// Optional branch label (for routed outputs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub label: Option<String>,
}

/// A complete workflow document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkflowDef {
    /// Workflow name.
    pub name: String,
    /// Nodes on the canvas.
    pub nodes: Vec<NodeDef>,
    /// Connections between them.
    pub edges: Vec<EdgeDef>,
}

impl WorkflowDef {
    /// Parse a JSON document.
    pub fn from_json(json: &str) -> Result<WorkflowDef, AwelError> {
        serde_json::from_str(json).map_err(|e| AwelError::Parse(e.to_string()))
    }

    /// Serialise back to JSON (what the editor saves).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workflow serializes")
    }

    /// Compile into a validated DAG against the operator palette.
    pub fn compile(&self, registry: &OperatorRegistry) -> Result<Dag, AwelError> {
        let mut builder = DagBuilder::new(self.name.clone());
        for node in &self.nodes {
            builder = builder.node(node.id.clone(), registry.get(&node.op)?);
        }
        for edge in &self.edges {
            builder = match &edge.label {
                Some(l) => builder.edge_labeled(edge.from.clone(), edge.to.clone(), l.clone()),
                None => builder.edge(edge.from.clone(), edge.to.clone()),
            };
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ops;
    use crate::scheduler::Scheduler;
    use serde_json::json;

    fn registry() -> OperatorRegistry {
        let mut r = OperatorRegistry::with_builtins();
        r.register("inc", ops::map(|v| json!(v.as_i64().unwrap() + 1)));
        r.register("double", ops::map(|v| json!(v.as_i64().unwrap() * 2)));
        r.register("is_big", ops::branch(|v| v.as_i64().unwrap() > 10));
        r
    }

    fn doc() -> &'static str {
        r#"{
            "name": "editor_flow",
            "nodes": [
                {"id": "start", "op": "inc"},
                {"id": "grow", "op": "double"},
                {"id": "decide", "op": "is_big"},
                {"id": "big_path", "op": "identity"},
                {"id": "small_path", "op": "identity"}
            ],
            "edges": [
                {"from": "start", "to": "grow"},
                {"from": "grow", "to": "decide"},
                {"from": "decide", "to": "big_path", "label": "true"},
                {"from": "decide", "to": "small_path", "label": "false"}
            ]
        }"#
    }

    #[test]
    fn json_document_compiles_and_runs() {
        let def = WorkflowDef::from_json(doc()).unwrap();
        let dag = def.compile(&registry()).unwrap();
        assert_eq!(dag.name(), "editor_flow");
        assert_eq!(dag.node_count(), 5);
        let run = Scheduler::new().run_batch(&dag, json!(7)).unwrap();
        // (7+1)*2 = 16 > 10 → the big path runs.
        assert_eq!(run.outputs["big_path"], json!(16));
        assert!(run.skipped.contains(&"small_path".to_string()));
    }

    #[test]
    fn json_roundtrip() {
        let def = WorkflowDef::from_json(doc()).unwrap();
        let again = WorkflowDef::from_json(&def.to_json()).unwrap();
        assert_eq!(def, again);
    }

    #[test]
    fn unknown_operator_in_document_rejected() {
        let bad = r#"{"name":"x","nodes":[{"id":"a","op":"mystery"}],"edges":[]}"#;
        let def = WorkflowDef::from_json(bad).unwrap();
        assert!(matches!(
            def.compile(&registry()),
            Err(AwelError::UnknownOperator(_))
        ));
    }

    #[test]
    fn cyclic_document_rejected() {
        let cyclic = r#"{
            "name": "loop",
            "nodes": [{"id":"a","op":"inc"},{"id":"b","op":"inc"}],
            "edges": [{"from":"a","to":"b"},{"from":"b","to":"a"}]
        }"#;
        let def = WorkflowDef::from_json(cyclic).unwrap();
        assert!(matches!(def.compile(&registry()), Err(AwelError::CycleDetected(_))));
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(matches!(
            WorkflowDef::from_json("{nope"),
            Err(AwelError::Parse(_))
        ));
    }

    #[test]
    fn dsl_and_json_paths_are_equivalent() {
        // The same topology expressed both ways computes the same result.
        let r = registry();
        let dsl = "dag both { node a = inc; node b = double; a >> b; }";
        let json_doc = r#"{"name":"both","nodes":[{"id":"a","op":"inc"},{"id":"b","op":"double"}],"edges":[{"from":"a","to":"b"}]}"#;
        let d1 = crate::dsl::parse_dsl(dsl, &r).unwrap();
        let d2 = WorkflowDef::from_json(json_doc).unwrap().compile(&r).unwrap();
        let s = Scheduler::new();
        assert_eq!(
            s.run_batch(&d1, json!(5)).unwrap().outputs,
            s.run_batch(&d2, json!(5)).unwrap().outputs
        );
    }
}
