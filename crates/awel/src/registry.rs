//! Operator registry: names → implementations.
//!
//! The AWEL DSL refers to operators by name; applications register their
//! agents/operators here and hand the registry to [`crate::parse_dsl`].
//! This is also the hook behind the paper's "drag and drop" workflow UI —
//! a visual editor needs exactly this name-indexed palette of operators.

use std::collections::BTreeMap;

use crate::error::AwelError;
use crate::operator::{ops, SharedOperator};

/// A name-indexed palette of operators.
#[derive(Clone, Default)]
pub struct OperatorRegistry {
    entries: BTreeMap<String, SharedOperator>,
}

impl OperatorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        OperatorRegistry::default()
    }

    /// A registry pre-loaded with the structural built-ins every workflow
    /// wants: `identity`, `join`.
    pub fn with_builtins() -> Self {
        let mut r = OperatorRegistry::new();
        r.register("identity", ops::identity());
        r.register("join", ops::join());
        r
    }

    /// Register (or replace) an operator under a name.
    pub fn register(&mut self, name: impl Into<String>, op: SharedOperator) {
        self.entries.insert(name.into(), op);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Result<SharedOperator, AwelError> {
        self.entries
            .get(name)
            .cloned()
            .ok_or_else(|| AwelError::UnknownOperator(name.to_string()))
    }

    /// Does the registry know this name?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl std::fmt::Debug for OperatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OperatorRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn builtins_present() {
        let r = OperatorRegistry::with_builtins();
        assert!(r.contains("identity"));
        assert!(r.contains("join"));
        assert_eq!(r.names(), vec!["identity", "join"]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn register_and_get() {
        let mut r = OperatorRegistry::new();
        r.register("inc", ops::map(|v| json!(v.as_i64().unwrap() + 1)));
        let op = r.get("inc").unwrap();
        assert_eq!(
            op.run(&[json!(1)]).unwrap(),
            crate::operator::OpOutput::Value(json!(2))
        );
    }

    #[test]
    fn unknown_name_errors() {
        let r = OperatorRegistry::new();
        assert!(matches!(r.get("nope"), Err(AwelError::UnknownOperator(_))));
    }

    #[test]
    fn register_replaces() {
        let mut r = OperatorRegistry::new();
        r.register("x", ops::constant(json!(1)));
        r.register("x", ops::constant(json!(2)));
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.get("x").unwrap().run(&[]).unwrap(),
            crate::operator::OpOutput::Value(json!(2))
        );
    }
}
