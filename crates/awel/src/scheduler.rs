//! DAG execution: batch, stream, and async modes.
//!
//! "Employing AWEL within DB-GPT empowers it to support a variety of tasks
//! including stream processing, batch processing, and asynchronous
//! operations" (§2.4).
//!
//! - **Batch** — one topological pass; every reachable node runs once.
//! - **Stream** — a sequence of events is pushed through the DAG one at a
//!   time; the result is the per-event leaf outputs, in order.
//! - **Async** — topological *levels* run on parallel threads
//!   (`std::thread::scope`); semantically identical to batch, measured by
//!   benchmark E3.
//!
//! Routed outputs ([`OpOutput::Route`]) deliver only along matching labeled
//! edges; nodes that end up with no delivered inputs (and are not roots)
//! are *skipped*, and the skip propagates.

use std::collections::HashMap;

use dbgpt_obs::{Obs, Span};
use serde_json::Value;

use crate::dag::{Dag, NodeId};
use crate::error::AwelError;
use crate::operator::OpOutput;

/// Which execution mode to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Single-threaded topological pass.
    Batch,
    /// Level-parallel threads.
    Async,
}

/// The result of one DAG run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Output of every node that ran, by name.
    pub outputs: HashMap<String, Value>,
    /// Names of nodes skipped by branch routing.
    pub skipped: Vec<String>,
    /// Leaf node names in topological order (for stable iteration).
    leaf_names: Vec<String>,
}

impl RunResult {
    /// Outputs of the DAG's leaf nodes only.
    pub fn leaf_outputs(&self) -> HashMap<String, Value> {
        self.leaf_names
            .iter()
            .filter_map(|n| self.outputs.get(n).map(|v| (n.clone(), v.clone())))
            .collect()
    }

    /// The single leaf output, if the DAG has exactly one leaf that ran.
    pub fn sole_output(&self) -> Option<&Value> {
        let ran: Vec<&String> = self
            .leaf_names
            .iter()
            .filter(|n| self.outputs.contains_key(*n))
            .collect();
        match ran.as_slice() {
            [one] => self.outputs.get(*one),
            _ => None,
        }
    }
}

/// The DAG scheduler.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    obs: Obs,
}

impl Scheduler {
    /// Create a scheduler (observability disabled).
    pub fn new() -> Self {
        Scheduler {
            obs: Obs::disabled(),
        }
    }

    /// Create a scheduler that records an `awel.dag` span per run and an
    /// `awel.op` child span per executed node on `obs`.
    pub fn with_obs(obs: Obs) -> Self {
        Scheduler { obs }
    }

    /// The scheduler's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Run once in batch mode with `trigger` as the root input.
    pub fn run_batch(&self, dag: &Dag, trigger: Value) -> Result<RunResult, AwelError> {
        self.run(dag, trigger, ExecutionMode::Batch)
    }

    /// Run once in the given mode.
    pub fn run(&self, dag: &Dag, trigger: Value, mode: ExecutionMode) -> Result<RunResult, AwelError> {
        self.run_under(dag, trigger, mode, &Span::noop())
    }

    /// Run once, joining the `awel.dag` span to `parent` when that parent
    /// is recording (else rooting it on this scheduler's own handle).
    /// Spans use logical ticks from the owning tracer; in [`ExecutionMode::Async`]
    /// the coordinator thread assigns per-op start/end ticks in node order,
    /// so the dump stays deterministic (operators that trace *internally*
    /// should run in batch mode for cross-run byte identity).
    pub fn run_under(
        &self,
        dag: &Dag,
        trigger: Value,
        mode: ExecutionMode,
        parent: &Span,
    ) -> Result<RunResult, AwelError> {
        let span = if parent.is_recording() {
            parent.child("awel.dag", parent.tick())
        } else if self.obs.is_enabled() {
            self.obs.span("awel.dag", self.obs.tick())
        } else {
            return match mode {
                ExecutionMode::Batch => self.run_sequential(dag, trigger, &Span::noop()),
                ExecutionMode::Async => self.run_parallel(dag, trigger, &Span::noop()),
            };
        };
        let obs = span.handle();
        span.attr("dag", dag.name());
        span.attr(
            "mode",
            match mode {
                ExecutionMode::Batch => "batch",
                ExecutionMode::Async => "async",
            },
        );
        span.attr("nodes", dag.node_count().to_string());
        obs.counter("awel.runs", 1);
        let res = match mode {
            ExecutionMode::Batch => self.run_sequential(dag, trigger, &span),
            ExecutionMode::Async => self.run_parallel(dag, trigger, &span),
        };
        match &res {
            Ok(r) => {
                span.attr("outcome", "ok");
                span.attr("ops_run", r.outputs.len().to_string());
                obs.counter("awel.ops_run", r.outputs.len() as u64);
                obs.counter("awel.ops_skipped", r.skipped.len() as u64);
            }
            Err(_) => {
                span.attr("outcome", "error");
                obs.counter("awel.errors", 1);
            }
        }
        span.end(span.tick());
        res
    }

    /// Stream mode: push each event through the DAG; collect each event's
    /// leaf outputs.
    pub fn run_stream(
        &self,
        dag: &Dag,
        events: impl IntoIterator<Item = Value>,
    ) -> Result<Vec<RunResult>, AwelError> {
        self.run_stream_under(dag, events, &Span::noop())
    }

    /// Stream mode with trace propagation: one `awel.dag` span per event.
    pub fn run_stream_under(
        &self,
        dag: &Dag,
        events: impl IntoIterator<Item = Value>,
        parent: &Span,
    ) -> Result<Vec<RunResult>, AwelError> {
        events
            .into_iter()
            .map(|e| self.run_under(dag, e, ExecutionMode::Batch, parent))
            .collect()
    }

    fn run_sequential(&self, dag: &Dag, trigger: Value, span: &Span) -> Result<RunResult, AwelError> {
        // delivered[node] = values delivered along its in-edges (in edge order).
        let n = dag.node_count();
        let mut delivered: Vec<Vec<Value>> = vec![Vec::new(); n];
        let mut ran = vec![false; n];
        let mut outputs: Vec<Option<OpOutput>> = vec![None; n];
        let roots = dag.roots();

        for &node in dag.topo_order() {
            let is_root = roots.contains(&node);
            let inputs: Vec<Value> = if is_root {
                vec![trigger.clone()]
            } else {
                std::mem::take(&mut delivered[node])
            };
            // Skip non-roots that received nothing (all upstreams skipped
            // or routed elsewhere).
            if !is_root && inputs.is_empty() {
                continue;
            }
            let op_span = span.child("awel.op", span.tick());
            op_span.attr("node", dag.node_name(node));
            op_span.attr("id", node.to_string());
            op_span.attr("op", dag.operator(node).op_name());
            let out = match dag.operator(node).run_traced(&inputs, &op_span) {
                Ok(out) => {
                    op_span.end(span.tick());
                    out
                }
                Err(e) => {
                    op_span.attr("outcome", "error");
                    op_span.end(span.tick());
                    return Err(match e {
                        AwelError::Execution { cause, .. } => AwelError::Execution {
                            node: dag.node_name(node).to_string(),
                            cause,
                        },
                        other => other,
                    });
                }
            };
            ran[node] = true;
            // Deliver downstream.
            for edge in dag.out_edges(node) {
                match &out {
                    OpOutput::Value(v) => delivered[edge.to].push(v.clone()),
                    OpOutput::Route { branch, value } => {
                        let matches = match &edge.label {
                            Some(l) => l == branch,
                            None => true,
                        };
                        if matches {
                            delivered[edge.to].push(value.clone());
                        }
                    }
                }
            }
            outputs[node] = Some(out);
        }
        Ok(self.collect(dag, ran, outputs))
    }

    fn run_parallel(&self, dag: &Dag, trigger: Value, span: &Span) -> Result<RunResult, AwelError> {
        let n = dag.node_count();
        let mut delivered: Vec<Vec<Value>> = vec![Vec::new(); n];
        let mut ran = vec![false; n];
        let mut outputs: Vec<Option<OpOutput>> = vec![None; n];
        let roots = dag.roots();

        for level in dag.levels() {
            // Run this level's ready nodes concurrently.
            let mut results: Vec<(NodeId, Option<Result<OpOutput, AwelError>>)> =
                Vec::with_capacity(level.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(level.len());
                for &node in &level {
                    let is_root = roots.contains(&node);
                    let inputs: Vec<Value> = if is_root {
                        vec![trigger.clone()]
                    } else {
                        std::mem::take(&mut delivered[node])
                    };
                    if !is_root && inputs.is_empty() {
                        handles.push((node, None));
                        continue;
                    }
                    let op = dag.operator(node).clone();
                    // Span ticks are assigned here, on the coordinator
                    // thread, in node order — the parallel joins stay
                    // deterministic in the dump.
                    let op_span = span.child("awel.op", span.tick());
                    op_span.attr("node", dag.node_name(node));
                    op_span.attr("id", node);
                    op_span.attr("op", op.op_name());
                    let thread_span = op_span.clone();
                    let h = scope.spawn(move || op.run_traced(&inputs, &thread_span));
                    handles.push((node, Some((h, op_span))));
                }
                for (node, h) in handles {
                    // A panicking operator must surface as an Execution
                    // error, not unwind the scheduler: joining every handle
                    // first also lets sibling operators run to completion.
                    let joined = h.map(|(h, op_span)| {
                        let r = h.join().unwrap_or_else(|payload| {
                            Err(AwelError::Execution {
                                node: dag.node_name(node).to_string(),
                                cause: panic_cause(payload),
                            })
                        });
                        if r.is_err() {
                            op_span.attr("outcome", "error");
                        }
                        op_span.end(span.tick());
                        r
                    });
                    results.push((node, joined));
                }
            });
            for (node, result) in results {
                let Some(result) = result else { continue };
                let out = result.map_err(|e| match e {
                    AwelError::Execution { cause, .. } => AwelError::Execution {
                        node: dag.node_name(node).to_string(),
                        cause,
                    },
                    other => other,
                })?;
                ran[node] = true;
                for edge in dag.out_edges(node) {
                    match &out {
                        OpOutput::Value(v) => delivered[edge.to].push(v.clone()),
                        OpOutput::Route { branch, value } => {
                            let matches = match &edge.label {
                                Some(l) => l == branch,
                                None => true,
                            };
                            if matches {
                                delivered[edge.to].push(value.clone());
                            }
                        }
                    }
                }
                outputs[node] = Some(out);
            }
        }
        Ok(self.collect(dag, ran, outputs))
    }

    fn collect(&self, dag: &Dag, ran: Vec<bool>, outputs: Vec<Option<OpOutput>>) -> RunResult {
        let mut out_map = HashMap::new();
        let mut skipped = Vec::new();
        for node in 0..dag.node_count() {
            if ran[node] {
                let v = match outputs[node].clone().expect("ran nodes have outputs") {
                    OpOutput::Value(v) => v,
                    OpOutput::Route { value, .. } => value,
                };
                out_map.insert(dag.node_name(node).to_string(), v);
            } else {
                skipped.push(dag.node_name(node).to_string());
            }
        }
        let leaf_names = dag
            .leaves()
            .into_iter()
            .map(|n| dag.node_name(n).to_string())
            .collect();
        RunResult {
            outputs: out_map,
            skipped,
            leaf_names,
        }
    }
}

/// Best-effort message from a thread panic payload.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("operator panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("operator panicked: {s}")
    } else {
        "operator panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DagBuilder;
    use crate::operator::ops;
    use serde_json::json;

    fn pipeline() -> Dag {
        DagBuilder::new("p")
            .node("inc", ops::map(|v| json!(v.as_i64().unwrap() + 1)))
            .node("double", ops::map(|v| json!(v.as_i64().unwrap() * 2)))
            .edge("inc", "double")
            .build()
            .unwrap()
    }

    #[test]
    fn async_panicking_operator_is_an_error_not_a_crash() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let sibling_ran = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&sibling_ran);
        let dag = DagBuilder::new("boom")
            .node("src", ops::identity())
            .node("explode", ops::map(|_| panic!("kaboom")))
            .node("steady", ops::map(move |v| {
                counter.fetch_add(1, Ordering::SeqCst);
                v.clone()
            }))
            .edge("src", "explode")
            .edge("src", "steady")
            .build()
            .unwrap();
        let err = Scheduler::new()
            .run(&dag, json!(1), ExecutionMode::Async)
            .unwrap_err();
        match err {
            AwelError::Execution { node, cause } => {
                assert_eq!(node, "explode");
                assert!(cause.contains("kaboom"), "payload surfaced: {cause}");
            }
            other => panic!("expected Execution error, got {other:?}"),
        }
        // The sibling on the same level still ran to completion.
        assert_eq!(sibling_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn batch_runs_chain() {
        let r = Scheduler::new().run_batch(&pipeline(), json!(5)).unwrap();
        assert_eq!(r.outputs["inc"], json!(6));
        assert_eq!(r.outputs["double"], json!(12));
        assert_eq!(r.sole_output(), Some(&json!(12)));
        assert!(r.skipped.is_empty());
    }

    #[test]
    fn fan_out_fan_in() {
        let dag = DagBuilder::new("fan")
            .node("src", ops::identity())
            .node("a", ops::map(|v| json!(v.as_i64().unwrap() + 1)))
            .node("b", ops::map(|v| json!(v.as_i64().unwrap() + 2)))
            .node("sum", ops::map_all(|vs| {
                json!(vs.iter().map(|v| v.as_i64().unwrap()).sum::<i64>())
            }))
            .edge("src", "a")
            .edge("src", "b")
            .edge("a", "sum")
            .edge("b", "sum")
            .build()
            .unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(10)).unwrap();
        assert_eq!(r.outputs["sum"], json!(23)); // 11 + 12
    }

    #[test]
    fn branch_skips_unselected_path() {
        let dag = DagBuilder::new("br")
            .node("decide", ops::branch(|v| v.as_i64().unwrap() > 10))
            .node("big", ops::map(|v| json!(format!("big:{v}"))))
            .node("small", ops::map(|v| json!(format!("small:{v}"))))
            .edge_labeled("decide", "big", "true")
            .edge_labeled("decide", "small", "false")
            .build()
            .unwrap();
        let s = Scheduler::new();
        let r = s.run_batch(&dag, json!(42)).unwrap();
        assert_eq!(r.outputs["big"], json!("big:42"));
        assert_eq!(r.skipped, vec!["small".to_string()]);
        let r = s.run_batch(&dag, json!(1)).unwrap();
        assert_eq!(r.outputs["small"], json!("small:1"));
        assert_eq!(r.skipped, vec!["big".to_string()]);
    }

    #[test]
    fn skip_propagates_downstream() {
        let dag = DagBuilder::new("skipchain")
            .node("decide", ops::branch(|_| true))
            .node("no", ops::identity())
            .node("after_no", ops::identity())
            .node("yes", ops::identity())
            .edge_labeled("decide", "no", "false")
            .edge_labeled("decide", "yes", "true")
            .edge("no", "after_no")
            .build()
            .unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(1)).unwrap();
        assert!(r.skipped.contains(&"no".to_string()));
        assert!(r.skipped.contains(&"after_no".to_string()));
        assert!(r.outputs.contains_key("yes"));
    }

    #[test]
    fn unlabeled_edge_from_router_always_delivers() {
        let dag = DagBuilder::new("audit")
            .node("decide", ops::branch(|_| true))
            .node("audit", ops::identity())
            .edge("decide", "audit") // unlabeled: receives either branch
            .build()
            .unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(9)).unwrap();
        assert_eq!(r.outputs["audit"], json!(9));
    }

    #[test]
    fn multiple_roots_all_get_trigger() {
        let dag = DagBuilder::new("mr")
            .node("r1", ops::map(|v| json!(v.as_i64().unwrap() + 1)))
            .node("r2", ops::map(|v| json!(v.as_i64().unwrap() + 2)))
            .node("j", ops::join())
            .edge("r1", "j")
            .edge("r2", "j")
            .build()
            .unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(0)).unwrap();
        assert_eq!(r.outputs["j"], json!([1, 2]));
        // Two leaves? No — only j. sole_output works.
        assert_eq!(r.sole_output(), Some(&json!([1, 2])));
    }

    #[test]
    fn async_mode_matches_batch() {
        let dag = DagBuilder::new("fan")
            .node("src", ops::identity())
            .node("a", ops::map(|v| json!(v.as_i64().unwrap() + 1)))
            .node("b", ops::map(|v| json!(v.as_i64().unwrap() * 3)))
            .node("join", ops::join())
            .edge("src", "a")
            .edge("src", "b")
            .edge("a", "join")
            .edge("b", "join")
            .build()
            .unwrap();
        let s = Scheduler::new();
        let batch = s.run(&dag, json!(7), ExecutionMode::Batch).unwrap();
        let parallel = s.run(&dag, json!(7), ExecutionMode::Async).unwrap();
        assert_eq!(batch.outputs, parallel.outputs);
        assert_eq!(batch.skipped, parallel.skipped);
    }

    #[test]
    fn async_branch_semantics_match_batch() {
        let dag = DagBuilder::new("br")
            .node("decide", ops::branch(|v| v.as_i64().unwrap() % 2 == 0))
            .node("even", ops::identity())
            .node("odd", ops::identity())
            .edge_labeled("decide", "even", "true")
            .edge_labeled("decide", "odd", "false")
            .build()
            .unwrap();
        let s = Scheduler::new();
        for i in 0..4 {
            let a = s.run(&dag, json!(i), ExecutionMode::Batch).unwrap();
            let b = s.run(&dag, json!(i), ExecutionMode::Async).unwrap();
            assert_eq!(a.outputs, b.outputs);
        }
    }

    #[test]
    fn stream_mode_processes_events_in_order() {
        let r = Scheduler::new()
            .run_stream(&pipeline(), (1..=3).map(|i| json!(i)))
            .unwrap();
        let outs: Vec<i64> = r
            .iter()
            .map(|rr| rr.sole_output().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(outs, vec![4, 6, 8]); // (n+1)*2
    }

    #[test]
    fn execution_error_names_the_node() {
        let dag = DagBuilder::new("boom")
            .node("ok", ops::identity())
            .node("bad", ops::try_map(|_| Err("kaboom".into())))
            .edge("ok", "bad")
            .build()
            .unwrap();
        let e = Scheduler::new().run_batch(&dag, json!(1)).unwrap_err();
        match e {
            AwelError::Execution { node, cause } => {
                assert_eq!(node, "bad");
                assert_eq!(cause, "kaboom");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sole_output_none_with_two_ran_leaves() {
        let dag = DagBuilder::new("two")
            .node("src", ops::identity())
            .node("l1", ops::identity())
            .node("l2", ops::identity())
            .edge("src", "l1")
            .edge("src", "l2")
            .build()
            .unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(1)).unwrap();
        assert!(r.sole_output().is_none());
        assert_eq!(r.leaf_outputs().len(), 2);
    }
}
