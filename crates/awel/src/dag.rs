//! DAG construction and validation.
//!
//! "users can … construct a DAG … interconnecting multiple agents" (§2.4).
//! [`DagBuilder`] is the mutable construction phase; [`Dag`] is the
//! validated, immutable artifact — the typestate split means a cycle or a
//! dangling edge can never reach the scheduler.

use std::collections::HashMap;

use crate::error::AwelError;
use crate::operator::SharedOperator;

/// A node id (dense index into the DAG's node table).
pub type NodeId = usize;

/// One edge: source, target, optional routing label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Label for routed outputs (`None` = always deliver).
    pub label: Option<String>,
}

/// A validated workflow DAG.
pub struct Dag {
    name: String,
    node_names: Vec<String>,
    operators: Vec<SharedOperator>,
    edges: Vec<Edge>,
    /// Cached topological order.
    topo: Vec<NodeId>,
}

impl Dag {
    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node name by id.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id]
    }

    /// Node id by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name)
    }

    /// The operator at a node.
    pub fn operator(&self, id: NodeId) -> &SharedOperator {
        &self.operators[id]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Incoming edges of `id`, in insertion order.
    pub fn in_edges(&self, id: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.to == id).collect()
    }

    /// Outgoing edges of `id`, in insertion order.
    pub fn out_edges(&self, id: NodeId) -> Vec<&Edge> {
        self.edges.iter().filter(|e| e.from == id).collect()
    }

    /// Nodes with no incoming edges.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&n| !self.edges.iter().any(|e| e.to == n))
            .collect()
    }

    /// Nodes with no outgoing edges.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.node_count())
            .filter(|&n| !self.edges.iter().any(|e| e.from == n))
            .collect()
    }

    /// A topological order of all nodes.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Topological *levels*: each level's nodes only depend on earlier
    /// levels, so a level can run in parallel (async mode).
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut level_of = vec![0usize; self.node_count()];
        for &n in &self.topo {
            let l = self
                .in_edges(n)
                .iter()
                .map(|e| level_of[e.from] + 1)
                .max()
                .unwrap_or(0);
            level_of[n] = l;
        }
        let max_level = level_of.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_level + 1];
        for &n in &self.topo {
            levels[level_of[n]].push(n);
        }
        levels
    }

    /// Render `graphviz`-style text (handy for docs and debugging).
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph {} {{\n", self.name.replace(['-', ' '], "_"));
        for (i, n) in self.node_names.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"{n}\"];\n"));
        }
        for e in &self.edges {
            match &e.label {
                Some(l) => out.push_str(&format!("  n{} -> n{} [label=\"{l}\"];\n", e.from, e.to)),
                None => out.push_str(&format!("  n{} -> n{};\n", e.from, e.to)),
            }
        }
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dag")
            .field("name", &self.name)
            .field("nodes", &self.node_names)
            .field("edges", &self.edges.len())
            .finish()
    }
}

/// Accumulates nodes/edges; `build()` validates into a [`Dag`].
pub struct DagBuilder {
    name: String,
    node_names: Vec<String>,
    operators: Vec<SharedOperator>,
    /// Edges by name, resolved at build time.
    pending_edges: Vec<(String, String, Option<String>)>,
    error: Option<AwelError>,
}

impl DagBuilder {
    /// Start building a named workflow.
    pub fn new(name: impl Into<String>) -> Self {
        DagBuilder {
            name: name.into(),
            node_names: Vec::new(),
            operators: Vec::new(),
            pending_edges: Vec::new(),
            error: None,
        }
    }

    /// Add a named node. Duplicate names surface at `build()`.
    pub fn node(mut self, name: impl Into<String>, op: SharedOperator) -> Self {
        let name = name.into();
        if self.node_names.contains(&name) {
            self.error.get_or_insert(AwelError::DuplicateNode(name.clone()));
        }
        self.node_names.push(name);
        self.operators.push(op);
        self
    }

    /// Add an unlabeled edge.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.pending_edges.push((from.into(), to.into(), None));
        self
    }

    /// Add a labeled (branch) edge.
    pub fn edge_labeled(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        label: impl Into<String>,
    ) -> Self {
        self.pending_edges
            .push((from.into(), to.into(), Some(label.into())));
        self
    }

    /// Chain several nodes with unlabeled edges: `a >> b >> c`.
    pub fn chain(mut self, names: &[&str]) -> Self {
        for pair in names.windows(2) {
            self.pending_edges
                .push((pair[0].to_string(), pair[1].to_string(), None));
        }
        self
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Dag, AwelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.node_names.is_empty() {
            return Err(AwelError::EmptyDag);
        }
        let index: HashMap<&str, NodeId> = self
            .node_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut edges = Vec::with_capacity(self.pending_edges.len());
        for (from, to, label) in &self.pending_edges {
            let f = *index
                .get(from.as_str())
                .ok_or_else(|| AwelError::UnknownNode(from.clone()))?;
            let t = *index
                .get(to.as_str())
                .ok_or_else(|| AwelError::UnknownNode(to.clone()))?;
            edges.push(Edge {
                from: f,
                to: t,
                label: label.clone(),
            });
        }

        // Kahn's algorithm: topological sort + cycle detection.
        let n = self.node_names.len();
        let mut indegree = vec![0usize; n];
        for e in &edges {
            indegree[e.to] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        let mut qi = 0;
        while qi < queue.len() {
            let u = queue[qi];
            qi += 1;
            topo.push(u);
            for e in edges.iter().filter(|e| e.from == u) {
                indegree[e.to] -= 1;
                if indegree[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        if topo.len() != n {
            let cyclic: Vec<String> = (0..n)
                .filter(|&i| !topo.contains(&i))
                .map(|i| self.node_names[i].clone())
                .collect();
            return Err(AwelError::CycleDetected(cyclic));
        }

        Ok(Dag {
            name: self.name,
            node_names: self.node_names,
            operators: self.operators,
            edges,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ops;
    use serde_json::json;

    fn diamond() -> Dag {
        DagBuilder::new("diamond")
            .node("a", ops::identity())
            .node("b", ops::identity())
            .node("c", ops::identity())
            .node("d", ops::join())
            .edge("a", "b")
            .edge("a", "c")
            .edge("b", "d")
            .edge("c", "d")
            .build()
            .unwrap()
    }

    #[test]
    fn build_diamond() {
        let d = diamond();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.roots(), vec![d.node_id("a").unwrap()]);
        assert_eq!(d.leaves(), vec![d.node_id("d").unwrap()]);
    }

    #[test]
    fn topo_order_respects_edges() {
        let d = diamond();
        let pos: Vec<usize> = (0..4)
            .map(|n| d.topo_order().iter().position(|&x| x == n).unwrap())
            .collect();
        for e in d.edges() {
            assert!(pos[e.from] < pos[e.to]);
        }
    }

    #[test]
    fn levels_group_parallel_nodes() {
        let d = diamond();
        let levels = d.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![d.node_id("a").unwrap()]);
        assert_eq!(levels[1].len(), 2); // b and c in parallel
        assert_eq!(levels[2], vec![d.node_id("d").unwrap()]);
    }

    #[test]
    fn cycle_rejected() {
        let e = DagBuilder::new("cycle")
            .node("a", ops::identity())
            .node("b", ops::identity())
            .edge("a", "b")
            .edge("b", "a")
            .build()
            .unwrap_err();
        assert!(matches!(e, AwelError::CycleDetected(_)));
    }

    #[test]
    fn self_loop_rejected() {
        let e = DagBuilder::new("selfie")
            .node("a", ops::identity())
            .edge("a", "a")
            .build()
            .unwrap_err();
        assert!(matches!(e, AwelError::CycleDetected(_)));
    }

    #[test]
    fn duplicate_node_rejected() {
        let e = DagBuilder::new("dup")
            .node("a", ops::identity())
            .node("a", ops::identity())
            .build()
            .unwrap_err();
        assert_eq!(e, AwelError::DuplicateNode("a".into()));
    }

    #[test]
    fn unknown_edge_endpoint_rejected() {
        let e = DagBuilder::new("ghost")
            .node("a", ops::identity())
            .edge("a", "ghost")
            .build()
            .unwrap_err();
        assert_eq!(e, AwelError::UnknownNode("ghost".into()));
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(DagBuilder::new("e").build().unwrap_err(), AwelError::EmptyDag);
    }

    #[test]
    fn chain_builds_linear_edges() {
        let d = DagBuilder::new("chain")
            .node("x", ops::identity())
            .node("y", ops::identity())
            .node("z", ops::identity())
            .chain(&["x", "y", "z"])
            .build()
            .unwrap();
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.leaves().len(), 1);
    }

    #[test]
    fn labeled_edges_kept() {
        let d = DagBuilder::new("l")
            .node("b", ops::branch(|v| v.as_bool().unwrap_or(false)))
            .node("t", ops::identity())
            .node("f", ops::identity())
            .edge_labeled("b", "t", "true")
            .edge_labeled("b", "f", "false")
            .build()
            .unwrap();
        let out = d.out_edges(d.node_id("b").unwrap());
        assert_eq!(out[0].label.as_deref(), Some("true"));
        assert_eq!(out[1].label.as_deref(), Some("false"));
        let _ = json!(null);
    }

    #[test]
    fn dot_rendering() {
        let dot = diamond().to_dot();
        assert!(dot.starts_with("digraph diamond {"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn multiple_roots_allowed() {
        let d = DagBuilder::new("multi")
            .node("r1", ops::identity())
            .node("r2", ops::identity())
            .node("sink", ops::join())
            .edge("r1", "sink")
            .edge("r2", "sink")
            .build()
            .unwrap();
        assert_eq!(d.roots().len(), 2);
    }
}
