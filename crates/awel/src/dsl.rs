//! The declarative AWEL expression language.
//!
//! "With AWEL, users can implement their execution plan for multi-agents
//! with simple expression (i.e. few lines of code)" (§1). DB-GPT's Python
//! library overloads `>>`; this crate gives the same surface as a small
//! textual DSL:
//!
//! ```text
//! # the Fig. 3 generative-data-analysis workflow
//! dag sales_report {
//!     node chart_category = chart_generator;
//!     node chart_user     = chart_generator;
//!     node chart_month    = chart_generator;
//!
//!     plan >> [chart_category, chart_user, chart_month] >> aggregate;
//! }
//! ```
//!
//! Grammar (one statement per `;`):
//!
//! - `node <name> = <operator>` — declare a node using a registry operator.
//!   Undeclared names used in paths are implicitly `node n = n`.
//! - `a >> b >> c` — chain edges.
//! - `[a, b] >> c` / `a >> [b, c]` — fan-in / fan-out.
//! - `a >>|label| b` — a labeled (branch) edge.
//! - `#` starts a comment.

use crate::dag::{Dag, DagBuilder};
use crate::error::AwelError;
use crate::registry::OperatorRegistry;

/// Parse DSL text into a validated [`Dag`], resolving operator names
/// through `registry`.
pub fn parse_dsl(text: &str, registry: &OperatorRegistry) -> Result<Dag, AwelError> {
    let cleaned = strip_comments(text);
    let (name, body) = split_header(&cleaned)?;

    // Collect statements.
    let mut declared: Vec<(String, String)> = Vec::new(); // node -> operator
    let mut edges: Vec<(String, String, Option<String>)> = Vec::new();
    let mut mentioned: Vec<String> = Vec::new();

    for stmt in body.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("node ") {
            let (node, op) = rest.split_once('=').ok_or_else(|| {
                AwelError::Parse(format!("node declaration needs `=`: `{stmt}`"))
            })?;
            let node = node.trim().to_string();
            let op = op.trim().to_string();
            if node.is_empty() || op.is_empty() {
                return Err(AwelError::Parse(format!("bad node declaration `{stmt}`")));
            }
            if declared.iter().any(|(n, _)| *n == node) {
                return Err(AwelError::DuplicateNode(node));
            }
            declared.push((node, op));
            continue;
        }
        parse_path(stmt, &mut edges, &mut mentioned)?;
    }

    // Implicit declarations: any mentioned node not declared maps to an
    // operator of the same name.
    for m in &mentioned {
        if !declared.iter().any(|(n, _)| n == m) {
            declared.push((m.clone(), m.clone()));
        }
    }
    if declared.is_empty() {
        return Err(AwelError::EmptyDag);
    }

    let mut builder = DagBuilder::new(name);
    for (node, op_name) in &declared {
        let op = registry.get(op_name)?;
        builder = builder.node(node.clone(), op);
    }
    for (from, to, label) in edges {
        builder = match label {
            Some(l) => builder.edge_labeled(from, to, l),
            None => builder.edge(from, to),
        };
    }
    builder.build()
}

/// Remove `#` comments.
fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Split `dag <name> { body }`; a bare body (no header) is named "dag".
fn split_header(text: &str) -> Result<(String, String), AwelError> {
    let trimmed = text.trim();
    if let Some(rest) = trimmed.strip_prefix("dag") {
        let open = rest
            .find('{')
            .ok_or_else(|| AwelError::Parse("expected `{` after dag name".into()))?;
        let name = rest[..open].trim().to_string();
        if name.is_empty() {
            return Err(AwelError::Parse("dag needs a name".into()));
        }
        let after = &rest[open + 1..];
        let close = after
            .rfind('}')
            .ok_or_else(|| AwelError::Parse("missing closing `}`".into()))?;
        Ok((name, after[..close].to_string()))
    } else {
        Ok(("dag".to_string(), trimmed.to_string()))
    }
}

/// Parse one `a >> [b, c] >>|l| d` path statement.
fn parse_path(
    stmt: &str,
    edges: &mut Vec<(String, String, Option<String>)>,
    mentioned: &mut Vec<String>,
) -> Result<(), AwelError> {
    // Tokenize into groups and connectors.
    #[derive(Debug)]
    enum Piece {
        Group(Vec<String>),
        Arrow(Option<String>),
    }
    let mut pieces = Vec::new();
    let mut rest = stmt.trim();
    while !rest.is_empty() {
        if let Some(r) = rest.strip_prefix(">>") {
            // Optional |label|
            let r = r.trim_start();
            if let Some(r2) = r.strip_prefix('|') {
                let end = r2
                    .find('|')
                    .ok_or_else(|| AwelError::Parse(format!("unclosed label in `{stmt}`")))?;
                let label = r2[..end].trim().to_string();
                pieces.push(Piece::Arrow(Some(label)));
                rest = r2[end + 1..].trim_start();
            } else {
                pieces.push(Piece::Arrow(None));
                rest = r;
            }
        } else if let Some(r) = rest.strip_prefix('[') {
            let end = r
                .find(']')
                .ok_or_else(|| AwelError::Parse(format!("unclosed `[` in `{stmt}`")))?;
            let names: Vec<String> = r[..end]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if names.is_empty() {
                return Err(AwelError::Parse(format!("empty group in `{stmt}`")));
            }
            pieces.push(Piece::Group(names));
            rest = r[end + 1..].trim_start();
        } else {
            // Bare identifier up to whitespace or '>'.
            let end = rest
                .find(|c: char| c.is_whitespace() || c == '>' || c == '[')
                .unwrap_or(rest.len());
            let name = rest[..end].trim().to_string();
            if name.is_empty() {
                return Err(AwelError::Parse(format!("cannot parse `{stmt}`")));
            }
            pieces.push(Piece::Group(vec![name]));
            rest = rest[end..].trim_start();
        }
    }

    // Validate alternation group (arrow group)* and emit edges.
    let mut prev: Option<Vec<String>> = None;
    let mut pending_label: Option<Option<String>> = None;
    for piece in pieces {
        match piece {
            Piece::Group(names) => {
                for n in &names {
                    if !mentioned.contains(n) {
                        mentioned.push(n.clone());
                    }
                }
                match (prev.take(), pending_label.take()) {
                    (None, None) => prev = Some(names),
                    (Some(sources), Some(label)) => {
                        for s in &sources {
                            for t in &names {
                                edges.push((s.clone(), t.clone(), label.clone()));
                            }
                        }
                        prev = Some(names);
                    }
                    _ => {
                        return Err(AwelError::Parse(format!(
                            "two groups without `>>` in `{stmt}`"
                        )))
                    }
                }
            }
            Piece::Arrow(label) => {
                if prev.is_none() || pending_label.is_some() {
                    return Err(AwelError::Parse(format!("misplaced `>>` in `{stmt}`")));
                }
                pending_label = Some(label);
            }
        }
    }
    if pending_label.is_some() {
        return Err(AwelError::Parse(format!("dangling `>>` in `{stmt}`")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ops;
    use crate::scheduler::Scheduler;
    use serde_json::json;

    fn registry() -> OperatorRegistry {
        let mut r = OperatorRegistry::with_builtins();
        r.register("inc", ops::map(|v| json!(v.as_i64().unwrap() + 1)));
        r.register("double", ops::map(|v| json!(v.as_i64().unwrap() * 2)));
        r.register(
            "sum",
            ops::map_all(|vs| json!(vs.iter().map(|v| v.as_i64().unwrap()).sum::<i64>())),
        );
        r.register("is_big", ops::branch(|v| v.as_i64().unwrap() > 10));
        r
    }

    #[test]
    fn parse_linear_chain() {
        let dag = parse_dsl("dag p { inc >> double; }", &registry()).unwrap();
        assert_eq!(dag.name(), "p");
        assert_eq!(dag.node_count(), 2);
        let r = Scheduler::new().run_batch(&dag, json!(3)).unwrap();
        assert_eq!(r.outputs["double"], json!(8));
    }

    #[test]
    fn parse_fan_out_fan_in() {
        let text = "dag f {\n  node a = inc;\n  node b = double;\n  identity >> [a, b] >> sum;\n}";
        let dag = parse_dsl(text, &registry()).unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(5)).unwrap();
        assert_eq!(r.outputs["sum"], json!(16)); // (5+1)+(5*2)
    }

    #[test]
    fn parse_labeled_branch() {
        let text = "dag b {\n node t = identity; node f = identity;\n is_big >>|true| t; is_big >>|false| f;\n}";
        let dag = parse_dsl(text, &registry()).unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(50)).unwrap();
        assert!(r.outputs.contains_key("t"));
        assert!(r.skipped.contains(&"f".to_string()));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\ndag c {\n  # inner\n  inc >> double; # trailing\n}";
        assert!(parse_dsl(text, &registry()).is_ok());
    }

    #[test]
    fn bare_body_without_header() {
        let dag = parse_dsl("inc >> double", &registry()).unwrap();
        assert_eq!(dag.name(), "dag");
    }

    #[test]
    fn node_aliases_let_one_operator_appear_twice() {
        let text = "dag a { node i1 = inc; node i2 = inc; i1 >> i2; }";
        let dag = parse_dsl(text, &registry()).unwrap();
        let r = Scheduler::new().run_batch(&dag, json!(0)).unwrap();
        assert_eq!(r.outputs["i2"], json!(2));
    }

    #[test]
    fn unknown_operator_rejected() {
        let e = parse_dsl("dag x { mystery >> inc; }", &registry()).unwrap_err();
        assert_eq!(e, AwelError::UnknownOperator("mystery".into()));
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e = parse_dsl("dag x { node a = inc; node a = double; a >> a; }", &registry())
            .unwrap_err();
        assert!(matches!(e, AwelError::DuplicateNode(_)));
    }

    #[test]
    fn cycle_in_dsl_rejected() {
        let e = parse_dsl("dag x { inc >> double; double >> inc; }", &registry()).unwrap_err();
        assert!(matches!(e, AwelError::CycleDetected(_)));
    }

    #[test]
    fn syntax_errors_are_descriptive() {
        let r = registry();
        assert!(matches!(parse_dsl("dag x { inc >> ; }", &r), Err(AwelError::Parse(_))));
        assert!(matches!(parse_dsl("dag x { [ >> inc; }", &r), Err(AwelError::Parse(_))));
        assert!(matches!(parse_dsl("dag { inc >> double; }", &r), Err(AwelError::Parse(_))));
        assert!(matches!(parse_dsl("dag x  inc >> double; }", &r), Err(AwelError::Parse(_))));
        assert!(matches!(
            parse_dsl("dag x { inc >>|oops double; }", &r),
            Err(AwelError::Parse(_))
        ));
        assert!(matches!(
            parse_dsl("dag x { inc double; }", &r),
            Err(AwelError::Parse(_))
        ));
        assert!(matches!(
            parse_dsl("node a = ", &r),
            Err(AwelError::Parse(_)) | Err(AwelError::EmptyDag)
        ));
    }

    #[test]
    fn figure3_workflow_parses() {
        let mut r = registry();
        r.register("plan", ops::identity());
        r.register("chart_generator", ops::identity());
        r.register("aggregate", ops::join());
        let text = "dag sales_report {\n\
            node chart_category = chart_generator;\n\
            node chart_user = chart_generator;\n\
            node chart_month = chart_generator;\n\
            plan >> [chart_category, chart_user, chart_month] >> aggregate;\n\
        }";
        let dag = parse_dsl(text, &r).unwrap();
        assert_eq!(dag.node_count(), 5);
        assert_eq!(dag.edge_count(), 6);
        let run = Scheduler::new().run_batch(&dag, json!("goal")).unwrap();
        assert_eq!(run.outputs["aggregate"], json!(["goal", "goal", "goal"]));
    }
}
