//! Property tests for the AWEL DSL: generated programs parse, validate and
//! execute to the value a Rust-side interpreter predicts.

use proptest::prelude::*;
use serde_json::json;

use dbgpt_awel::{ops, parse_dsl, OperatorRegistry, Scheduler};

/// A palette entry: op name and its effect on an i64.
type PaletteOp = (&'static str, fn(i64) -> i64);

/// The op palette: name → effect on an i64.
const PALETTE: &[PaletteOp] = &[
    ("inc", |x| x + 1),
    ("dec", |x| x - 1),
    ("double", |x| x * 2),
    ("negate", |x| -x),
];

fn registry() -> OperatorRegistry {
    let mut r = OperatorRegistry::with_builtins();
    r.register("inc", ops::map(|v| json!(v.as_i64().unwrap() + 1)));
    r.register("dec", ops::map(|v| json!(v.as_i64().unwrap() - 1)));
    r.register("double", ops::map(|v| json!(v.as_i64().unwrap() * 2)));
    r.register("negate", ops::map(|v| json!(-v.as_i64().unwrap())));
    r.register(
        "sum",
        ops::map_all(|vs| json!(vs.iter().map(|v| v.as_i64().unwrap()).sum::<i64>())),
    );
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A random chain `a >> b >> c …` computes the composed function.
    #[test]
    fn random_chains_compute_composition(
        chain in proptest::collection::vec(0usize..PALETTE.len(), 1..6),
        trigger in -100i64..100,
    ) {
        // Alias each step so repeated ops get unique node names.
        let mut decls = String::new();
        let mut path = Vec::new();
        for (i, &op) in chain.iter().enumerate() {
            let node = format!("n{i}");
            decls.push_str(&format!("node {node} = {};\n", PALETTE[op].0));
            path.push(node);
        }
        let dsl = format!("dag p {{\n{decls}{};\n}}", path.join(" >> "));
        let dag = parse_dsl(&dsl, &registry()).unwrap();
        let run = Scheduler::new().run_batch(&dag, json!(trigger)).unwrap();
        let expected = chain.iter().fold(trigger, |acc, &op| (PALETTE[op].1)(acc));
        prop_assert_eq!(run.sole_output().unwrap(), &json!(expected));
    }

    /// A random fan-out into `sum` equals the Rust-side sum.
    #[test]
    fn random_fanout_sums(
        branches in proptest::collection::vec(0usize..PALETTE.len(), 1..8),
        trigger in -50i64..50,
    ) {
        let mut decls = String::new();
        let mut names = Vec::new();
        for (i, &op) in branches.iter().enumerate() {
            let node = format!("b{i}");
            decls.push_str(&format!("node {node} = {};\n", PALETTE[op].0));
            names.push(node);
        }
        let dsl = format!(
            "dag f {{\n{decls}identity >> [{}] >> sum;\n}}",
            names.join(", ")
        );
        let dag = parse_dsl(&dsl, &registry()).unwrap();
        let run = Scheduler::new().run_batch(&dag, json!(trigger)).unwrap();
        let expected: i64 = branches.iter().map(|&op| (PALETTE[op].1)(trigger)).sum();
        prop_assert_eq!(&run.outputs["sum"], &json!(expected));
    }

    /// Whitespace and comments never change the parse.
    #[test]
    fn formatting_is_irrelevant(extra_ws in "[ \t]{0,5}", comment in "[a-z ]{0,20}") {
        let terse = "dag x { inc >> double; }";
        let airy = format!(
            "dag x {{\n{extra_ws}# {comment}\n{extra_ws}inc{extra_ws} >> {extra_ws}double ;\n}}"
        );
        let r = registry();
        let a = parse_dsl(terse, &r).unwrap();
        let b = parse_dsl(&airy, &r).unwrap();
        prop_assert_eq!(a.node_count(), b.node_count());
        prop_assert_eq!(a.edge_count(), b.edge_count());
        let s = Scheduler::new();
        prop_assert_eq!(
            s.run_batch(&a, json!(3)).unwrap().outputs,
            s.run_batch(&b, json!(3)).unwrap().outputs
        );
    }

    /// The parser is total: arbitrary text parses or errors, never panics.
    #[test]
    fn parser_total(text in ".{0,120}") {
        let _ = parse_dsl(&text, &registry());
    }
}
