//! Byte-identity properties of the observability layer.
//!
//! Two guarantees, exercised end to end through the serving path (chat
//! with full resilience over a flaky fleet, then a batched `chat_many`
//! through the engine path):
//!
//! 1. **Off is free.** A server built with `ObsConfig::disabled()` — what
//!    every legacy constructor passes — produces byte-for-byte the same
//!    outcomes, clock advance and resilience metrics as one with
//!    observability enabled: recording must never perturb semantics.
//! 2. **On is deterministic.** Two enabled runs under the same seeds dump
//!    byte-identical trace JSON and metric snapshots.

use dbgpt_llm::catalog::builtin_model;
use dbgpt_llm::GenerationParams;
use dbgpt_obs::ObsConfig;
use dbgpt_smmf::{
    ApiServer, DeploymentMode, EngineConfig, Locality, ModelWorker, ResilienceConfig,
    RoutingPolicy,
};

fn flaky(id: &str, rate: f64, seed: u64) -> ModelWorker {
    ModelWorker::with_faults(id, builtin_model("sim-qwen").unwrap(), Locality::Local, rate, seed)
}

/// One mixed workload: 20 sequential chats against a flaky fleet under
/// full resilience (retries, breakers, hedging all live), then 6 batched
/// jobs with a shared prompt prefix through the engine path. Returns the
/// observable request semantics plus the server for trace inspection.
#[allow(clippy::type_complexity)]
fn run_workload(
    seed: u64,
    obs: ObsConfig,
) -> (Vec<Result<(String, u64), &'static str>>, u64, String, ApiServer) {
    let mut cfg = ResilienceConfig::full();
    cfg.deadline_budget_us = None; // let latencies vary instead of masking them
    let mut s = ApiServer::with_observability(
        DeploymentMode::Local,
        RoutingPolicy::Weighted,
        seed,
        cfg,
        EngineConfig::full(),
        obs,
    );
    for i in 0..3 {
        s.register_worker(flaky(&format!("w{i}"), 0.3, seed + i)).unwrap();
    }
    let mut outcomes = Vec::new();
    for _ in 0..20 {
        s.advance_clock(7_000);
        outcomes.push(
            s.chat("sim-qwen", "explain join ordering", &GenerationParams::default())
                .map(|c| (c.text, c.simulated_latency_us))
                .map_err(|e| e.kind()),
        );
    }
    let jobs: Vec<(String, GenerationParams)> = (0..6)
        .map(|i| {
            (
                format!("### system: data copilot\nshared prefix\nQ{i}: join ordering?"),
                GenerationParams::default(),
            )
        })
        .collect();
    for r in s.chat_many("sim-qwen", &jobs) {
        outcomes.push(
            r.map(|c| (c.text, c.simulated_latency_us)).map_err(|e| e.kind()),
        );
    }
    let now = s.now_us();
    let metrics = format!("{:?}", s.metrics());
    (outcomes, now, metrics, s)
}

#[test]
fn disabled_observability_is_byte_identical_to_enabled_semantics() {
    for seed in [1u64, 7, 23] {
        let (out_off, clock_off, metrics_off, s_off) =
            run_workload(seed, ObsConfig::disabled());
        let (out_on, clock_on, metrics_on, s_on) =
            run_workload(seed, ObsConfig::enabled(seed ^ 0x5a5a));
        assert_eq!(out_off, out_on, "seed {seed}: outcomes must match");
        assert_eq!(clock_off, clock_on, "seed {seed}: clock must match");
        assert_eq!(metrics_off, metrics_on, "seed {seed}: metrics must match");
        // The disabled handle recorded nothing; the enabled one did.
        assert_eq!(s_off.obs().span_count(), 0);
        assert!(s_on.obs().span_count() > 0);
        assert!(s_on.obs().counter_value("smmf.requests") >= 26);
    }
}

#[test]
fn legacy_constructor_and_disabled_observability_are_the_same_server() {
    let drive = |s: &mut ApiServer| {
        s.deploy_builtin("sim-qwen", 2).unwrap();
        (0..10)
            .map(|_| {
                s.advance_clock(2_500);
                s.chat("sim-qwen", "hello", &GenerationParams::default())
                    .map(|c| c.text)
                    .map_err(|e| e.kind())
            })
            .collect::<Vec<_>>()
    };
    let mut legacy = ApiServer::with_engine(
        DeploymentMode::Local,
        RoutingPolicy::RoundRobin,
        3,
        ResilienceConfig::full(),
        EngineConfig::disabled(),
    );
    let mut explicit = ApiServer::with_observability(
        DeploymentMode::Local,
        RoutingPolicy::RoundRobin,
        3,
        ResilienceConfig::full(),
        EngineConfig::disabled(),
        ObsConfig::disabled(),
    );
    assert_eq!(drive(&mut legacy), drive(&mut explicit));
    assert_eq!(legacy.now_us(), explicit.now_us());
    assert_eq!(format!("{:?}", legacy.metrics()), format!("{:?}", explicit.metrics()));
    assert!(!legacy.obs().is_enabled());
}

#[test]
fn enabled_runs_with_the_same_seeds_dump_identical_bytes() {
    let dump = || {
        let (_, _, _, s) = run_workload(11, ObsConfig::enabled(99));
        (s.obs().trace_json(), s.obs().metrics_json())
    };
    let (trace_a, metrics_a) = dump();
    let (trace_b, metrics_b) = dump();
    assert_eq!(trace_a, trace_b, "trace dumps must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metric snapshots must be byte-identical");
}

#[test]
fn observability_seed_tags_span_ids_but_not_metrics() {
    let (_, _, _, a) = run_workload(11, ObsConfig::enabled(1));
    let (_, _, _, b) = run_workload(11, ObsConfig::enabled(2));
    assert_eq!(
        a.obs().metrics_json(),
        b.obs().metrics_json(),
        "metrics reflect the workload, not the obs seed"
    );
    assert_ne!(
        a.obs().trace_json(),
        b.obs().trace_json(),
        "span-id blocks are derived from the obs seed"
    );
    assert_eq!(a.obs().span_count(), b.obs().span_count());
}
