//! Chaos-harness integration tests: the acceptance criteria of the
//! resilience layer, exercised end to end through [`dbgpt_smmf::chaos`].

use dbgpt_smmf::chaos::{full_with_fallback, run_scenario, Scenario};
use dbgpt_smmf::{ResilienceConfig, RoutingPolicy};

/// The headline acceptance criterion: a fleet where every replica fails
/// 30% of requests, 500 requests, full resilience — availability must be
/// at least 99% and strictly better than the resilience-disabled
/// baseline under the same seed.
#[test]
fn flaky_fleet_500_full_resilience_hits_99_percent() {
    let sc = Scenario::flaky(500, 0.3);
    let disabled = run_scenario(
        &sc,
        RoutingPolicy::RoundRobin,
        &ResilienceConfig::disabled(),
        "disabled",
        42,
    );
    let full = run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
    assert!(
        full.availability() >= 0.99,
        "full resilience availability {:.4} < 0.99",
        full.availability()
    );
    assert!(
        full.availability() > disabled.availability(),
        "full {:.4} must strictly exceed disabled {:.4}",
        full.availability(),
        disabled.availability()
    );
}

/// Same seed ⇒ byte-identical reports, across the whole scenario suite
/// and every routing policy.
#[test]
fn reports_are_byte_identical_for_the_same_seed() {
    let sweep = || -> Vec<String> {
        let mut out = Vec::new();
        for sc in Scenario::suite(80) {
            for &policy in RoutingPolicy::ALL {
                for (cfg, label) in [
                    (ResilienceConfig::disabled(), "disabled"),
                    (full_with_fallback(), "full"),
                ] {
                    out.push(run_scenario(&sc, policy, &cfg, label, 42).to_json());
                }
            }
        }
        out
    };
    assert_eq!(sweep(), sweep());
}

/// Two replicas crash for half the run: the breaker fences them off and
/// the survivors carry the load; after restoration they re-enter through
/// half-open probes.
#[test]
fn crash_scenario_full_resilience_stays_available() {
    let sc = Scenario::crash(300);
    let rep = run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
    assert!(rep.availability() >= 0.99, "availability {:.4}", rep.availability());
    assert!(rep.metrics.breaker_opens > 0, "breakers never fenced the crashed replicas");
}

/// Mass outage: with the fallback tier the system degrades gracefully
/// instead of going dark, and recovers once the primary tier returns.
#[test]
fn mass_outage_degrades_to_fallback_then_recovers() {
    let sc = Scenario::outage_recovery(300);
    let full = run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
    let disabled = run_scenario(
        &sc,
        RoutingPolicy::RoundRobin,
        &ResilienceConfig::disabled(),
        "disabled",
        42,
    );
    assert!(full.metrics.fallbacks > 0, "outage never reached the fallback tier");
    assert!(
        full.availability() > disabled.availability(),
        "full {:.4} vs disabled {:.4}",
        full.availability(),
        disabled.availability()
    );
    assert!(full.availability() >= 0.95, "availability {:.4}", full.availability());
    // The tail of the run is served by the recovered primary tier again:
    // the last requests' latency is primary-tier latency, not fallback.
    assert!(full.latency_max_us >= dbgpt_smmf::chaos::PRIMARY_LATENCY_US);
}

/// A latency-spiked replica is raced by a hedge and the deterministic
/// winner keeps tail latency bounded.
#[test]
fn latency_spike_tail_is_bounded_by_hedging() {
    let sc = Scenario::latency_spike(300);
    let full = run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
    let disabled = run_scenario(
        &sc,
        RoutingPolicy::RoundRobin,
        &ResilienceConfig::disabled(),
        "disabled",
        42,
    );
    assert!(full.metrics.hedge_wins > 0);
    assert!(
        full.latency_max_us < disabled.latency_max_us,
        "hedged tail {} must beat unhedged {}",
        full.latency_max_us,
        disabled.latency_max_us
    );
    // Goodput (SLO-conforming successes) is where hedging pays off.
    assert!(
        full.goodput() > disabled.goodput(),
        "full goodput {:.4} vs disabled {:.4}",
        full.goodput(),
        disabled.goodput()
    );
}
