//! Chaos scenario harness: scripted fault schedules against a live
//! [`ApiServer`].
//!
//! A [`Scenario`] is a request count plus a schedule of [`Fault`] events
//! keyed by request index — crash a replica, make the fleet flaky, spike
//! a replica's latency, take the whole tier down and bring it back.
//! [`run_scenario`] replays the schedule against a freshly built
//! deployment under a chosen routing policy and
//! [`ResilienceConfig`], and reports availability, goodput
//! (SLO-conforming successes), latency percentiles, and the resilience
//! counters. Everything is seeded and driven by the server's simulated
//! clock, so the same `(scenario, policy, config, seed)` tuple reproduces
//! byte-identical results — the property benchmark E2 asserts.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use dbgpt_llm::latency::LatencyModel;
use dbgpt_llm::{GenerationParams, SharedModel, SimLlm, SimModelSpec};

use crate::privacy::{DeploymentMode, Locality};
use crate::resilience::{ResilienceConfig, ResilienceMetrics};
use crate::router::RoutingPolicy;
use crate::server::ApiServer;
use crate::worker::ModelWorker;

/// Model name of the primary serving tier built by [`run_scenario`].
pub const PRIMARY_MODEL: &str = "chaos-primary";
/// Model name of the fallback tier (always deployed; only used when the
/// config names it in [`ResilienceConfig::fallback_model`]).
pub const FALLBACK_MODEL: &str = "chaos-fallback";
/// Primary tier replica count.
pub const PRIMARY_REPLICAS: usize = 6;
/// Fallback tier replica count.
pub const FALLBACK_REPLICAS: usize = 2;
/// Primary per-request simulated latency, µs.
pub const PRIMARY_LATENCY_US: u64 = 40_000;
/// Fallback (smaller model) per-request simulated latency, µs.
pub const FALLBACK_LATENCY_US: u64 = 15_000;
/// Simulated gap between request arrivals, µs (breaker cool-downs and
/// hedge delays elapse against this clock).
pub const INTER_ARRIVAL_US: u64 = 50_000;

/// A constant-latency simulated model: every request costs exactly
/// `latency_us` regardless of token counts. Chaos scenarios use it so
/// latency shifts are attributable to injected faults alone.
pub fn const_model(name: &str, latency_us: u64) -> SharedModel {
    let mut spec = SimModelSpec::for_tests(name);
    spec.latency = LatencyModel {
        base_us: latency_us,
        prefill_us_per_token: 0,
        decode_us_per_token: 0,
    };
    Arc::new(SimLlm::with_default_skills(spec))
}

/// One injected fault. Worker indices address the primary tier's replicas
/// in id order (`w0`…).
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Hard-crash one replica (every request fails until restored).
    Crash {
        /// Primary-tier replica index.
        worker: usize,
    },
    /// Undo a crash.
    Restore {
        /// Primary-tier replica index.
        worker: usize,
    },
    /// Set one replica's injected failure rate.
    Flaky {
        /// Primary-tier replica index.
        worker: usize,
        /// Probability a request fails.
        rate: f64,
    },
    /// Set every primary replica's failure rate.
    FlakyAll {
        /// Probability a request fails.
        rate: f64,
    },
    /// Multiply one replica's simulated latency (`1.0` restores it).
    LatencySpike {
        /// Primary-tier replica index.
        worker: usize,
        /// Latency multiplier.
        factor: f64,
    },
    /// Crash the entire primary tier.
    MassOutage,
    /// Restore the entire primary tier.
    MassRecovery,
}

/// A fault scheduled at a request index.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Fire just before this request (0-based) is issued.
    pub at_request: usize,
    /// What happens.
    pub fault: Fault,
}

/// A scripted chaos scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (stable; used as the report key).
    pub name: &'static str,
    /// Requests to issue.
    pub requests: usize,
    /// Latency SLO for goodput accounting, simulated µs.
    pub slo_us: u64,
    /// The fault schedule (sorted by `at_request`).
    pub events: Vec<FaultEvent>,
}

impl Scenario {
    /// Steady state: no faults at all (sanity floor — every arm should be
    /// at 100%).
    pub fn steady(requests: usize) -> Self {
        Scenario {
            name: "steady",
            requests,
            slo_us: 200_000,
            events: Vec::new(),
        }
    }

    /// Every replica flaky at rate `p` from the first request on.
    pub fn flaky(requests: usize, p: f64) -> Self {
        Scenario {
            name: "flaky",
            requests,
            slo_us: 200_000,
            events: vec![FaultEvent {
                at_request: 0,
                fault: Fault::FlakyAll { rate: p },
            }],
        }
    }

    /// Two replicas crash early and come back much later.
    pub fn crash(requests: usize) -> Self {
        let down = requests / 10;
        let up = requests * 6 / 10;
        Scenario {
            name: "crash",
            requests,
            slo_us: 200_000,
            events: vec![
                FaultEvent { at_request: down, fault: Fault::Crash { worker: 0 } },
                FaultEvent { at_request: down, fault: Fault::Crash { worker: 1 } },
                FaultEvent { at_request: up, fault: Fault::Restore { worker: 0 } },
                FaultEvent { at_request: up, fault: Fault::Restore { worker: 1 } },
            ],
        }
    }

    /// One replica's latency degrades 50× for half the run.
    pub fn latency_spike(requests: usize) -> Self {
        let spike = requests * 2 / 10;
        let clear = requests * 7 / 10;
        Scenario {
            name: "latency-spike",
            requests,
            slo_us: 200_000,
            events: vec![
                FaultEvent {
                    at_request: spike,
                    fault: Fault::LatencySpike { worker: 0, factor: 50.0 },
                },
                FaultEvent {
                    at_request: clear,
                    fault: Fault::LatencySpike { worker: 0, factor: 1.0 },
                },
            ],
        }
    }

    /// The whole primary tier goes down, then recovers.
    pub fn outage_recovery(requests: usize) -> Self {
        Scenario {
            name: "outage-recovery",
            requests,
            slo_us: 200_000,
            events: vec![
                FaultEvent { at_request: requests * 2 / 10, fault: Fault::MassOutage },
                FaultEvent { at_request: requests * 4 / 10, fault: Fault::MassRecovery },
            ],
        }
    }

    /// The standard scenario suite benchmark E2 sweeps.
    pub fn suite(requests: usize) -> Vec<Scenario> {
        vec![
            Scenario::steady(requests),
            Scenario::flaky(requests, 0.3),
            Scenario::crash(requests),
            Scenario::latency_spike(requests),
            Scenario::outage_recovery(requests),
        ]
    }
}

/// [`ResilienceConfig::full`] plus the chaos fallback tier — the "full"
/// arm of the E2 sweep.
pub fn full_with_fallback() -> ResilienceConfig {
    let mut cfg = ResilienceConfig::full();
    cfg.fallback_model = Some(FALLBACK_MODEL.to_string());
    cfg
}

/// Outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Routing policy name.
    pub policy: String,
    /// Resilience-config label (e.g. `disabled` / `full`).
    pub config: String,
    /// Seed the run used.
    pub seed: u64,
    /// Requests issued.
    pub requests: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Successes whose simulated latency met the scenario SLO.
    pub ok_within_slo: u64,
    /// Mean simulated latency over successes, µs.
    pub latency_mean_us: u64,
    /// Median simulated latency over successes, µs.
    pub latency_p50_us: u64,
    /// 99th-percentile simulated latency over successes, µs.
    pub latency_p99_us: u64,
    /// Worst simulated latency over successes, µs.
    pub latency_max_us: u64,
    /// Error counts by [`crate::SmmfError::kind`].
    pub errors: BTreeMap<&'static str, u64>,
    /// Server resilience counters at end of run.
    pub metrics: ResilienceMetrics,
}

impl ScenarioReport {
    /// Fraction of requests answered successfully.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.ok as f64 / self.requests as f64
    }

    /// Fraction of requests answered successfully within the SLO.
    pub fn goodput(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.ok_within_slo as f64 / self.requests as f64
    }

    /// Deterministic JSON encoding (hand-rolled: stable key order, fixed
    /// float precision — byte-identical across runs with the same seed).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = write!(
            s,
            "{{\"scenario\":\"{}\",\"policy\":\"{}\",\"config\":\"{}\",\"seed\":{},\
             \"requests\":{},\"ok\":{},\"ok_within_slo\":{},\
             \"availability\":{:.6},\"goodput\":{:.6},\
             \"latency_us\":{{\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}},",
            self.scenario,
            self.policy,
            self.config,
            self.seed,
            self.requests,
            self.ok,
            self.ok_within_slo,
            self.availability(),
            self.goodput(),
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p99_us,
            self.latency_max_us,
        );
        s.push_str("\"errors\":{");
        for (i, (kind, count)) in self.errors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{kind}\":{count}");
        }
        s.push_str("},");
        let m = &self.metrics;
        let _ = write!(
            s,
            "\"metrics\":{{\"requests\":{},\"retries\":{},\"backoffs\":{},\
             \"backoff_us\":{},\"deadline_exceeded\":{},\"shed\":{},\
             \"hedges\":{},\"hedge_wins\":{},\"fallbacks\":{},\"breaker_opens\":{}}}}}",
            m.requests,
            m.retries,
            m.backoffs,
            m.backoff_us,
            m.deadline_exceeded,
            m.shed,
            m.hedges,
            m.hedge_wins,
            m.fallbacks,
            m.breaker_opens,
        );
        s
    }
}

/// Apply one worker-level fault to a tier's replicas. Public so higher
/// layers (the cluster simulation) can reuse the same fault vocabulary on
/// their per-node deployments.
pub fn apply_fault(fault: &Fault, workers: &[Arc<ModelWorker>]) {
    apply(fault, workers)
}

/// A node-level fault for multi-node cluster simulations. Worker-level
/// faults ([`Fault`]) degrade replicas *inside* one deployment; these
/// degrade whole nodes, which is the failure domain that replication and
/// failover exist to absorb.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeFault {
    /// Hard-crash a node: every shard primary on it needs failover, every
    /// request routed to it fails until restart.
    CrashNode {
        /// Cluster node index.
        node: usize,
    },
    /// Bring a crashed node back (it must catch up before serving).
    RestartNode {
        /// Cluster node index.
        node: usize,
    },
    /// Multiply a node's serving latency (`1.0` restores it) — the
    /// slow-node / gray-failure case.
    SlowNode {
        /// Cluster node index.
        node: usize,
        /// Latency multiplier.
        factor: f64,
    },
    /// Network partition: the listed nodes can only reach each other;
    /// everyone else forms the majority side.
    Partition {
        /// The minority side of the split.
        minority: Vec<usize>,
    },
    /// Heal any active partition.
    HealPartition,
}

/// A node fault scheduled at a simulated timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFaultEvent {
    /// Fire before the first request arriving at or after this time.
    pub at_us: u64,
    /// What happens.
    pub fault: NodeFault,
}

/// A scripted node-level chaos schedule for a cluster scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeSchedule {
    /// Schedule name (stable; used in report keys).
    pub name: &'static str,
    /// Events sorted by `at_us`.
    pub events: Vec<NodeFaultEvent>,
}

impl NodeSchedule {
    /// No node faults at all.
    pub fn healthy() -> Self {
        NodeSchedule {
            name: "healthy",
            events: Vec::new(),
        }
    }

    /// Crash `node` at `at_us`, restart it at `restart_us`.
    pub fn crash_restart(node: usize, at_us: u64, restart_us: u64) -> Self {
        NodeSchedule {
            name: "crash_restart",
            events: vec![
                NodeFaultEvent {
                    at_us,
                    fault: NodeFault::CrashNode { node },
                },
                NodeFaultEvent {
                    at_us: restart_us,
                    fault: NodeFault::RestartNode { node },
                },
            ],
        }
    }

    /// Partition `minority` away from the rest between `at_us` and
    /// `heal_us`.
    pub fn partition(minority: Vec<usize>, at_us: u64, heal_us: u64) -> Self {
        NodeSchedule {
            name: "partition",
            events: vec![
                NodeFaultEvent {
                    at_us,
                    fault: NodeFault::Partition { minority },
                },
                NodeFaultEvent {
                    at_us: heal_us,
                    fault: NodeFault::HealPartition,
                },
            ],
        }
    }

    /// Slow `node` by `factor` between `at_us` and `restore_us`.
    pub fn slow_node(node: usize, factor: f64, at_us: u64, restore_us: u64) -> Self {
        NodeSchedule {
            name: "slow_node",
            events: vec![
                NodeFaultEvent {
                    at_us,
                    fault: NodeFault::SlowNode { node, factor },
                },
                NodeFaultEvent {
                    at_us: restore_us,
                    fault: NodeFault::SlowNode { node, factor: 1.0 },
                },
            ],
        }
    }

    /// Compound schedule: crash one node, partition another away, and slow
    /// a third — the full drill a resilient cluster should survive.
    pub fn combined(crash_node: usize, partition_node: usize, slow: usize, base_us: u64) -> Self {
        NodeSchedule {
            name: "combined",
            events: vec![
                NodeFaultEvent {
                    at_us: base_us,
                    fault: NodeFault::SlowNode { node: slow, factor: 4.0 },
                },
                NodeFaultEvent {
                    at_us: base_us * 2,
                    fault: NodeFault::CrashNode { node: crash_node },
                },
                NodeFaultEvent {
                    at_us: base_us * 3,
                    fault: NodeFault::Partition {
                        minority: vec![partition_node],
                    },
                },
                NodeFaultEvent {
                    at_us: base_us * 4,
                    fault: NodeFault::HealPartition,
                },
                NodeFaultEvent {
                    at_us: base_us * 5,
                    fault: NodeFault::RestartNode { node: crash_node },
                },
                NodeFaultEvent {
                    at_us: base_us * 5,
                    fault: NodeFault::SlowNode { node: slow, factor: 1.0 },
                },
            ],
        }
    }
}

fn apply(fault: &Fault, workers: &[Arc<ModelWorker>]) {
    match fault {
        Fault::Crash { worker } => workers[*worker].crash(),
        Fault::Restore { worker } => workers[*worker].restore(),
        Fault::Flaky { worker, rate } => workers[*worker].set_failure_rate(*rate),
        Fault::FlakyAll { rate } => {
            for w in workers {
                w.set_failure_rate(*rate);
            }
        }
        Fault::LatencySpike { worker, factor } => workers[*worker].set_latency_factor(*factor),
        Fault::MassOutage => {
            for w in workers {
                w.crash();
            }
        }
        Fault::MassRecovery => {
            for w in workers {
                w.restore();
            }
        }
    }
}

/// Build the standard chaos deployment: [`PRIMARY_REPLICAS`] replicas of
/// [`PRIMARY_MODEL`] plus [`FALLBACK_REPLICAS`] of [`FALLBACK_MODEL`].
pub fn build_deployment(
    policy: RoutingPolicy,
    config: &ResilienceConfig,
    seed: u64,
) -> ApiServer {
    let mut server =
        ApiServer::with_resilience(DeploymentMode::Local, policy, seed, config.clone());
    let primary = const_model(PRIMARY_MODEL, PRIMARY_LATENCY_US);
    for i in 0..PRIMARY_REPLICAS {
        let worker = ModelWorker::with_faults(
            format!("w{i}"),
            primary.clone(),
            Locality::Local,
            0.0,
            seed.wrapping_add(i as u64),
        );
        server.register_worker(worker).expect("register primary");
    }
    let fallback = const_model(FALLBACK_MODEL, FALLBACK_LATENCY_US);
    server.deploy_model(fallback, FALLBACK_REPLICAS).expect("register fallback");
    server
}

/// Replay a scenario against a fresh deployment; fully deterministic in
/// `(scenario, policy, config, seed)`.
pub fn run_scenario(
    scenario: &Scenario,
    policy: RoutingPolicy,
    config: &ResilienceConfig,
    config_label: &str,
    seed: u64,
) -> ScenarioReport {
    let server = build_deployment(policy, config, seed);
    let params = GenerationParams::default();
    let mut ok = 0u64;
    let mut ok_within_slo = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(scenario.requests);
    let mut errors: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in 0..scenario.requests {
        {
            let workers = server.controller().workers(PRIMARY_MODEL).expect("primary tier");
            for ev in scenario.events.iter().filter(|ev| ev.at_request == r) {
                apply(&ev.fault, workers);
            }
        }
        server.advance_clock(INTER_ARRIVAL_US);
        match server.chat(PRIMARY_MODEL, "chaos probe request", &params) {
            Ok(c) => {
                ok += 1;
                if c.simulated_latency_us <= scenario.slo_us {
                    ok_within_slo += 1;
                }
                latencies.push(c.simulated_latency_us);
            }
            Err(e) => {
                *errors.entry(e.kind()).or_insert(0) += 1;
            }
        }
    }
    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * p / 100]
        }
    };
    let mean = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    ScenarioReport {
        scenario: scenario.name.to_string(),
        policy: policy.name().to_string(),
        config: config_label.to_string(),
        seed,
        requests: scenario.requests as u64,
        ok,
        ok_within_slo,
        latency_mean_us: mean,
        latency_p50_us: pct(50),
        latency_p99_us: pct(99),
        latency_max_us: latencies.last().copied().unwrap_or(0),
        errors,
        metrics: server.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_is_perfect_under_every_config() {
        let sc = Scenario::steady(30);
        for (cfg, label) in [
            (ResilienceConfig::disabled(), "disabled"),
            (full_with_fallback(), "full"),
        ] {
            let rep = run_scenario(&sc, RoutingPolicy::RoundRobin, &cfg, label, 42);
            assert_eq!(rep.ok, 30, "{label}: {:?}", rep.errors);
            assert_eq!(rep.ok_within_slo, 30, "{label}");
            assert_eq!(rep.latency_max_us, PRIMARY_LATENCY_US, "{label}");
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let sc = Scenario::flaky(60, 0.3);
        let a = run_scenario(&sc, RoutingPolicy::Weighted, &full_with_fallback(), "full", 7);
        let b = run_scenario(&sc, RoutingPolicy::Weighted, &full_with_fallback(), "full", 7);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "JSON must be byte-identical");
        let c = run_scenario(&sc, RoutingPolicy::Weighted, &full_with_fallback(), "full", 8);
        assert_ne!(a, c, "a different seed must change something");
    }

    #[test]
    fn full_config_beats_disabled_on_flaky_fleet() {
        let sc = Scenario::flaky(200, 0.3);
        let disabled = run_scenario(
            &sc,
            RoutingPolicy::RoundRobin,
            &ResilienceConfig::disabled(),
            "disabled",
            42,
        );
        let full =
            run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
        assert!(
            full.availability() >= disabled.availability(),
            "full {:.4} < disabled {:.4}",
            full.availability(),
            disabled.availability()
        );
        assert!(full.availability() >= 0.99, "full arm {:.4}", full.availability());
    }

    #[test]
    fn outage_recovery_fallback_keeps_answering() {
        let sc = Scenario::outage_recovery(100);
        let rep =
            run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
        // During the outage the fallback tier answers; after recovery the
        // primary tier comes back through half-open probes.
        assert!(rep.metrics.fallbacks > 0, "fallback tier never used");
        assert!(
            rep.availability() >= 0.95,
            "availability {:.4} with a fallback tier",
            rep.availability()
        );
    }

    #[test]
    fn latency_spike_is_hedged_around() {
        let sc = Scenario::latency_spike(100);
        let rep =
            run_scenario(&sc, RoutingPolicy::RoundRobin, &full_with_fallback(), "full", 42);
        assert!(rep.metrics.hedges > 0, "no hedges fired");
        assert!(rep.metrics.hedge_wins > 0, "hedges never won");
        // Every request that the spiked replica would have served at 2s is
        // rescued at hedge-delay + fallback-worker latency.
        assert!(
            rep.latency_max_us <= 50 * PRIMARY_LATENCY_US,
            "max {}µs",
            rep.latency_max_us
        );
        assert!(rep.availability() >= 0.99, "{:.4}", rep.availability());
    }

    #[test]
    fn report_json_shape() {
        let rep = run_scenario(
            &Scenario::steady(5),
            RoutingPolicy::Random,
            &ResilienceConfig::disabled(),
            "disabled",
            1,
        );
        let j = rep.to_json();
        for key in [
            "\"scenario\":\"steady\"",
            "\"policy\":\"random\"",
            "\"config\":\"disabled\"",
            "\"availability\":1.000000",
            "\"latency_us\"",
            "\"metrics\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn suite_covers_the_fault_menagerie() {
        let names: Vec<&str> = Scenario::suite(10).iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["steady", "flaky", "crash", "latency-spike", "outage-recovery"]
        );
    }
}
