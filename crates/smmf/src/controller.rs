//! The model controller: SMMF's metadata registry.
//!
//! "the model controller manages metadata, integrating the deployment
//! process" (§2.3). The controller knows which models are deployed, which
//! workers serve each, and enforces the privacy posture at registration
//! time — a worker that violates the [`crate::DeploymentMode`] never enters
//! the registry at all.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::SmmfError;
use crate::privacy::DeploymentMode;
use crate::worker::{ModelWorker, WorkerHealth, WorkerId};

/// The controller (see module docs).
pub struct ModelController {
    mode: DeploymentMode,
    /// model name → its workers (BTreeMap for deterministic listings).
    deployments: BTreeMap<String, Vec<Arc<ModelWorker>>>,
}

impl ModelController {
    /// Controller with a privacy posture.
    pub fn new(mode: DeploymentMode) -> Self {
        ModelController {
            mode,
            deployments: BTreeMap::new(),
        }
    }

    /// The privacy posture.
    pub fn mode(&self) -> DeploymentMode {
        self.mode
    }

    /// Register a worker for the model it serves. Rejects privacy
    /// violations and duplicate worker ids (within the model).
    pub fn register(&mut self, worker: ModelWorker) -> Result<(), SmmfError> {
        if !self.mode.admits(worker.locality()) {
            return Err(SmmfError::PrivacyViolation {
                worker: worker.id().to_string(),
            });
        }
        let model = worker.model().id().to_string();
        let workers = self.deployments.entry(model).or_default();
        if workers.iter().any(|w| w.id() == worker.id()) {
            return Err(SmmfError::DuplicateWorker(worker.id().to_string()));
        }
        workers.push(Arc::new(worker));
        Ok(())
    }

    /// Remove a worker from a model's rotation.
    pub fn deregister(&mut self, model: &str, worker: &WorkerId) -> Result<(), SmmfError> {
        let workers = self
            .deployments
            .get_mut(model)
            .ok_or_else(|| SmmfError::UnknownModel(model.to_string()))?;
        let before = workers.len();
        workers.retain(|w| w.id() != worker);
        if workers.len() == before {
            return Err(SmmfError::UnknownWorker {
                model: model.to_string(),
                worker: worker.to_string(),
            });
        }
        if workers.is_empty() {
            self.deployments.remove(model);
        }
        Ok(())
    }

    /// Workers of a model.
    pub fn workers(&self, model: &str) -> Result<&[Arc<ModelWorker>], SmmfError> {
        self.deployments
            .get(model)
            .map(Vec::as_slice)
            .ok_or_else(|| SmmfError::UnknownModel(model.to_string()))
    }

    /// Deployed model names (sorted).
    pub fn models(&self) -> Vec<&str> {
        self.deployments.keys().map(String::as_str).collect()
    }

    /// Is any worker of `model` healthy?
    pub fn has_healthy_worker(&self, model: &str) -> bool {
        self.deployments
            .get(model)
            .map(|ws| ws.iter().any(|w| w.health() == WorkerHealth::Healthy))
            .unwrap_or(false)
    }

    /// Total workers across all models.
    pub fn worker_count(&self) -> usize {
        self.deployments.values().map(Vec::len).sum()
    }

    /// A metadata snapshot: `(model, worker id, health, served, failed)`.
    pub fn snapshot(&self) -> Vec<(String, String, WorkerHealth, u64, u64)> {
        let mut out = Vec::with_capacity(self.worker_count());
        for (model, workers) in &self.deployments {
            for w in workers {
                let s = w.stats();
                out.push((
                    model.clone(),
                    w.id().to_string(),
                    w.health(),
                    s.served,
                    s.failed,
                ));
            }
        }
        out
    }
}

impl std::fmt::Debug for ModelController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelController")
            .field("mode", &self.mode)
            .field("models", &self.models())
            .field("workers", &self.worker_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::Locality;
    use dbgpt_llm::catalog::builtin_model;

    fn local_worker(id: &str, model: &str) -> ModelWorker {
        ModelWorker::new(id, builtin_model(model).unwrap())
    }

    #[test]
    fn register_and_list() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        c.register(local_worker("w1", "sim-qwen")).unwrap();
        c.register(local_worker("w2", "sim-glm")).unwrap();
        assert_eq!(c.models(), vec!["sim-glm", "sim-qwen"]);
        assert_eq!(c.workers("sim-qwen").unwrap().len(), 2);
        assert_eq!(c.worker_count(), 3);
        assert!(c.has_healthy_worker("sim-qwen"));
    }

    #[test]
    fn duplicate_worker_rejected() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        let e = c.register(local_worker("w0", "sim-qwen")).unwrap_err();
        assert!(matches!(e, SmmfError::DuplicateWorker(_)));
    }

    #[test]
    fn privacy_enforced_at_registration() {
        let mut c = ModelController::new(DeploymentMode::Local);
        let remote = ModelWorker::with_faults(
            "r0",
            builtin_model("proxy-gpt").unwrap(),
            Locality::Remote,
            0.0,
            0,
        );
        let e = c.register(remote).unwrap_err();
        assert!(matches!(e, SmmfError::PrivacyViolation { .. }));
        assert_eq!(c.worker_count(), 0);
        // Cloud mode admits the same worker.
        let mut c = ModelController::new(DeploymentMode::Cloud);
        let remote = ModelWorker::with_faults(
            "r0",
            builtin_model("proxy-gpt").unwrap(),
            Locality::Remote,
            0.0,
            0,
        );
        c.register(remote).unwrap();
        assert_eq!(c.worker_count(), 1);
    }

    #[test]
    fn deregister_removes_and_cleans_up() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        c.deregister("sim-qwen", &WorkerId::new("w0")).unwrap();
        assert!(c.models().is_empty());
        assert!(matches!(
            c.deregister("sim-qwen", &WorkerId::new("w0")),
            Err(SmmfError::UnknownModel(_))
        ));
    }

    #[test]
    fn deregister_missing_worker_errors() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        // A missing worker is an UnknownWorker error naming both the model
        // and the worker — not NoHealthyWorker, which is about rotation
        // state, not registry membership.
        let e = c.deregister("sim-qwen", &WorkerId::new("nope")).unwrap_err();
        assert!(
            matches!(
                &e,
                SmmfError::UnknownWorker { model, worker }
                    if model == "sim-qwen" && worker == "nope"
            ),
            "{e:?}"
        );
        // The registered worker is untouched.
        assert_eq!(c.workers("sim-qwen").unwrap().len(), 1);
    }

    #[test]
    fn healthy_flag_tracks_worker_state() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        c.workers("sim-qwen").unwrap()[0].drain();
        assert!(!c.has_healthy_worker("sim-qwen"));
        assert!(!c.has_healthy_worker("ghost-model"));
    }

    #[test]
    fn snapshot_lists_everything() {
        let mut c = ModelController::new(DeploymentMode::Local);
        c.register(local_worker("w0", "sim-qwen")).unwrap();
        c.register(local_worker("w1", "sim-glm")).unwrap();
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "sim-glm"); // sorted by model
    }
}
