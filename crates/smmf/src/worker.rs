//! The model worker: one serving replica.
//!
//! "the model worker establishes connectivity with inference and
//! infrastructure, ensuring efficient model operation" (§2.3). A worker
//! wraps one model instance and adds the serving concerns the controller
//! cares about: health, load/latency accounting, and — for resilience
//! experiments (E2) — seeded failure injection that makes a configurable
//! fraction of requests fail like real infrastructure does.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dbgpt_llm::{Completion, GenerationParams, SharedModel};

use crate::error::SmmfError;
use crate::privacy::Locality;

/// Stable worker identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub String);

impl WorkerId {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        WorkerId(s.into())
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Worker lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerHealth {
    /// Accepting requests.
    Healthy,
    /// Finishing in-flight work; no new requests.
    Draining,
    /// Out of rotation after repeated failures.
    Unhealthy,
}

/// Point-in-time serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Requests served successfully.
    pub served: u64,
    /// Requests that failed (injected faults or model errors).
    pub failed: u64,
    /// Sum of simulated latencies over successful requests, µs.
    pub total_latency_us: u64,
}

impl WorkerStats {
    /// Mean simulated latency per successful request, µs (0 if none).
    pub fn mean_latency_us(&self) -> u64 {
        self.total_latency_us.checked_div(self.served).unwrap_or(0)
    }
}

/// Consecutive failures before a worker marks itself [`WorkerHealth::Unhealthy`].
const FAILURE_THRESHOLD: u32 = 3;

/// A serving replica (see module docs).
pub struct ModelWorker {
    id: WorkerId,
    model: SharedModel,
    locality: Locality,
    health: Mutex<WorkerHealth>,
    consecutive_failures: Mutex<u32>,
    /// Probability a request fails with an infrastructure fault.
    failure_rate: f64,
    rng: Mutex<StdRng>,
    served: AtomicU64,
    failed: AtomicU64,
    total_latency_us: AtomicU64,
}

impl ModelWorker {
    /// A local worker with no fault injection.
    pub fn new(id: impl Into<String>, model: SharedModel) -> Self {
        Self::with_faults(id, model, Locality::Local, 0.0, 0)
    }

    /// Full construction: locality plus a seeded failure rate.
    pub fn with_faults(
        id: impl Into<String>,
        model: SharedModel,
        locality: Locality,
        failure_rate: f64,
        seed: u64,
    ) -> Self {
        ModelWorker {
            id: WorkerId::new(id),
            model,
            locality,
            health: Mutex::new(WorkerHealth::Healthy),
            consecutive_failures: Mutex::new(0),
            failure_rate: failure_rate.clamp(0.0, 1.0),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            total_latency_us: AtomicU64::new(0),
        }
    }

    /// Worker id.
    pub fn id(&self) -> &WorkerId {
        &self.id
    }

    /// The model this worker serves.
    pub fn model(&self) -> &SharedModel {
        &self.model
    }

    /// Where the worker runs.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// Current health.
    pub fn health(&self) -> WorkerHealth {
        *self.health.lock()
    }

    /// Begin draining (no new requests; used for graceful scale-down).
    pub fn drain(&self) {
        *self.health.lock() = WorkerHealth::Draining;
    }

    /// Return a drained/unhealthy worker to rotation.
    pub fn revive(&self) {
        *self.health.lock() = WorkerHealth::Healthy;
        *self.consecutive_failures.lock() = 0;
    }

    /// Health-check an unhealthy worker: the probe succeeds unless the
    /// injected fault fires, and a passing probe returns the worker to
    /// rotation. Draining workers are left alone (graceful shutdown is
    /// deliberate). Returns whether the worker is healthy afterwards.
    pub fn probe(&self) -> bool {
        match self.health() {
            WorkerHealth::Healthy => true,
            WorkerHealth::Draining => false,
            WorkerHealth::Unhealthy => {
                let fault = self.failure_rate > 0.0 && self.rng.lock().gen_bool(self.failure_rate);
                if !fault {
                    self.revive();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Serving statistics snapshot.
    pub fn stats(&self) -> WorkerStats {
        WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            total_latency_us: self.total_latency_us.load(Ordering::Relaxed),
        }
    }

    /// Serve one request.
    pub fn infer(&self, prompt: &str, params: &GenerationParams) -> Result<Completion, SmmfError> {
        if self.health() != WorkerHealth::Healthy {
            return Err(SmmfError::NoHealthyWorker(self.model.id().to_string()));
        }
        // Injected infrastructure fault?
        if self.failure_rate > 0.0 && self.rng.lock().gen_bool(self.failure_rate) {
            self.record_failure();
            return Err(SmmfError::WorkerFailure {
                worker: self.id.to_string(),
                cause: "injected infrastructure fault".into(),
            });
        }
        match self.model.generate(prompt, params) {
            Ok(c) => {
                self.served.fetch_add(1, Ordering::Relaxed);
                self.total_latency_us
                    .fetch_add(c.simulated_latency_us, Ordering::Relaxed);
                *self.consecutive_failures.lock() = 0;
                Ok(c)
            }
            Err(e) => {
                // Model-level errors (bad prompt) are the caller's fault and
                // do not damage worker health.
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(SmmfError::Model(e))
            }
        }
    }

    fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let mut cf = self.consecutive_failures.lock();
        *cf += 1;
        if *cf >= FAILURE_THRESHOLD {
            *self.health.lock() = WorkerHealth::Unhealthy;
        }
    }
}

impl fmt::Debug for ModelWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelWorker")
            .field("id", &self.id)
            .field("model", &self.model.id().to_string())
            .field("locality", &self.locality)
            .field("health", &self.health())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;

    fn worker() -> ModelWorker {
        ModelWorker::new("w0", builtin_model("sim-qwen").unwrap())
    }

    #[test]
    fn serves_and_accounts() {
        let w = worker();
        let out = w.infer("hello there", &GenerationParams::default()).unwrap();
        assert!(!out.text.is_empty());
        let s = w.stats();
        assert_eq!(s.served, 1);
        assert_eq!(s.failed, 0);
        assert!(s.total_latency_us > 0);
        assert_eq!(s.mean_latency_us(), s.total_latency_us);
    }

    #[test]
    fn draining_rejects_requests() {
        let w = worker();
        w.drain();
        assert_eq!(w.health(), WorkerHealth::Draining);
        assert!(w.infer("x", &GenerationParams::default()).is_err());
        w.revive();
        assert!(w.infer("hello again", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn model_errors_do_not_mark_unhealthy() {
        let w = worker();
        for _ in 0..5 {
            let e = w.infer("  ", &GenerationParams::default()).unwrap_err();
            assert!(matches!(e, SmmfError::Model(_)));
        }
        assert_eq!(w.health(), WorkerHealth::Healthy);
        assert_eq!(w.stats().failed, 5);
    }

    #[test]
    fn injected_faults_eventually_mark_unhealthy() {
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            1.0, // always fail
            7,
        );
        for _ in 0..FAILURE_THRESHOLD {
            let e = w.infer("hello", &GenerationParams::default()).unwrap_err();
            assert!(matches!(e, SmmfError::WorkerFailure { .. }));
        }
        assert_eq!(w.health(), WorkerHealth::Unhealthy);
        // While unhealthy the worker refuses outright.
        assert!(matches!(
            w.infer("hello", &GenerationParams::default()),
            Err(SmmfError::NoHealthyWorker(_))
        ));
    }

    #[test]
    fn fault_injection_is_seeded_and_partial() {
        let run = |seed: u64| -> u64 {
            let w = ModelWorker::with_faults(
                "flaky",
                builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                0.3,
                seed,
            );
            let mut failures = 0;
            for _ in 0..50 {
                w.revive(); // keep it in rotation for the experiment
                if w.infer("hello", &GenerationParams::default()).is_err() {
                    failures += 1;
                }
            }
            failures
        };
        assert_eq!(run(1), run(1), "same seed, same outcome");
        let f = run(1);
        assert!(f > 0 && f < 50, "failure rate 0.3 should be partial, got {f}");
    }

    #[test]
    fn success_resets_consecutive_failures() {
        // 50% fault rate: verify a success between failures prevents the
        // unhealthy transition for longer than 3 total failures.
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            0.5,
            42,
        );
        let mut total_failures = 0;
        for _ in 0..30 {
            if w.health() != WorkerHealth::Healthy {
                break;
            }
            if w.infer("hello", &GenerationParams::default()).is_err() {
                total_failures += 1;
            }
        }
        // With p=0.5, three-in-a-row takes a while; we must have seen ≥3
        // failures total before (possibly) going unhealthy.
        assert!(total_failures >= 3);
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;
    use dbgpt_llm::GenerationParams;

    #[test]
    fn probe_revives_when_fault_clears() {
        // Fault rate 0.5: an unhealthy worker's probes eventually pass.
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            0.5,
            11,
        );
        // Drive it unhealthy.
        while w.health() == WorkerHealth::Healthy {
            let _ = w.infer("hello", &GenerationParams::default());
        }
        assert_eq!(w.health(), WorkerHealth::Unhealthy);
        let mut revived = false;
        for _ in 0..20 {
            if w.probe() {
                revived = true;
                break;
            }
        }
        assert!(revived, "probe should eventually pass at 50% fault rate");
        assert_eq!(w.health(), WorkerHealth::Healthy);
    }

    #[test]
    fn probe_leaves_draining_workers_alone() {
        let w = ModelWorker::new("w", builtin_model("sim-qwen").unwrap());
        w.drain();
        assert!(!w.probe());
        assert_eq!(w.health(), WorkerHealth::Draining);
    }

    #[test]
    fn probe_on_healthy_is_true() {
        let w = ModelWorker::new("w", builtin_model("sim-qwen").unwrap());
        assert!(w.probe());
    }
}
