//! The model worker: one serving replica.
//!
//! "the model worker establishes connectivity with inference and
//! infrastructure, ensuring efficient model operation" (§2.3). A worker
//! wraps one model instance and adds the serving concerns the controller
//! cares about: health, load/latency accounting, and — for resilience
//! experiments (E2) — seeded failure injection that makes a configurable
//! fraction of requests fail like real infrastructure does.
//!
//! For chaos scenarios the fault surface is dynamic: the failure rate can
//! be changed mid-run, the worker can be hard-crashed (it fails every
//! request until restored, the way a dead host with a stale registration
//! does), and a latency factor can simulate a degraded replica. All
//! randomness comes from two *independent* seeded streams — one for
//! request-level faults, one for health probes — so probing a worker never
//! perturbs the request-level fault sequence.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use dbgpt_llm::{Completion, GenerationParams, SharedModel};

use crate::error::SmmfError;
use crate::privacy::Locality;
use crate::rng::SplitMix64;

/// Stable worker identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub String);

impl WorkerId {
    /// Construct from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        WorkerId(s.into())
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Worker lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerHealth {
    /// Accepting requests.
    Healthy,
    /// Finishing in-flight work; no new requests.
    Draining,
    /// Out of rotation after repeated failures.
    Unhealthy,
}

/// Point-in-time serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Requests served successfully.
    pub served: u64,
    /// Requests that failed (injected faults or model errors).
    pub failed: u64,
    /// Sum of simulated latencies over successful requests, µs.
    pub total_latency_us: u64,
}

impl WorkerStats {
    /// Mean simulated latency per successful request, µs (0 if none).
    pub fn mean_latency_us(&self) -> u64 {
        self.total_latency_us.checked_div(self.served).unwrap_or(0)
    }
}

/// Consecutive failures before a worker marks itself
/// [`WorkerHealth::Unhealthy`] — the legacy coarse health mechanism, used
/// when no circuit breaker supervises the worker (see
/// [`ModelWorker::set_auto_unhealthy`]).
const FAILURE_THRESHOLD: u32 = 3;

/// Salt for the probe RNG stream (distinct from the request-fault stream).
const PROBE_STREAM_SALT: u64 = 0x0050_524f_4245; // "PROBE"

/// A serving replica (see module docs).
pub struct ModelWorker {
    id: WorkerId,
    model: SharedModel,
    locality: Locality,
    health: Mutex<WorkerHealth>,
    consecutive_failures: Mutex<u32>,
    /// When `false`, the legacy consecutive-failure counter no longer
    /// flips health to Unhealthy — a circuit breaker owns failure
    /// detection instead.
    auto_unhealthy: AtomicBool,
    /// Probability a request fails with an infrastructure fault
    /// (changeable mid-run by chaos schedules).
    failure_rate: Mutex<f64>,
    /// Hard-down: every request fails until [`ModelWorker::restore`].
    crashed: AtomicBool,
    /// Multiplier applied to simulated latency (chaos latency spikes).
    latency_factor: Mutex<f64>,
    /// Request-level fault stream.
    rng: Mutex<SplitMix64>,
    /// Independent probe stream (probing must not consume request draws).
    probe_rng: Mutex<SplitMix64>,
    served: AtomicU64,
    failed: AtomicU64,
    total_latency_us: AtomicU64,
}

impl ModelWorker {
    /// A local worker with no fault injection.
    pub fn new(id: impl Into<String>, model: SharedModel) -> Self {
        Self::with_faults(id, model, Locality::Local, 0.0, 0)
    }

    /// Full construction: locality plus a seeded failure rate.
    pub fn with_faults(
        id: impl Into<String>,
        model: SharedModel,
        locality: Locality,
        failure_rate: f64,
        seed: u64,
    ) -> Self {
        ModelWorker {
            id: WorkerId::new(id),
            model,
            locality,
            health: Mutex::new(WorkerHealth::Healthy),
            consecutive_failures: Mutex::new(0),
            auto_unhealthy: AtomicBool::new(true),
            failure_rate: Mutex::new(failure_rate.clamp(0.0, 1.0)),
            crashed: AtomicBool::new(false),
            latency_factor: Mutex::new(1.0),
            rng: Mutex::new(SplitMix64::stream(seed, 0)),
            probe_rng: Mutex::new(SplitMix64::stream(seed, PROBE_STREAM_SALT)),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            total_latency_us: AtomicU64::new(0),
        }
    }

    /// Worker id.
    pub fn id(&self) -> &WorkerId {
        &self.id
    }

    /// The model this worker serves.
    pub fn model(&self) -> &SharedModel {
        &self.model
    }

    /// Where the worker runs.
    pub fn locality(&self) -> Locality {
        self.locality
    }

    /// Current health.
    pub fn health(&self) -> WorkerHealth {
        *self.health.lock().expect("health lock")
    }

    /// Begin draining (no new requests; used for graceful scale-down).
    pub fn drain(&self) {
        *self.health.lock().expect("health lock") = WorkerHealth::Draining;
    }

    /// Return a drained/unhealthy worker to rotation.
    pub fn revive(&self) {
        *self.health.lock().expect("health lock") = WorkerHealth::Healthy;
        *self.consecutive_failures.lock().expect("cf lock") = 0;
    }

    /// Enable/disable the legacy consecutive-failure health transition.
    /// [`crate::ApiServer`] disables it when a circuit breaker supervises
    /// the worker, so exactly one failure detector is in charge.
    pub fn set_auto_unhealthy(&self, enabled: bool) {
        self.auto_unhealthy.store(enabled, Ordering::Relaxed);
    }

    /// Current failure-injection rate.
    pub fn failure_rate(&self) -> f64 {
        *self.failure_rate.lock().expect("failure_rate lock")
    }

    /// Change the failure-injection rate mid-run (chaos schedules).
    pub fn set_failure_rate(&self, rate: f64) {
        *self.failure_rate.lock().expect("failure_rate lock") = rate.clamp(0.0, 1.0);
    }

    /// Multiply simulated latency by `factor` (chaos latency spikes;
    /// `1.0` restores normal speed).
    pub fn set_latency_factor(&self, factor: f64) {
        *self.latency_factor.lock().expect("latency_factor lock") = factor.max(0.0);
    }

    /// Hard-crash the worker: every request fails with a
    /// [`SmmfError::WorkerFailure`] and probes stay negative until
    /// [`ModelWorker::restore`]. Health is *not* flipped here — detecting
    /// the crash is the failure detector's job, exactly as with a real
    /// dead host whose registration is still live.
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::Relaxed);
    }

    /// Undo [`ModelWorker::crash`]: the process is back; health recovery
    /// still goes through probing / breaker half-open as usual.
    pub fn restore(&self) {
        self.crashed.store(false, Ordering::Relaxed);
    }

    /// Is the worker hard-crashed?
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Health-check the worker. Crashed workers always fail the probe. An
    /// unhealthy worker's probe succeeds unless the injected fault fires,
    /// and a passing probe returns the worker to rotation. Draining
    /// workers are left alone (graceful shutdown is deliberate). Returns
    /// whether the worker is healthy afterwards.
    ///
    /// Probes draw from their own seeded stream, so interleaving probes
    /// with requests never changes request outcomes (regression-tested in
    /// [`probe_tests::probing_does_not_perturb_infer_outcomes`]).
    pub fn probe(&self) -> bool {
        if self.is_crashed() {
            return false;
        }
        match self.health() {
            WorkerHealth::Healthy => true,
            WorkerHealth::Draining => false,
            WorkerHealth::Unhealthy => {
                let rate = self.failure_rate();
                let fault =
                    rate > 0.0 && self.probe_rng.lock().expect("probe rng lock").gen_bool(rate);
                if !fault {
                    self.revive();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Serving statistics snapshot.
    pub fn stats(&self) -> WorkerStats {
        WorkerStats {
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            total_latency_us: self.total_latency_us.load(Ordering::Relaxed),
        }
    }

    /// Serve one request.
    pub fn infer(&self, prompt: &str, params: &GenerationParams) -> Result<Completion, SmmfError> {
        if self.health() != WorkerHealth::Healthy {
            return Err(SmmfError::NoHealthyWorker(self.model.id().to_string()));
        }
        if self.is_crashed() {
            self.record_failure();
            return Err(SmmfError::WorkerFailure {
                worker: self.id.to_string(),
                cause: "simulated crash (host down)".into(),
            });
        }
        // Injected infrastructure fault?
        let rate = self.failure_rate();
        if rate > 0.0 && self.rng.lock().expect("rng lock").gen_bool(rate) {
            self.record_failure();
            return Err(SmmfError::WorkerFailure {
                worker: self.id.to_string(),
                cause: "injected infrastructure fault".into(),
            });
        }
        match self.model.generate(prompt, params) {
            Ok(mut c) => {
                let factor = *self.latency_factor.lock().expect("latency_factor lock");
                if factor != 1.0 {
                    c.simulated_latency_us = (c.simulated_latency_us as f64 * factor) as u64;
                }
                self.served.fetch_add(1, Ordering::Relaxed);
                self.total_latency_us
                    .fetch_add(c.simulated_latency_us, Ordering::Relaxed);
                *self.consecutive_failures.lock().expect("cf lock") = 0;
                Ok(c)
            }
            Err(e) => {
                // Model-level errors (bad prompt) are the caller's fault and
                // do not damage worker health.
                self.failed.fetch_add(1, Ordering::Relaxed);
                Err(SmmfError::Model(e))
            }
        }
    }

    fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        let mut cf = self.consecutive_failures.lock().expect("cf lock");
        *cf += 1;
        if *cf >= FAILURE_THRESHOLD && self.auto_unhealthy.load(Ordering::Relaxed) {
            *self.health.lock().expect("health lock") = WorkerHealth::Unhealthy;
        }
    }
}

impl fmt::Debug for ModelWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelWorker")
            .field("id", &self.id)
            .field("model", &self.model.id().to_string())
            .field("locality", &self.locality)
            .field("health", &self.health())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;

    fn worker() -> ModelWorker {
        ModelWorker::new("w0", builtin_model("sim-qwen").unwrap())
    }

    #[test]
    fn serves_and_accounts() {
        let w = worker();
        let out = w.infer("hello there", &GenerationParams::default()).unwrap();
        assert!(!out.text.is_empty());
        let s = w.stats();
        assert_eq!(s.served, 1);
        assert_eq!(s.failed, 0);
        assert!(s.total_latency_us > 0);
        assert_eq!(s.mean_latency_us(), s.total_latency_us);
    }

    #[test]
    fn draining_rejects_requests() {
        let w = worker();
        w.drain();
        assert_eq!(w.health(), WorkerHealth::Draining);
        assert!(w.infer("x", &GenerationParams::default()).is_err());
        w.revive();
        assert!(w.infer("hello again", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn model_errors_do_not_mark_unhealthy() {
        let w = worker();
        for _ in 0..5 {
            let e = w.infer("  ", &GenerationParams::default()).unwrap_err();
            assert!(matches!(e, SmmfError::Model(_)));
        }
        assert_eq!(w.health(), WorkerHealth::Healthy);
        assert_eq!(w.stats().failed, 5);
    }

    #[test]
    fn injected_faults_eventually_mark_unhealthy() {
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            1.0, // always fail
            7,
        );
        for _ in 0..FAILURE_THRESHOLD {
            let e = w.infer("hello", &GenerationParams::default()).unwrap_err();
            assert!(matches!(e, SmmfError::WorkerFailure { .. }));
        }
        assert_eq!(w.health(), WorkerHealth::Unhealthy);
        // While unhealthy the worker refuses outright.
        assert!(matches!(
            w.infer("hello", &GenerationParams::default()),
            Err(SmmfError::NoHealthyWorker(_))
        ));
    }

    #[test]
    fn auto_unhealthy_can_be_disabled() {
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            1.0,
            7,
        );
        w.set_auto_unhealthy(false);
        for _ in 0..10 {
            let e = w.infer("hello", &GenerationParams::default()).unwrap_err();
            assert!(matches!(e, SmmfError::WorkerFailure { .. }));
        }
        // Still Healthy: failure detection is the breaker's job now.
        assert_eq!(w.health(), WorkerHealth::Healthy);
        assert_eq!(w.stats().failed, 10);
    }

    #[test]
    fn fault_injection_is_seeded_and_partial() {
        let run = |seed: u64| -> u64 {
            let w = ModelWorker::with_faults(
                "flaky",
                builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                0.3,
                seed,
            );
            let mut failures = 0;
            for _ in 0..50 {
                w.revive(); // keep it in rotation for the experiment
                if w.infer("hello", &GenerationParams::default()).is_err() {
                    failures += 1;
                }
            }
            failures
        };
        assert_eq!(run(1), run(1), "same seed, same outcome");
        let f = run(1);
        assert!(f > 0 && f < 50, "failure rate 0.3 should be partial, got {f}");
    }

    #[test]
    fn success_resets_consecutive_failures() {
        // 50% fault rate: verify a success between failures prevents the
        // unhealthy transition for longer than 3 total failures.
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            0.5,
            42,
        );
        let mut total_failures = 0;
        for _ in 0..30 {
            if w.health() != WorkerHealth::Healthy {
                break;
            }
            if w.infer("hello", &GenerationParams::default()).is_err() {
                total_failures += 1;
            }
        }
        // With p=0.5, three-in-a-row takes a while; we must have seen ≥3
        // failures total before (possibly) going unhealthy.
        assert!(total_failures >= 3);
    }

    #[test]
    fn failure_rate_is_dynamic() {
        let w = worker();
        assert!(w.infer("hello", &GenerationParams::default()).is_ok());
        w.set_failure_rate(1.0);
        assert!(matches!(
            w.infer("hello", &GenerationParams::default()),
            Err(SmmfError::WorkerFailure { .. })
        ));
        w.set_failure_rate(0.0);
        w.revive();
        assert!(w.infer("hello", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn crash_fails_every_request_until_restore() {
        let w = worker();
        w.crash();
        assert!(w.is_crashed());
        // Health is untouched by the crash itself…
        assert_eq!(w.health(), WorkerHealth::Healthy);
        for _ in 0..2 {
            assert!(matches!(
                w.infer("hello", &GenerationParams::default()),
                Err(SmmfError::WorkerFailure { .. })
            ));
        }
        // …until the legacy detector trips it.
        let _ = w.infer("hello", &GenerationParams::default());
        assert_eq!(w.health(), WorkerHealth::Unhealthy);
        assert!(!w.probe(), "crashed workers must fail probes");
        w.restore();
        assert!(w.probe(), "restored fault-free worker revives on probe");
        assert!(w.infer("hello", &GenerationParams::default()).is_ok());
    }

    #[test]
    fn latency_factor_scales_simulated_latency() {
        let w = worker();
        let base = w
            .infer("hello there friend", &GenerationParams::default())
            .unwrap()
            .simulated_latency_us;
        w.set_latency_factor(10.0);
        let spiked = w
            .infer("hello there friend", &GenerationParams::default())
            .unwrap()
            .simulated_latency_us;
        assert_eq!(spiked, base * 10, "deterministic model, exact scaling");
        w.set_latency_factor(1.0);
        let back = w
            .infer("hello there friend", &GenerationParams::default())
            .unwrap()
            .simulated_latency_us;
        assert_eq!(back, base);
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;
    use dbgpt_llm::GenerationParams;

    #[test]
    fn probe_revives_when_fault_clears() {
        // Fault rate 0.5: an unhealthy worker's probes eventually pass.
        let w = ModelWorker::with_faults(
            "flaky",
            builtin_model("sim-qwen").unwrap(),
            Locality::Local,
            0.5,
            11,
        );
        // Drive it unhealthy.
        while w.health() == WorkerHealth::Healthy {
            let _ = w.infer("hello", &GenerationParams::default());
        }
        assert_eq!(w.health(), WorkerHealth::Unhealthy);
        let mut revived = false;
        for _ in 0..20 {
            if w.probe() {
                revived = true;
                break;
            }
        }
        assert!(revived, "probe should eventually pass at 50% fault rate");
        assert_eq!(w.health(), WorkerHealth::Healthy);
    }

    #[test]
    fn probe_leaves_draining_workers_alone() {
        let w = ModelWorker::new("w", builtin_model("sim-qwen").unwrap());
        w.drain();
        assert!(!w.probe());
        assert_eq!(w.health(), WorkerHealth::Draining);
    }

    #[test]
    fn probe_on_healthy_is_true() {
        let w = ModelWorker::new("w", builtin_model("sim-qwen").unwrap());
        assert!(w.probe());
    }

    #[test]
    fn probing_does_not_perturb_infer_outcomes() {
        // Two identical flaky workers, same seed. Worker A is revived
        // manually whenever it goes unhealthy; worker B is revived by
        // probing (which may take several probe draws). If probes shared
        // the request-fault RNG, the two infer-outcome sequences would
        // diverge; with independent streams they are identical.
        let mk = || {
            ModelWorker::with_faults(
                "flaky",
                builtin_model("sim-qwen").unwrap(),
                Locality::Local,
                0.5,
                1234,
            )
        };
        let a = mk();
        let b = mk();
        let params = GenerationParams::default();
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for _ in 0..40 {
            if a.health() != WorkerHealth::Healthy {
                a.revive();
            }
            if b.health() != WorkerHealth::Healthy {
                // Probe until it comes back (p=0.5 ⇒ a handful of draws).
                let mut guard = 0;
                while !b.probe() {
                    guard += 1;
                    assert!(guard < 10_000, "probe never revived worker");
                }
            }
            outcomes_a.push(a.infer("hello", &params).is_ok());
            outcomes_b.push(b.infer("hello", &params).is_ok());
        }
        assert_eq!(
            outcomes_a, outcomes_b,
            "probing consumed request-level fault draws"
        );
    }
}
