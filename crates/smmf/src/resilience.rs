//! The deterministic resilience layer around the SMMF serving path.
//!
//! The paper's deployment layer promises "stable and efficient model
//! serving" (§2.3); its companion system paper stresses private serving
//! that must survive replica failure. This module supplies the machinery a
//! production serving tier needs, in fully simulated, seeded form so every
//! outcome is exactly reproducible:
//!
//! - [`CircuitBreaker`] — per-worker Closed/Open/HalfOpen breaker over a
//!   sliding outcome window. Open duration is measured in **simulated
//!   microseconds** (the [`crate::ApiServer`] advances a simulated clock
//!   by each attempt's modelled latency), and the cool-down is jittered
//!   from a seeded stream so replicas don't re-arm in lockstep.
//! - [`RetryConfig`] — exponential backoff with seeded jitter, a
//!   per-failed-attempt latency charge, and attempted-worker exclusion so
//!   failover never re-picks the replica that just failed.
//! - Deadline budgets — each attempt (and each backoff pause) charges its
//!   simulated cost against [`ResilienceConfig::deadline_budget_us`];
//!   when the budget cannot cover another attempt the server returns
//!   [`crate::SmmfError::DeadlineExceeded`] instead of burning attempts.
//! - [`HedgeConfig`] — request hedging: when a response's simulated
//!   latency exceeds the hedge delay, a second worker races the first and
//!   the deterministic winner (by simulated completion time) is returned.
//! - [`ShedConfig`] — bounded admission per model (load shedding), plus
//!   [`ResilienceConfig::fallback_model`] for graceful degradation when a
//!   primary tier has no admissible workers left.
//!
//! Everything here is plain `std`: no wall clock, no OS randomness, no
//! external crates. That is what makes the chaos harness
//! ([`crate::chaos`]) byte-for-byte reproducible.

use std::collections::VecDeque;

use crate::rng::SplitMix64;

/// Circuit-breaker tuning. See [`CircuitBreaker`].
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerConfig {
    /// Sliding outcome-window length (most recent dispatches).
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Trip when `failures / samples >=` this rate (e.g. `0.75`).
    pub failure_rate_to_open: f64,
    /// How long an open breaker stays open, simulated µs.
    pub open_cooldown_us: u64,
    /// Seeded jitter on the cool-down: each open episode lasts
    /// `open_cooldown_us * (1 + U[0, jitter))` so replicas don't re-arm in
    /// lockstep.
    pub cooldown_jitter_frac: f64,
    /// Consecutive half-open probe successes required to close; also the
    /// maximum number of probe requests admitted while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            min_samples: 5,
            failure_rate_to_open: 0.75,
            open_cooldown_us: 400_000,
            cooldown_jitter_frac: 0.25,
            half_open_probes: 2,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes are recorded in the sliding window.
    Closed,
    /// Tripped: no dispatches until the cool-down elapses.
    Open,
    /// Cool-down elapsed: a limited number of probe requests may flow;
    /// their outcomes decide between Closed and Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-worker circuit breaker (see module docs).
///
/// The breaker is driven entirely by the caller: [`CircuitBreaker::admits`]
/// is consulted (read-only) when picking a worker,
/// [`CircuitBreaker::on_dispatch`] consumes an admission (this is where
/// Open→HalfOpen happens once the simulated cool-down has elapsed), and
/// [`CircuitBreaker::record`] feeds back the outcome (Closed→Open on
/// window failure rate; HalfOpen→Closed/Open on probe outcome).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    /// Most recent dispatch outcomes, `true` = success.
    window: VecDeque<bool>,
    /// Simulated µs timestamp of the last Closed→Open / HalfOpen→Open.
    opened_at_us: u64,
    /// Jittered cool-down for the current open episode.
    cooldown_us: u64,
    probes_admitted: u32,
    probe_successes: u32,
    rng: SplitMix64,
    opens: u64,
}

impl CircuitBreaker {
    /// Breaker with a config and a seed for the cool-down jitter stream.
    pub fn new(cfg: BreakerConfig, seed: u64) -> Self {
        CircuitBreaker {
            window: VecDeque::with_capacity(cfg.window),
            cooldown_us: cfg.open_cooldown_us,
            cfg,
            state: BreakerState::Closed,
            opened_at_us: 0,
            probes_admitted: 0,
            probe_successes: 0,
            rng: SplitMix64::stream(seed, 2),
            opens: 0,
        }
    }

    /// Current state (Open does not flip to HalfOpen until a dispatch is
    /// actually attempted after the cool-down, mirroring a real breaker
    /// that transitions on the first post-cool-down request).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times this breaker has opened.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Would a dispatch at simulated time `now_us` be admitted? Read-only:
    /// used to filter candidates without consuming half-open probe slots.
    pub fn admits(&self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => now_us >= self.opened_at_us.saturating_add(self.cooldown_us),
            BreakerState::HalfOpen => self.probes_admitted < self.cfg.half_open_probes,
        }
    }

    /// Consume the admission for an actual dispatch at `now_us`. An open
    /// breaker whose cool-down has elapsed transitions to HalfOpen here;
    /// half-open dispatches count against the probe budget.
    pub fn on_dispatch(&mut self, now_us: u64) {
        match self.state {
            BreakerState::Closed => {}
            BreakerState::Open => {
                debug_assert!(self.admits(now_us), "dispatch through a closed gate");
                self.state = BreakerState::HalfOpen;
                self.probes_admitted = 1;
                self.probe_successes = 0;
            }
            BreakerState::HalfOpen => {
                self.probes_admitted += 1;
            }
        }
    }

    /// Record a dispatch outcome at simulated time `now_us`.
    pub fn record(&mut self, success: bool, now_us: u64) {
        match self.state {
            BreakerState::Closed => {
                if self.window.len() == self.cfg.window {
                    self.window.pop_front();
                }
                self.window.push_back(success);
                let samples = self.window.len();
                if samples >= self.cfg.min_samples.max(1) {
                    let failures = self.window.iter().filter(|&&ok| !ok).count();
                    if failures as f64 / samples as f64 >= self.cfg.failure_rate_to_open {
                        self.open(now_us);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.cfg.half_open_probes {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                    }
                } else {
                    self.open(now_us);
                }
            }
            // A straggler outcome (e.g. a hedge completing after the
            // breaker opened) carries no new information for an open gate.
            BreakerState::Open => {}
        }
    }

    fn open(&mut self, now_us: u64) {
        self.state = BreakerState::Open;
        self.opened_at_us = now_us;
        let jitter = self.rng.gen_f64(self.cfg.cooldown_jitter_frac.clamp(0.0, 4.0));
        self.cooldown_us = (self.cfg.open_cooldown_us as f64 * (1.0 + jitter)) as u64;
        self.probes_admitted = 0;
        self.probe_successes = 0;
        self.window.clear();
        self.opens += 1;
    }
}

/// Retry policy: attempts, exponential backoff with seeded jitter, and the
/// simulated cost of a failed attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryConfig {
    /// Upper bound on failover attempts per request (further bounded by
    /// the number of distinct eligible workers when
    /// [`RetryConfig::exclude_attempted`] is on).
    pub max_attempts: usize,
    /// Backoff before retry `n` (1-based) is
    /// `min(base * 2^(n-1), max) * (1 + U[0, jitter))`, simulated µs.
    pub base_backoff_us: u64,
    /// Cap on the exponential backoff, simulated µs.
    pub max_backoff_us: u64,
    /// Seeded jitter fraction on each backoff pause.
    pub jitter_frac: f64,
    /// Simulated µs charged against the deadline budget by a failed
    /// attempt (a connect-timeout-like cost; failures are never free).
    pub failure_latency_us: u64,
    /// Never re-dispatch to a worker already attempted for this request.
    pub exclude_attempted: bool,
}

impl RetryConfig {
    /// The seed serving loop's behaviour: four blind attempts, no backoff,
    /// no exclusion, failures cost nothing.
    pub fn legacy() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff_us: 0,
            max_backoff_us: 0,
            jitter_frac: 0.0,
            failure_latency_us: 0,
            exclude_attempted: false,
        }
    }

    /// Backoff before 1-based retry `attempt`, without jitter.
    pub fn backoff_base_us(&self, attempt: usize) -> u64 {
        if self.base_backoff_us == 0 || attempt == 0 {
            return 0;
        }
        let shift = (attempt - 1).min(32) as u32;
        self.base_backoff_us
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff_us.max(self.base_backoff_us))
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 6,
            base_backoff_us: 10_000,
            max_backoff_us: 160_000,
            jitter_frac: 0.1,
            failure_latency_us: 5_000,
            exclude_attempted: true,
        }
    }
}

/// Request hedging: race a second worker once the first is slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Fire the hedge when the primary's simulated latency exceeds this
    /// (set it near an observed tail percentile, e.g. p95, of the
    /// deployment's latency distribution).
    pub delay_us: u64,
}

/// Load shedding: bounded admission per model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Maximum requests in flight per model; further requests are
    /// rejected with [`crate::SmmfError::Overloaded`].
    pub max_inflight: u64,
}

/// The full resilience configuration threaded through
/// [`crate::ApiServer::with_resilience`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Per-worker circuit breakers (`None` = legacy consecutive-failure
    /// health counter stays in charge).
    pub breaker: Option<BreakerConfig>,
    /// Retry/backoff policy.
    pub retry: RetryConfig,
    /// Per-request simulated deadline budget (`None` = unbounded).
    pub deadline_budget_us: Option<u64>,
    /// Request hedging (`None` = off).
    pub hedge: Option<HedgeConfig>,
    /// Load shedding (`None` = unbounded admission).
    pub shed: Option<ShedConfig>,
    /// Graceful degradation: when the primary model has no admissible
    /// worker (all breakers open / everyone unhealthy) or exhausts its
    /// retries, serve from this model instead.
    pub fallback_model: Option<String>,
}

impl ResilienceConfig {
    /// Everything off — byte-for-byte the seed serving behaviour
    /// (fixed 4-attempt failover loop, legacy worker health counter).
    pub fn disabled() -> Self {
        ResilienceConfig {
            breaker: None,
            retry: RetryConfig::legacy(),
            deadline_budget_us: None,
            hedge: None,
            shed: None,
            fallback_model: None,
        }
    }

    /// Every mechanism on with production-shaped defaults; the E2 chaos
    /// sweep uses this as the "full" arm.
    pub fn full() -> Self {
        ResilienceConfig {
            breaker: Some(BreakerConfig::default()),
            retry: RetryConfig::default(),
            deadline_budget_us: Some(1_500_000),
            hedge: Some(HedgeConfig { delay_us: 120_000 }),
            shed: Some(ShedConfig { max_inflight: 64 }),
            fallback_model: None,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        if self.breaker.is_none()
            && self.retry == RetryConfig::legacy()
            && self.deadline_budget_us.is_none()
            && self.hedge.is_none()
            && self.shed.is_none()
            && self.fallback_model.is_none()
        {
            "disabled"
        } else {
            "custom"
        }
    }
}

/// Counters the server keeps about resilience decisions (snapshot type;
/// the live counters are atomics inside [`crate::ApiServer`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResilienceMetrics {
    /// Requests admitted into the serving loop.
    pub requests: u64,
    /// Failed attempts that were retried on another worker.
    pub retries: u64,
    /// Backoff pauses taken.
    pub backoffs: u64,
    /// Total simulated µs spent in backoff.
    pub backoff_us: u64,
    /// Requests rejected because the deadline budget ran out.
    pub deadline_exceeded: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Hedges fired.
    pub hedges: u64,
    /// Hedges whose second worker won the race.
    pub hedge_wins: u64,
    /// Requests served by the fallback model tier.
    pub fallbacks: u64,
    /// Circuit-breaker open transitions (summed over workers).
    pub breaker_opens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_samples: 4,
            failure_rate_to_open: 0.75,
            open_cooldown_us: 1_000,
            cooldown_jitter_frac: 0.0, // exact cool-downs for these tests
            half_open_probes: 2,
        }
    }

    #[test]
    fn closed_trips_on_window_failure_rate() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        assert_eq!(b.state(), BreakerState::Closed);
        // 3 successes, 1 failure: 25% < 75%, stays closed.
        for ok in [true, true, true, false] {
            b.record(ok, 0);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Window slides to [true, false, false, false] → 75% ≥ 75% after
        // two more failures.
        b.record(false, 10);
        assert_eq!(b.state(), BreakerState::Closed, "2/4 failures: not yet");
        b.record(false, 20);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.admits(20), "freshly opened gate must deny");
    }

    #[test]
    fn does_not_trip_below_min_samples() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        b.record(false, 0);
        b.record(false, 0);
        b.record(false, 0);
        assert_eq!(b.state(), BreakerState::Closed, "3 < min_samples=4");
        b.record(false, 0);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_half_opens_after_simulated_cooldown() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        for _ in 0..4 {
            b.record(false, 100);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admits(100 + 999), "cool-down not elapsed");
        assert!(b.admits(100 + 1_000), "cool-down elapsed");
        // State only changes when a dispatch actually goes through.
        assert_eq!(b.state(), BreakerState::Open);
        b.on_dispatch(100 + 1_000);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_closes_on_probe_successes() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        for _ in 0..4 {
            b.record(false, 0);
        }
        b.on_dispatch(1_000);
        b.record(true, 1_000);
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 successes");
        assert!(b.admits(1_000), "second probe slot free");
        b.on_dispatch(1_000);
        b.record(true, 1_000);
        assert_eq!(b.state(), BreakerState::Closed);
        // A fresh window: one failure doesn't re-trip.
        b.record(false, 1_100);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_reopens_on_probe_failure() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        for _ in 0..4 {
            b.record(false, 0);
        }
        b.on_dispatch(1_000);
        b.record(false, 1_000);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert!(!b.admits(1_500), "new cool-down restarts at reopen time");
        assert!(b.admits(2_000));
    }

    #[test]
    fn half_open_probe_budget_is_bounded() {
        let mut b = CircuitBreaker::new(cfg(), 0);
        for _ in 0..4 {
            b.record(false, 0);
        }
        b.on_dispatch(1_000); // probe 1
        assert!(b.admits(1_000), "1 of 2 probe slots used");
        b.on_dispatch(1_000); // probe 2
        assert!(!b.admits(1_000), "probe budget exhausted");
    }

    #[test]
    fn cooldown_jitter_is_seeded_and_bounded() {
        let mut c = cfg();
        c.cooldown_jitter_frac = 0.5;
        let episode = |seed: u64| -> Vec<u64> {
            let mut b = CircuitBreaker::new(c.clone(), seed);
            let mut cooldowns = Vec::new();
            for round in 0..5u64 {
                let now = round * 100_000;
                for _ in 0..4 {
                    b.record(false, now);
                }
                cooldowns.push(b.cooldown_us);
                // Force a pass through half-open so the next round can trip
                // again from Closed.
                let later = now + b.cooldown_us;
                b.on_dispatch(later);
                b.record(true, later);
                b.on_dispatch(later);
                b.record(true, later);
            }
            cooldowns
        };
        let a = episode(7);
        assert_eq!(a, episode(7), "same seed, same jitter");
        assert_ne!(a, episode(8), "different seed, different jitter");
        for cd in &a {
            assert!(
                (1_000..1_500).contains(cd),
                "jittered cool-down {cd} outside [base, base*1.5)"
            );
        }
        // Jitter actually varies across episodes.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let r = RetryConfig {
            max_attempts: 8,
            base_backoff_us: 1_000,
            max_backoff_us: 8_000,
            jitter_frac: 0.0,
            failure_latency_us: 0,
            exclude_attempted: true,
        };
        assert_eq!(r.backoff_base_us(0), 0, "first attempt never waits");
        assert_eq!(r.backoff_base_us(1), 1_000);
        assert_eq!(r.backoff_base_us(2), 2_000);
        assert_eq!(r.backoff_base_us(3), 4_000);
        assert_eq!(r.backoff_base_us(4), 8_000);
        assert_eq!(r.backoff_base_us(5), 8_000, "capped");
        assert_eq!(r.backoff_base_us(64), 8_000, "huge attempts saturate");
    }

    #[test]
    fn legacy_retry_is_inert() {
        let r = RetryConfig::legacy();
        assert_eq!(r.max_attempts, 4);
        assert!(!r.exclude_attempted);
        for attempt in 0..6 {
            assert_eq!(r.backoff_base_us(attempt), 0);
        }
    }

    #[test]
    fn config_labels() {
        assert_eq!(ResilienceConfig::disabled().label(), "disabled");
        assert_eq!(ResilienceConfig::full().label(), "custom");
        assert_eq!(ResilienceConfig::default().label(), "custom"); // default retry ≠ legacy but mechanisms off
    }
}
