//! Request routing policies.
//!
//! The deployment layer must pick one of a model's workers for each
//! request. Four policies with different trade-offs (benchmark E2 sweeps
//! them): round-robin (fair, state-light), least-latency (adaptive,
//! steers around slow replicas), random (seeded; the baseline), and
//! weighted (latency-proportional random; the exploration/exploitation
//! middle ground).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::rng::SplitMix64;
use crate::worker::{ModelWorker, WorkerHealth};

/// Routing policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Cycle through healthy workers.
    RoundRobin,
    /// Pick the healthy worker with the lowest observed mean latency
    /// (unserved workers count as 0, so new replicas warm up first).
    LeastLatency,
    /// Uniform random among healthy workers (seeded).
    Random,
    /// Random, weighted by inverse observed mean latency (seeded): fast
    /// workers absorb proportionally more traffic, slow ones still get
    /// probed occasionally.
    Weighted,
}

impl RoutingPolicy {
    /// All policies, for sweeps.
    pub const ALL: &'static [RoutingPolicy] = &[
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastLatency,
        RoutingPolicy::Random,
        RoutingPolicy::Weighted,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastLatency => "least-latency",
            RoutingPolicy::Random => "random",
            RoutingPolicy::Weighted => "weighted",
        }
    }
}

/// Stateful router over a worker list.
pub struct Router {
    policy: RoutingPolicy,
    counter: AtomicU64,
    rng: Mutex<SplitMix64>,
}

impl Router {
    /// Router with a policy (random policy seeded with `seed`).
    pub fn new(policy: RoutingPolicy, seed: u64) -> Self {
        Router {
            policy,
            counter: AtomicU64::new(0),
            rng: Mutex::new(SplitMix64::stream(seed, 1)),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Pick a healthy worker, or `None` if none are healthy.
    pub fn pick(&self, workers: &[Arc<ModelWorker>]) -> Option<Arc<ModelWorker>> {
        let healthy: Vec<&Arc<ModelWorker>> = workers
            .iter()
            .filter(|w| w.health() == WorkerHealth::Healthy)
            .collect();
        if healthy.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            RoutingPolicy::RoundRobin => {
                let n = self.counter.fetch_add(1, Ordering::Relaxed);
                healthy[(n % healthy.len() as u64) as usize]
            }
            RoutingPolicy::LeastLatency => healthy
                .iter()
                .min_by(|a, b| {
                    (a.stats().mean_latency_us(), a.id())
                        .cmp(&(b.stats().mean_latency_us(), b.id()))
                })
                .unwrap(),
            RoutingPolicy::Random => {
                let i = self.rng.lock().expect("rng lock").gen_index(healthy.len());
                healthy[i]
            }
            RoutingPolicy::Weighted => {
                // Weight = 1 / (1 + mean latency in ms); cold workers get
                // the maximum weight so they warm up quickly.
                let weights: Vec<f64> = healthy
                    .iter()
                    .map(|w| 1.0 / (1.0 + w.stats().mean_latency_us() as f64 / 1000.0))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut pick = self
                    .rng
                    .lock()
                    .expect("rng lock")
                    .gen_f64(total.max(f64::MIN_POSITIVE));
                let mut idx = 0;
                for (i, w) in weights.iter().enumerate() {
                    if pick < *w {
                        idx = i;
                        break;
                    }
                    pick -= w;
                    idx = i;
                }
                healthy[idx]
            }
        };
        Some(Arc::clone(chosen))
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router").field("policy", &self.policy).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgpt_llm::catalog::builtin_model;
    use dbgpt_llm::GenerationParams;

    fn workers(n: usize) -> Vec<Arc<ModelWorker>> {
        (0..n)
            .map(|i| {
                Arc::new(ModelWorker::new(
                    format!("w{i}"),
                    builtin_model("sim-qwen").unwrap(),
                ))
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles() {
        let ws = workers(3);
        let r = Router::new(RoutingPolicy::RoundRobin, 0);
        let picks: Vec<String> = (0..6).map(|_| r.pick(&ws).unwrap().id().to_string()).collect();
        assert_eq!(picks, vec!["w0", "w1", "w2", "w0", "w1", "w2"]);
    }

    #[test]
    fn round_robin_skips_unhealthy() {
        let ws = workers(3);
        ws[1].drain();
        let r = Router::new(RoutingPolicy::RoundRobin, 0);
        let picks: Vec<String> = (0..4).map(|_| r.pick(&ws).unwrap().id().to_string()).collect();
        assert!(!picks.contains(&"w1".to_string()));
    }

    #[test]
    fn no_healthy_workers_returns_none() {
        let ws = workers(2);
        ws[0].drain();
        ws[1].drain();
        let r = Router::new(RoutingPolicy::RoundRobin, 0);
        assert!(r.pick(&ws).is_none());
        assert!(r.pick(&[]).is_none());
    }

    #[test]
    fn least_latency_prefers_cold_then_fast_workers() {
        let ws = workers(2);
        // Warm up w0 with some served latency.
        ws[0].infer("warm up request", &GenerationParams::default()).unwrap();
        let r = Router::new(RoutingPolicy::LeastLatency, 0);
        // w1 has zero observed latency → picked first.
        assert_eq!(r.pick(&ws).unwrap().id().to_string(), "w1");
    }

    #[test]
    fn least_latency_ties_break_by_worker_id() {
        // Both cold (mean latency 0): the lexicographically smallest id
        // must win deterministically, compared as &WorkerId, not String.
        let ws = workers(3);
        let r = Router::new(RoutingPolicy::LeastLatency, 0);
        assert_eq!(r.pick(&ws).unwrap().id().to_string(), "w0");
    }

    #[test]
    fn random_is_seeded() {
        let ws = workers(4);
        let seq = |seed| -> Vec<String> {
            let r = Router::new(RoutingPolicy::Random, seed);
            (0..8).map(|_| r.pick(&ws).unwrap().id().to_string()).collect()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }

    #[test]
    fn policy_names() {
        let names: Vec<&str> = RoutingPolicy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["round-robin", "least-latency", "random", "weighted"]
        );
    }

    #[test]
    fn weighted_prefers_fast_workers() {
        use dbgpt_llm::latency::LatencyModel;
        use dbgpt_llm::{SimLlm, SimModelSpec};
        // Two workers with very different latency profiles.
        let mk = |name: &str, decode_us: u64| {
            let mut spec = SimModelSpec::for_tests("m");
            spec.latency = LatencyModel {
                base_us: 0,
                prefill_us_per_token: 0,
                decode_us_per_token: decode_us,
            };
            Arc::new(ModelWorker::new(
                name,
                Arc::new(SimLlm::with_default_skills(spec)) as dbgpt_llm::SharedModel,
            ))
        };
        let fast = mk("fast", 10);
        let slow = mk("slow", 1_000);
        // Warm both up so observed latencies differ.
        for w in [&fast, &slow] {
            w.infer("warm up request", &GenerationParams::default()).unwrap();
        }
        let ws = vec![fast, slow];
        let r = Router::new(RoutingPolicy::Weighted, 9);
        let mut fast_picks = 0;
        for _ in 0..500 {
            if r.pick(&ws).unwrap().id().to_string() == "fast" {
                fast_picks += 1;
            }
        }
        assert!(fast_picks > 300, "fast worker got only {fast_picks}/500");
        assert!(fast_picks < 500, "slow worker must still be probed");
    }

    #[test]
    fn weighted_is_seeded() {
        let ws = workers(3);
        let seq = |seed| -> Vec<String> {
            let r = Router::new(RoutingPolicy::Weighted, seed);
            (0..10).map(|_| r.pick(&ws).unwrap().id().to_string()).collect()
        };
        assert_eq!(seq(4), seq(4));
    }

    #[test]
    fn weighted_all_cold_covers_every_worker() {
        // All workers cold ⇒ all weights equal (1.0); the walk must reach
        // every bucket, including the last one (which is only reachable
        // via the `pick -= w; idx = i` arm of the loop).
        let ws = workers(4);
        let r = Router::new(RoutingPolicy::Weighted, 2);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let id = r.pick(&ws).unwrap().id().to_string();
            let i: usize = id.trim_start_matches('w').parse().unwrap();
            counts[i] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "equal weights must cover every worker, got {counts:?}"
        );
        // Roughly uniform: nobody hoards more than half the traffic.
        assert!(counts.iter().all(|&c| c < 200), "skewed picks {counts:?}");
    }

    #[test]
    fn weighted_single_worker_always_picked() {
        // healthy.len() == 1: total == weight, every draw lands in the one
        // bucket, and the idx fallback can never index out of bounds.
        let ws = workers(1);
        let r = Router::new(RoutingPolicy::Weighted, 3);
        for _ in 0..100 {
            assert_eq!(r.pick(&ws).unwrap().id().to_string(), "w0");
        }
        // Same once the worker is warm (non-unit weight).
        ws[0].infer("warm up request", &GenerationParams::default()).unwrap();
        for _ in 0..100 {
            assert_eq!(r.pick(&ws).unwrap().id().to_string(), "w0");
        }
    }
}
